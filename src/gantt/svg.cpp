#include "gantt/svg.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace herc::gantt {

namespace {

// Palette (colour-blind-safe).
constexpr const char* kBaselineFill = "#c8c8c8";
constexpr const char* kProjectedFill = "#5b8ff9";
constexpr const char* kActualFill = "#2f9e44";
constexpr const char* kCriticalStroke = "#d6336c";
constexpr const char* kTodayStroke = "#e8590c";
constexpr const char* kGridStroke = "#e9ecef";
constexpr const char* kTextFill = "#212529";

std::string attr_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

struct SvgScale {
  std::int64_t t0, t1;
  int x0, width;

  [[nodiscard]] double x(std::int64_t t) const {
    if (t1 <= t0) return x0;
    double frac = static_cast<double>(t - t0) / static_cast<double>(t1 - t0);
    return x0 + frac * width;
  }
};

void rect(std::string& out, double x, double y, double w, double h,
          const std::string& fill, const std::string& extra = {}) {
  if (w < 1) w = 1;
  out += "  <rect x=\"" + util::format_double(x, 1) + "\" y=\"" +
         util::format_double(y, 1) + "\" width=\"" + util::format_double(w, 1) +
         "\" height=\"" + util::format_double(h, 1) + "\" fill=\"" + fill + "\"" +
         (extra.empty() ? "" : " " + extra) + "/>\n";
}

void text(std::string& out, double x, double y, const std::string& content,
          int size = 12, const std::string& extra = {}) {
  out += "  <text x=\"" + util::format_double(x, 1) + "\" y=\"" +
         util::format_double(y, 1) + "\" font-family=\"sans-serif\" font-size=\"" +
         std::to_string(size) + "\" fill=\"" + kTextFill + "\"" +
         (extra.empty() ? "" : " " + extra) + ">" + attr_escape(content) + "</text>\n";
}

void line(std::string& out, double x1, double y1, double x2, double y2,
          const std::string& stroke, const std::string& extra = {}) {
  out += "  <line x1=\"" + util::format_double(x1, 1) + "\" y1=\"" +
         util::format_double(y1, 1) + "\" x2=\"" + util::format_double(x2, 1) +
         "\" y2=\"" + util::format_double(y2, 1) + "\" stroke=\"" + stroke + "\"" +
         (extra.empty() ? "" : " " + extra) + "/>\n";
}

}  // namespace

std::string render_gantt_svg(const sched::ScheduleSpace& space,
                             const cal::WorkCalendar& calendar,
                             sched::ScheduleRunId plan, cal::WorkInstant as_of,
                             const SvgOptions& options) {
  const auto& p = space.plan(plan);
  const std::int64_t now = as_of.minutes_since_epoch();

  std::vector<sched::ScheduleNodeId> visible;
  std::int64_t t0 = now, t1 = now;
  for (sched::ScheduleNodeId nid : p.nodes) {
    const auto& n = space.node(nid);
    if (n.deleted) continue;
    visible.push_back(nid);
    t0 = std::min({t0, n.baseline_start.minutes_since_epoch(),
                   n.planned_start.minutes_since_epoch()});
    t1 = std::max({t1, n.baseline_finish.minutes_since_epoch(),
                   n.planned_finish.minutes_since_epoch()});
    if (n.actual_start) t0 = std::min(t0, n.actual_start->minutes_since_epoch());
    if (n.actual_finish) t1 = std::max(t1, n.actual_finish->minutes_since_epoch());
  }
  if (t1 <= t0) t1 = t0 + 1;

  const int header = 34;
  const int legend = options.show_legend ? 26 : 0;
  const int chart_height = static_cast<int>(visible.size()) * options.row_height;
  const int total_width = options.label_width + options.chart_width + 20;
  const int total_height = header + chart_height + legend + 14;
  SvgScale scale{t0, t1, options.label_width, options.chart_width};

  std::string out;
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         std::to_string(total_width) + "\" height=\"" + std::to_string(total_height) +
         "\" viewBox=\"0 0 " + std::to_string(total_width) + " " +
         std::to_string(total_height) + "\">\n";
  rect(out, 0, 0, total_width, total_height, "#ffffff");
  text(out, 8, 20,
       "Gantt: " + p.name + "  [" + calendar.format_date(cal::WorkInstant(t0)) +
           " .. " + calendar.format_date(cal::WorkInstant(t1)) + "]  as of " +
           calendar.format_date(as_of),
       13, "font-weight=\"bold\"");

  // Workday grid.
  if (options.show_grid) {
    const std::int64_t mpd = calendar.minutes_per_day();
    for (std::int64_t t = (t0 / mpd) * mpd; t <= t1; t += mpd) {
      if (t < t0) continue;
      line(out, scale.x(t), header, scale.x(t), header + chart_height, kGridStroke);
    }
  }

  int row = 0;
  for (sched::ScheduleNodeId nid : visible) {
    const auto& n = space.node(nid);
    double y = header + row * options.row_height;
    double bar_h = options.row_height - 8.0;

    std::string label = n.activity + (n.completed ? " (done)" : "");
    text(out, 8, y + options.row_height - 8.0, label, 12);

    // Baseline (thin, underneath).
    rect(out, scale.x(n.baseline_start.minutes_since_epoch()),
         y + options.row_height - 7.0,
         scale.x(n.baseline_finish.minutes_since_epoch()) -
             scale.x(n.baseline_start.minutes_since_epoch()),
         3, kBaselineFill);

    // Projection of remaining work.
    if (!n.completed) {
      std::int64_t ps = n.planned_start.minutes_since_epoch();
      std::int64_t pf = n.planned_finish.minutes_since_epoch();
      if (n.actual_start) ps = std::max(ps, now);
      if (pf > ps) {
        std::string extra;
        if (n.critical)
          extra = "stroke=\"" + std::string(kCriticalStroke) + "\" stroke-width=\"1.5\"";
        rect(out, scale.x(ps), y + 3, scale.x(pf) - scale.x(ps), bar_h, kProjectedFill,
             extra);
      }
    }

    // Accomplished.
    if (n.actual_start) {
      std::int64_t as = n.actual_start->minutes_since_epoch();
      std::int64_t af = n.actual_finish ? n.actual_finish->minutes_since_epoch() : now;
      std::string extra;
      if (n.critical)
        extra = "stroke=\"" + std::string(kCriticalStroke) + "\" stroke-width=\"1.5\"";
      rect(out, scale.x(as), y + 3, scale.x(af) - scale.x(as), bar_h, kActualFill,
           extra);
    }
    ++row;
  }

  // Today line on top.
  line(out, scale.x(now), header, scale.x(now), header + chart_height, kTodayStroke,
       "stroke-width=\"1.5\" stroke-dasharray=\"4 3\"");

  if (options.show_legend) {
    double y = header + chart_height + 16.0;
    double x = 8;
    auto swatch = [&](const char* fill, const std::string& name) {
      rect(out, x, y - 9, 14, 9, fill);
      text(out, x + 18, y, name, 11);
      x += 22 + 7.0 * name.size() + 12;
    };
    swatch(kBaselineFill, "baseline");
    swatch(kProjectedFill, "projected");
    swatch(kActualFill, "actual");
    line(out, x, y - 9, x, y, kCriticalStroke, "stroke-width=\"1.5\"");
    text(out, x + 6, y, "critical outline", 11);
    x += 6 + 7.0 * 16 + 12;
    line(out, x, y - 9, x, y, kTodayStroke, "stroke-dasharray=\"4 3\"");
    text(out, x + 6, y, "today", 11);
  }

  out += "</svg>\n";
  return out;
}

}  // namespace herc::gantt
