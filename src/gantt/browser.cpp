#include "gantt/browser.hpp"

#include "gantt/gantt.hpp"
#include "util/strings.hpp"

namespace herc::gantt {

std::string ScheduleBrowser::list() const {
  std::string out = "Schedule instance browser\n";
  const std::int64_t mpd = calendar_->minutes_per_day();
  for (const auto& rule : db_->schema().rules()) {
    auto ids = space_->container(rule.activity);
    out += "  [" + rule.activity + "]";
    bool empty = true;
    std::string body;
    for (sched::ScheduleNodeId id : ids) {
      const auto& n = space_->node(id);
      if (n.deleted) continue;
      empty = false;
      body += (selected_ && *selected_ == id) ? "    > " : "      ";
      body += n.str() + "  est " + n.est_duration.str(mpd) + "  " +
              calendar_->format_date(n.planned_start) + " .. " +
              calendar_->format_date(n.planned_finish) + "\n";
    }
    out += empty ? " (empty)\n" : "\n" + body;
  }
  return out;
}

util::Status ScheduleBrowser::select(sched::ScheduleNodeId id) {
  if (!id.valid() || id.value() > space_->node_count())
    return util::not_found("browser: no schedule instance " + id.str());
  if (space_->node(id).deleted)
    return util::conflict("browser: schedule instance " + id.str() + " was deleted");
  selected_ = id;
  return util::Status::ok_status();
}

util::Result<std::string> ScheduleBrowser::display() const {
  if (!selected_) return util::invalid("browser: nothing selected");
  return render_schedule_card(*space_, *db_, *calendar_, *selected_);
}

util::Status ScheduleBrowser::delete_selected() {
  if (!selected_) return util::invalid("browser: nothing selected");
  if (space_->link_of(*selected_))
    return util::conflict("browser: instance " + selected_->str() +
                          " is linked to design data and cannot be deleted");
  space_->node_mut(*selected_).deleted = true;
  selected_.reset();
  return util::Status::ok_status();
}

}  // namespace herc::gantt
