#include "gantt/gantt.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace herc::gantt {

namespace {

/// Maps a work instant into a chart column.
struct Scale {
  std::int64_t t0;       // chart origin, work minutes
  std::int64_t t1;       // chart end
  int width;

  [[nodiscard]] int col(std::int64_t t) const {
    if (t1 <= t0) return 0;
    auto c = static_cast<int>((t - t0) * width / (t1 - t0));
    return std::clamp(c, 0, width - 1);
  }
};

/// Paints glyph `g` over [from, to) columns; `g` wins over ' ' and weaker
/// glyphs only (priority: '#' > '=' > '.').
void paint(std::string& row, int from, int to, char g) {
  auto rank = [](char c) {
    switch (c) {
      case '#': return 3;
      case '=': return 2;
      case '.': return 1;
      default: return 0;
    }
  };
  if (to <= from) to = from + 1;  // zero-length spans still show one cell
  for (int i = from; i < to && i < static_cast<int>(row.size()); ++i)
    if (rank(g) > rank(row[i])) row[i] = g;
}

/// Date-axis row: tick dates at the quarter points of the chart.
std::string axis_row(const Scale& scale, const cal::WorkCalendar& calendar,
                     std::size_t label_width) {
  std::string axis(static_cast<std::size_t>(scale.width), ' ');
  for (int quarter = 0; quarter < 4; ++quarter) {
    int col = scale.width * quarter / 4;
    std::int64_t t =
        scale.t0 + (scale.t1 - scale.t0) * col / std::max(1, scale.width);
    std::string mark = calendar.format_date(cal::WorkInstant(t)).substr(5);  // MM-DD
    if (col + static_cast<int>(mark.size()) <= scale.width)
      axis.replace(static_cast<std::size_t>(col), mark.size(), mark);
  }
  return util::pad_right("", label_width) + "|" + axis + "|\n";
}

/// Bar row of one schedule node on an existing scale.
std::string paint_row(const sched::ScheduleNode& n, const Scale& scale,
                      std::int64_t now, const GanttOptions& options,
                      std::size_t label_width) {
  std::string bars(static_cast<std::size_t>(options.chart_width), ' ');
  if (options.show_baseline) {
    paint(bars, scale.col(n.baseline_start.minutes_since_epoch()),
          scale.col(n.baseline_finish.minutes_since_epoch()) + 1, '.');
  }
  if (!n.completed) {
    std::int64_t ps = n.planned_start.minutes_since_epoch();
    std::int64_t pf = n.planned_finish.minutes_since_epoch();
    if (n.actual_start) ps = std::max(ps, now);
    if (pf > ps) paint(bars, scale.col(ps), scale.col(pf) + 1, '=');
  }
  if (n.actual_start) {
    std::int64_t as = n.actual_start->minutes_since_epoch();
    std::int64_t af = n.actual_finish ? n.actual_finish->minutes_since_epoch() : now;
    paint(bars, scale.col(as), scale.col(af) + 1, '#');
  }
  int today = scale.col(now);
  if (bars[static_cast<std::size_t>(today)] == ' ')
    bars[static_cast<std::size_t>(today)] = '|';

  std::string label = n.activity;
  if (n.critical) label += " *";
  if (n.completed) label += " (done)";
  return util::pad_right(label, label_width) + "|" + bars + "|\n";
}

/// Widens [t0, t1] to cover one plan's visible nodes; returns whether any
/// node is visible.
bool span_of_plan(const sched::ScheduleSpace& space, const sched::ScheduleRun& p,
                  std::int64_t& t0, std::int64_t& t1, bool& initialized) {
  bool any = false;
  for (sched::ScheduleNodeId nid : p.nodes) {
    const auto& n = space.node(nid);
    if (n.deleted) continue;
    any = true;
    std::int64_t lo = std::min(n.baseline_start.minutes_since_epoch(),
                               n.planned_start.minutes_since_epoch());
    std::int64_t hi = std::max(n.baseline_finish.minutes_since_epoch(),
                               n.planned_finish.minutes_since_epoch());
    if (n.actual_start) lo = std::min(lo, n.actual_start->minutes_since_epoch());
    if (n.actual_finish) hi = std::max(hi, n.actual_finish->minutes_since_epoch());
    if (!initialized) {
      t0 = lo;
      t1 = hi;
      initialized = true;
    } else {
      t0 = std::min(t0, lo);
      t1 = std::max(t1, hi);
    }
  }
  return any;
}

}  // namespace

util::Result<std::string> render_portfolio_gantt(
    const sched::ScheduleSpace& space, const cal::WorkCalendar& calendar,
    const std::vector<sched::ScheduleRunId>& plans, cal::WorkInstant as_of,
    const GanttOptions& options) {
  if (plans.empty()) return util::invalid("portfolio gantt: no plans given");
  for (std::size_t i = 0; i < plans.size(); ++i)
    for (std::size_t j = i + 1; j < plans.size(); ++j)
      if (plans[i] == plans[j])
        return util::invalid("portfolio gantt: plan " + plans[i].str() +
                             " listed twice");

  const std::int64_t now = as_of.minutes_since_epoch();
  std::int64_t t0 = now, t1 = now;
  bool initialized = false;
  for (sched::ScheduleRunId pid : plans)
    span_of_plan(space, space.plan(pid), t0, t1, initialized);
  if (!initialized) {
    t0 = t1 = now;
  }
  t0 = std::min(t0, now);
  t1 = std::max(t1, now);
  if (t1 <= t0) t1 = t0 + 1;

  Scale scale{t0, t1, options.chart_width};
  const std::size_t label_width = 18;

  std::string out = "Portfolio Gantt   [" + calendar.format_date(cal::WorkInstant(t0)) +
                    " .. " + calendar.format_date(cal::WorkInstant(t1)) +
                    "]   as of " + calendar.format_date(as_of) + "\n";
  out += axis_row(scale, calendar, label_width);
  for (sched::ScheduleRunId pid : plans) {
    const auto& p = space.plan(pid);
    out += "-- " + p.str() + "\n";
    bool any = false;
    for (sched::ScheduleNodeId nid : p.nodes) {
      const auto& n = space.node(nid);
      if (n.deleted) continue;
      any = true;
      out += paint_row(n, scale, now, options, label_width);
    }
    if (!any) out += util::pad_right("(no activities)", label_width) + "\n";
  }
  if (options.show_legend) {
    out += util::pad_right("", label_width) +
           " . baseline  = projected  # actual  * critical  | today\n";
  }
  return out;
}

std::string render_gantt(const sched::ScheduleSpace& space,
                         const cal::WorkCalendar& calendar, sched::ScheduleRunId plan,
                         cal::WorkInstant as_of, const GanttOptions& options) {
  const auto& p = space.plan(plan);
  const std::int64_t now = as_of.minutes_since_epoch();

  // Chart span: earliest baseline/actual start to latest finish or `now`.
  std::int64_t t0 = 0, t1 = 0;
  bool initialized = false;
  bool any = span_of_plan(space, p, t0, t1, initialized);
  if (!any) return "Gantt: plan '" + p.name + "' has no activities\n";
  t0 = std::min(t0, now);
  t1 = std::max(t1, now);
  if (t1 <= t0) t1 = t0 + 1;

  Scale scale{t0, t1, options.chart_width};
  const std::size_t label_width = 18;

  std::string out;
  out += "Gantt: " + p.str() + "   [" + calendar.format_date(cal::WorkInstant(t0)) +
         " .. " + calendar.format_date(cal::WorkInstant(t1)) + "]   as of " +
         calendar.format_date(as_of) + "\n";
  out += axis_row(scale, calendar, label_width);

  for (sched::ScheduleNodeId nid : p.nodes) {
    const auto& n = space.node(nid);
    if (n.deleted) continue;
    out += paint_row(n, scale, now, options, label_width);
  }

  if (options.show_legend) {
    out += util::pad_right("", label_width) +
           " . baseline  = projected  # actual  * critical  | today\n";
  }
  return out;
}

std::string render_schedule_card(const sched::ScheduleSpace& space,
                                 const meta::Database& db,
                                 const cal::WorkCalendar& calendar,
                                 sched::ScheduleNodeId node) {
  const auto& n = space.node(node);
  const std::int64_t mpd = calendar.minutes_per_day();
  std::string out;
  out += "Schedule instance " + n.str() + "\n";
  out += "  plan:            " + space.plan(n.plan).str() + "\n";
  out += "  estimate:        " + n.est_duration.str(mpd) + "\n";
  out += "  baseline:        " + calendar.format(n.baseline_start) + " .. " +
         calendar.format(n.baseline_finish) + "\n";
  out += "  projected:       " + calendar.format(n.planned_start) + " .. " +
         calendar.format(n.planned_finish) + "\n";
  out += "  slack:           " + n.total_slack.str(mpd) +
         (n.critical ? "  (CRITICAL)" : "") + "\n";
  if (!n.resources.empty()) {
    out += "  resources:      ";
    for (util::ResourceId r : n.resources) out += " " + db.resource(r).name;
    out += "\n";
  }
  if (n.actual_start)
    out += "  actual start:    " + calendar.format(*n.actual_start) + "\n";
  if (n.actual_finish)
    out += "  actual finish:   " + calendar.format(*n.actual_finish) + "\n";
  if (auto lid = space.link_of(node)) {
    const auto& link = space.links()[lid->value() - 1];
    out += "  linked to:       " + db.instance(link.entity_instance).str() + "\n";
  }
  out += "  status:          ";
  out += n.completed ? "complete" : (n.actual_start ? "in progress" : "not started");
  out += "\n";
  return out;
}

}  // namespace herc::gantt
