#include "hercules/journal.hpp"

#include <algorithm>

#include "hercules/persist.hpp"
#include "hercules/persist_detail.hpp"
#include "hercules/workflow_manager.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace herc::hercules {

using util::Json;
using util::JsonArray;
using util::JsonObject;

namespace {

/// The default sink: a private append-only file, one write per line, with an
/// optional fsync per append (JournalOptions::durable).
class FileSink : public JournalSink {
 public:
  FileSink(std::string path, bool durable)
      : path_(std::move(path)), durable_(durable) {}

  [[nodiscard]] const std::string& path() const override { return path_; }

  [[nodiscard]] util::Status append(std::string line) override {
    line.push_back('\n');
    auto st = out_.append(line);
    if (!st.ok()) return st;
    if (durable_) return out_.sync();
    return util::Status::ok_status();
  }

  [[nodiscard]] util::Status restart() override {
    auto st = out_.open_trunc(path_);
    if (!st.ok())
      return util::unsupported("journal: cannot open '" + path_ + "' for writing");
    return util::Status::ok_status();
  }

 private:
  std::string path_;
  bool durable_;
  util::AppendFile out_;
};

}  // namespace

RunJournal::RunJournal(meta::Database& db, data::DataStore& store,
                       exec::SimClock& clock)
    : db_(&db), store_(&store), clock_(&clock) {
  db_->add_observer(this);
}

RunJournal::~RunJournal() { db_->remove_observer(this); }

util::Result<std::unique_ptr<RunJournal>> RunJournal::open(meta::Database& db,
                                                           data::DataStore& store,
                                                           exec::SimClock& clock,
                                                           const std::string& path,
                                                           JournalOptions options) {
  // Not make_unique: the constructor is private.
  std::unique_ptr<RunJournal> j(new RunJournal(db, store, clock));
  j->owned_sink_ = std::make_unique<FileSink>(path, options.durable);
  j->sink_ = j->owned_sink_.get();
  auto st = j->restart();
  if (!st.ok()) return st.error();
  return j;
}

util::Result<std::unique_ptr<RunJournal>> RunJournal::open_with_sink(
    meta::Database& db, data::DataStore& store, exec::SimClock& clock,
    JournalSink& sink) {
  std::unique_ptr<RunJournal> j(new RunJournal(db, store, clock));
  j->sink_ = &sink;
  auto st = j->restart();
  if (!st.ok()) return st.error();
  return j;
}

util::Status RunJournal::restart() {
  status_ = sink_->restart();
  if (!status_.ok()) return status_;
  seen_data_ = store_->size();
  seen_instances_ = db_->instance_count();
  seen_runs_ = db_->run_count();
  lines_ = 0;
  return status_;
}

void RunJournal::on_run_recorded(const meta::Run& run) {
  if (!status_.ok()) return;

  JsonObject line;
  // The clock has not always caught up with the run when it is recorded
  // (concurrent dispatch advances to the makespan only at the end), so the
  // journaled clock is the run's finish or the current clock, whichever is
  // later — exactly where an uninterrupted execution would leave it.
  line.set("clock", std::max(clock_->now().minutes_since_epoch(),
                             run.finished_at.minutes_since_epoch()));

  JsonArray data;
  const auto& objects = store_->all();
  for (std::size_t i = seen_data_; i < objects.size(); ++i)
    data.push_back(detail::data_object_json(objects[i]));
  seen_data_ = objects.size();
  line.set("data_objects", std::move(data));

  JsonArray instances;
  const auto& insts = db_->instances();
  for (std::size_t i = seen_instances_; i < insts.size(); ++i)
    instances.push_back(detail::instance_json(insts[i]));
  seen_instances_ = insts.size();
  line.set("instances", std::move(instances));

  JsonArray runs;
  const auto& all_runs = db_->runs();
  for (std::size_t i = seen_runs_; i < all_runs.size(); ++i)
    runs.push_back(detail::run_json(all_runs[i]));
  seen_runs_ = all_runs.size();
  line.set("runs", std::move(runs));

  status_ = sink_->append(Json(std::move(line)).dump(-1));
  if (status_.ok()) ++lines_;
}

namespace {

/// Applies one parsed journal line to the manager.  Records already present
/// (id at or below the current high-water mark) are skipped, which makes
/// replay idempotent.  Field errors propagate as exceptions, translated by
/// the caller.
util::Status apply_line(WorkflowManager& m, const JsonObject& line) {
  for (const auto& d : line.at("data_objects").as_array()) {
    const auto& o = d.as_object();
    if (static_cast<std::uint64_t>(o.at("id").as_int()) <= m.store().size()) continue;
    auto st = detail::restore_data_object(m.store(), o);
    if (!st.ok()) return st;
  }
  for (const auto& e : line.at("instances").as_array()) {
    const auto& o = e.as_object();
    if (static_cast<std::uint64_t>(o.at("id").as_int()) <= m.db().instance_count())
      continue;
    auto st = detail::restore_instance(m.db(), o);
    if (!st.ok()) return st;
  }
  for (const auto& r : line.at("runs").as_array()) {
    const auto& o = r.as_object();
    if (static_cast<std::uint64_t>(o.at("id").as_int()) <= m.db().run_count()) continue;
    auto st = detail::restore_run(m.db(), m.schema(), o);
    if (!st.ok()) return st;
  }
  m.clock().advance_to(cal::WorkInstant(line.at("clock").as_int()));
  return util::Status::ok_status();
}

}  // namespace

std::vector<std::string_view> journal_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

util::Result<std::unique_ptr<WorkflowManager>> recover_from_json(
    std::string_view snapshot_text, std::string_view journal_text) {
  auto loaded = load_from_json(snapshot_text);
  if (!loaded.ok()) return loaded;
  std::unique_ptr<WorkflowManager> m = std::move(loaded).take();

  std::vector<std::string_view> lines = journal_lines(journal_text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const bool last = i + 1 == lines.size();
    auto parsed = Json::parse(lines[i]);
    if (!parsed.ok()) {
      // A crash mid-append can tear only the FINAL line; drop it.  Anything
      // earlier is genuine corruption.
      if (last) break;
      return util::parse_error("journal line " + std::to_string(i + 1) + ": " +
                               parsed.error().message);
    }
    if (!parsed.value().is_object()) {
      if (last) break;
      return util::parse_error("journal line " + std::to_string(i + 1) +
                               ": not an object");
    }
    try {
      auto st = apply_line(*m, parsed.value().as_object());
      if (!st.ok()) return st.error();
    } catch (const std::out_of_range& e) {
      return util::parse_error("journal line " + std::to_string(i + 1) +
                               ": missing field: " + e.what());
    } catch (const std::bad_variant_access&) {
      return util::parse_error("journal line " + std::to_string(i + 1) +
                               ": field has wrong JSON type");
    }
  }
  return m;
}

util::Result<std::unique_ptr<WorkflowManager>> recover_project(
    const std::string& snapshot_path, const std::string& journal_path) {
  auto snapshot = util::read_file(snapshot_path);
  if (!snapshot.ok()) return snapshot.error();
  auto journal = util::read_file(journal_path);
  // Crash before the first post-snapshot run: no journal is a valid state.
  return recover_from_json(snapshot.value(),
                           journal.ok() ? std::string_view(journal.value()) : "");
}

}  // namespace herc::hercules
