#include "hercules/journal.hpp"

#include <algorithm>
#include <charconv>

#include "hercules/persist.hpp"
#include "hercules/persist_detail.hpp"
#include "hercules/workflow_manager.hpp"
#include "util/crc32c.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace herc::hercules {

using util::Json;
using util::JsonArray;
using util::JsonObject;

namespace {

/// The default sink: a private append-only file, one write per line, with an
/// optional fsync per append (JournalOptions::durable).
class FileSink : public JournalSink {
 public:
  FileSink(std::string path, bool durable)
      : path_(std::move(path)), durable_(durable) {}

  [[nodiscard]] const std::string& path() const override { return path_; }

  [[nodiscard]] util::Status append(std::string line) override {
    line.push_back('\n');
    auto st = out_.append(line);
    if (!st.ok()) return st;
    if (durable_) return out_.sync();
    return util::Status::ok_status();
  }

  [[nodiscard]] util::Status restart() override {
    auto st = out_.open_trunc(path_);
    if (!st.ok()) {
      // A storage fault stays kIoError (retryable, triggers shard
      // degradation); anything else keeps the legacy unsupported code.
      if (st.error().code == util::Error::Code::kIoError) return st;
      return util::unsupported("journal: cannot open '" + path_ + "' for writing");
    }
    return util::Status::ok_status();
  }

 private:
  std::string path_;
  bool durable_;
  util::AppendFile out_;
};

}  // namespace

RunJournal::RunJournal(meta::Database& db, data::DataStore& store,
                       exec::SimClock& clock)
    : db_(&db), store_(&store), clock_(&clock) {
  db_->add_observer(this);
}

RunJournal::~RunJournal() { db_->remove_observer(this); }

util::Result<std::unique_ptr<RunJournal>> RunJournal::open(meta::Database& db,
                                                           data::DataStore& store,
                                                           exec::SimClock& clock,
                                                           const std::string& path,
                                                           JournalOptions options) {
  // Not make_unique: the constructor is private.
  std::unique_ptr<RunJournal> j(new RunJournal(db, store, clock));
  j->owned_sink_ = std::make_unique<FileSink>(path, options.durable);
  j->sink_ = j->owned_sink_.get();
  auto st = j->restart();
  if (!st.ok()) return st.error();
  return j;
}

util::Result<std::unique_ptr<RunJournal>> RunJournal::open_with_sink(
    meta::Database& db, data::DataStore& store, exec::SimClock& clock,
    JournalSink& sink) {
  std::unique_ptr<RunJournal> j(new RunJournal(db, store, clock));
  j->sink_ = &sink;
  auto st = j->restart();
  if (!st.ok()) return st.error();
  return j;
}

util::Status RunJournal::restart() {
  status_ = sink_->restart();
  if (!status_.ok()) return status_;
  seen_data_ = store_->size();
  seen_instances_ = db_->instance_count();
  seen_runs_ = db_->run_count();
  lines_ = 0;
  return status_;
}

void RunJournal::on_run_recorded(const meta::Run& run) {
  if (!status_.ok()) return;

  JsonObject line;
  // The clock has not always caught up with the run when it is recorded
  // (concurrent dispatch advances to the makespan only at the end), so the
  // journaled clock is the run's finish or the current clock, whichever is
  // later — exactly where an uninterrupted execution would leave it.
  line.set("clock", std::max(clock_->now().minutes_since_epoch(),
                             run.finished_at.minutes_since_epoch()));

  JsonArray data;
  const auto& objects = store_->all();
  for (std::size_t i = seen_data_; i < objects.size(); ++i)
    data.push_back(detail::data_object_json(objects[i]));
  seen_data_ = objects.size();
  line.set("data_objects", std::move(data));

  JsonArray instances;
  const auto& insts = db_->instances();
  for (std::size_t i = seen_instances_; i < insts.size(); ++i)
    instances.push_back(detail::instance_json(insts[i]));
  seen_instances_ = insts.size();
  line.set("instances", std::move(instances));

  JsonArray runs;
  const auto& all_runs = db_->runs();
  for (std::size_t i = seen_runs_; i < all_runs.size(); ++i)
    runs.push_back(detail::run_json(all_runs[i]));
  seen_runs_ = all_runs.size();
  line.set("runs", std::move(runs));

  status_ = sink_->append(frame_journal_line(Json(std::move(line)).dump(-1)));
  if (status_.ok()) ++lines_;
}

std::string frame_journal_line(std::string_view payload) {
  char crc_hex[8];
  util::crc32c_to_hex(util::crc32c(payload), crc_hex);
  std::string framed = "J1 ";
  framed += std::to_string(payload.size());
  framed.push_back(' ');
  framed.append(crc_hex, 8);
  framed.push_back(' ');
  framed.append(payload);
  return framed;
}

UnframedLine unframe_journal_line(std::string_view line, bool is_final) {
  constexpr std::string_view kMagic = "J1 ";
  if (line.substr(0, kMagic.size()) != kMagic) {
    // No magic: either a pre-framing journal line (the caller JSON-parses it
    // and applies the same torn-tail rule) or a frame whose header was torn
    // so early the magic itself is incomplete.
    if (is_final && kMagic.substr(0, line.size()) == line)
      return {FrameStatus::kTorn, {}};
    return {FrameStatus::kLegacy, line};
  }
  std::string_view rest = line.substr(kMagic.size());

  std::uint64_t declared = 0;
  const char* end = rest.data() + rest.size();
  auto [next, ec] = std::from_chars(rest.data(), end, declared);
  const std::string_view after_len(next, static_cast<std::size_t>(end - next));
  if (ec != std::errc{} || after_len.substr(0, 1) != " " ||
      after_len.size() < 10) {
    // Header cut off mid-length / mid-checksum.  Only a tear produces a
    // PREFIX of a valid header; anything else (or a short header that is not
    // the tail) is corruption.
    return {is_final ? FrameStatus::kTorn : FrameStatus::kCorrupt, {}};
  }
  bool crc_ok = false;
  const std::uint32_t stored =
      util::crc32c_from_hex(after_len.substr(1, 8), &crc_ok);
  std::string_view payload = after_len.substr(10);
  // The header is structurally complete from here on, so damage in it can
  // only be in-place corruption, never a tear.
  if (!crc_ok || after_len[9] != ' ') return {FrameStatus::kCorrupt, {}};
  if (payload.size() != declared) {
    // Fewer bytes than declared at the very end of the file is the crash
    // signature; fewer (or more) anywhere else means the file was damaged.
    if (payload.size() < declared && is_final) return {FrameStatus::kTorn, {}};
    return {FrameStatus::kCorrupt, {}};
  }
  if (util::crc32c(payload) != stored) return {FrameStatus::kCorrupt, {}};
  return {FrameStatus::kOk, payload};
}

namespace {

/// Applies one parsed journal line to the manager.  Records already present
/// (id at or below the current high-water mark) are skipped, which makes
/// replay idempotent.  Field errors propagate as exceptions, translated by
/// the caller.
util::Status apply_line(WorkflowManager& m, const JsonObject& line) {
  for (const auto& d : line.at("data_objects").as_array()) {
    const auto& o = d.as_object();
    if (static_cast<std::uint64_t>(o.at("id").as_int()) <= m.store().size()) continue;
    auto st = detail::restore_data_object(m.store(), o);
    if (!st.ok()) return st;
  }
  for (const auto& e : line.at("instances").as_array()) {
    const auto& o = e.as_object();
    if (static_cast<std::uint64_t>(o.at("id").as_int()) <= m.db().instance_count())
      continue;
    auto st = detail::restore_instance(m.db(), o);
    if (!st.ok()) return st;
  }
  for (const auto& r : line.at("runs").as_array()) {
    const auto& o = r.as_object();
    if (static_cast<std::uint64_t>(o.at("id").as_int()) <= m.db().run_count()) continue;
    auto st = detail::restore_run(m.db(), m.schema(), o);
    if (!st.ok()) return st;
  }
  m.clock().advance_to(cal::WorkInstant(line.at("clock").as_int()));
  return util::Status::ok_status();
}

}  // namespace

std::vector<std::string_view> journal_lines(std::string_view text) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    if (nl > pos) lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

namespace {

/// Shared corruption policy: strict mode fails hard; resilient mode (stats
/// present) records the damage and tells the replay loop to stop at the last
/// verified record.  Returns the error for strict callers, OK otherwise.
util::Status note_corruption(RecoveryStats* stats, std::size_t line_no,
                             std::size_t lines_total, std::string what) {
  if (stats == nullptr)
    return util::parse_error("journal line " + std::to_string(line_no) + ": " +
                             what);
  stats->corrupt_lines += 1;
  stats->lines_discarded = lines_total - line_no;  // records never examined
  stats->detail = "journal line " + std::to_string(line_no) + ": " + what;
  return util::Status::ok_status();
}

}  // namespace

util::Result<std::unique_ptr<WorkflowManager>> recover_from_json(
    std::string_view snapshot_text, std::string_view journal_text,
    RecoveryStats* stats) {
  auto loaded = load_from_json(snapshot_text, stats);
  if (!loaded.ok()) return loaded;
  std::unique_ptr<WorkflowManager> m = std::move(loaded).take();

  std::vector<std::string_view> lines = journal_lines(journal_text);
  if (stats != nullptr) stats->lines_seen = lines.size();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const bool last = i + 1 == lines.size();
    auto frame = unframe_journal_line(lines[i], last);
    if (frame.status == FrameStatus::kTorn) {
      // Crash debris: the append that never finished.  Nothing was
      // acknowledged for it, so dropping it IS the correct recovery.
      if (stats != nullptr) stats->torn_tail += 1;
      break;
    }
    if (frame.status == FrameStatus::kCorrupt) {
      auto st = note_corruption(stats, i + 1, lines.size(),
                                "checksum/length verification failed");
      if (!st.ok()) return st.error();
      break;
    }
    auto parsed = Json::parse(frame.payload);
    if (!parsed.ok() || !parsed.value().is_object()) {
      // A verified frame always holds the JSON object that was checksummed,
      // so a parse failure here means a legacy (unframed) line was damaged
      // — or torn, if it is the final one.
      if (last && frame.status == FrameStatus::kLegacy) {
        if (stats != nullptr) stats->torn_tail += 1;
        break;
      }
      auto st = note_corruption(stats, i + 1, lines.size(),
                                parsed.ok() ? std::string("not an object")
                                            : parsed.error().message);
      if (!st.ok()) return st.error();
      break;
    }
    try {
      auto st = apply_line(*m, parsed.value().as_object());
      if (!st.ok()) return st.error();
    } catch (const std::out_of_range& e) {
      auto st = note_corruption(stats, i + 1, lines.size(),
                                std::string("missing field: ") + e.what());
      if (!st.ok()) return st.error();
      break;
    } catch (const std::bad_variant_access&) {
      auto st = note_corruption(stats, i + 1, lines.size(),
                                "field has wrong JSON type");
      if (!st.ok()) return st.error();
      break;
    }
    if (stats != nullptr) stats->lines_applied += 1;
  }
  return m;
}

util::Result<std::unique_ptr<WorkflowManager>> recover_project(
    const std::string& snapshot_path, const std::string& journal_path,
    RecoveryStats* stats) {
  auto snapshot = util::read_file(snapshot_path);
  if (!snapshot.ok()) return snapshot.error();
  auto journal = util::read_file(journal_path);
  // Crash before the first post-snapshot run: no journal is a valid state.
  std::string_view journal_text =
      journal.ok() ? std::string_view(journal.value()) : std::string_view{};
  auto recovered = recover_from_json(snapshot.value(), journal_text, stats);
  if (stats != nullptr && (stats->corrupt_lines > 0 || stats->snapshot_corrupt)) {
    // Preserve the damaged bytes in a sidecar: the next snapshot truncates
    // the live journal (or replaces the snapshot), and diagnosing corruption
    // needs the evidence.
    const bool snapshot_damage = stats->snapshot_corrupt;
    const std::string sidecar =
        (snapshot_damage ? snapshot_path : journal_path) + ".corrupt";
    if (util::write_file(sidecar,
                         snapshot_damage ? std::string_view(snapshot.value())
                                         : journal_text)
            .ok())
      stats->quarantine_path = sidecar;
  }
  return recovered;
}

}  // namespace herc::hercules
