#pragma once
// Crash-safe run journal (write-ahead log) for the Hercules database.
//
// A full snapshot (persist.hpp) is too expensive to rewrite after every run,
// so between snapshots the journal appends ONE line per recorded run — a
// compact JSON object holding the delta the run added to the execution
// space: the virtual-clock position plus every Level-4 data object, entity
// instance and run created since the previous line (which covers imported
// primary inputs as well as the run's own output).  Each line is flushed
// before the append returns, so after a crash the journal is intact up to —
// at worst — one torn final line.
//
// Recovery = load the last snapshot, replay the journal tail over it
// (recover_from_json / recover_project).  A torn final line is ignored; any
// earlier malformed line is a real error.  The journal does NOT capture
// schedule-space mutations (plans, links) or manual clock advances between
// runs; snapshot after those if they must survive a crash.
//
// Durability guarantee: by default each line is written to the OS before the
// append returns — an APPLICATION crash never loses an acknowledged run, a
// machine crash may lose the unsynced tail.  JournalOptions::durable adds an
// fsync per append, upgrading the guarantee to power-loss safety at the cost
// of one fsync per run.  The server amortizes that cost instead: its
// GroupCommitter is installed here as a JournalSink and batches many appends
// into one fsync (see srv/group_commit.hpp).
//
// Lifecycle: WorkflowManager::enable_journal installs one as a database
// observer; save_project_file restarts (truncates) it after each snapshot.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/data_store.hpp"
#include "exec/executor.hpp"
#include "metadata/database.hpp"
#include "util/result.hpp"

namespace herc::hercules {

class WorkflowManager;

/// Where journal lines land.  The default sink is a file owned by the
/// journal; the server substitutes its GroupCommitter so appends from many
/// runs share one fsync.  append() receives one complete line WITHOUT the
/// trailing newline and must have written it (per the sink's durability
/// contract) by the time the owning request is acknowledged; restart()
/// truncates the backing file after a snapshot subsumes it.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  [[nodiscard]] virtual const std::string& path() const = 0;
  [[nodiscard]] virtual util::Status append(std::string line) = 0;
  [[nodiscard]] virtual util::Status restart() = 0;
};

struct JournalOptions {
  /// fsync after every append: an acknowledged run survives power loss, not
  /// just process death.  Default off — one fsync per run is exactly the
  /// cost the server's group commit exists to amortize.
  bool durable = false;
};

/// Append-only journal of recorded runs.  Registers itself as an observer of
/// the database on open() and detaches in the destructor.
class RunJournal : public meta::DatabaseObserver {
 public:
  /// Opens (and truncates) `path` and starts journaling runs recorded in
  /// `db`.  High-water marks start at the CURRENT store/db sizes, so the
  /// journal only captures what happens after — take a snapshot first.
  /// kUnsupported if the file cannot be created.
  [[nodiscard]] static util::Result<std::unique_ptr<RunJournal>> open(
      meta::Database& db, data::DataStore& store, exec::SimClock& clock,
      const std::string& path, JournalOptions options = {});

  /// Journals through a caller-owned sink (the server's group committer)
  /// instead of a private file.  The sink must outlive the journal.
  [[nodiscard]] static util::Result<std::unique_ptr<RunJournal>> open_with_sink(
      meta::Database& db, data::DataStore& store, exec::SimClock& clock,
      JournalSink& sink);

  ~RunJournal() override;
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  [[nodiscard]] const std::string& path() const { return sink_->path(); }

  /// Sticky: the first append/flush failure; appends stop once set.
  [[nodiscard]] util::Status status() const { return status_; }

  /// Lines appended since open/restart (diagnostics and tests).
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

  /// DatabaseObserver: appends one delta line per recorded run.
  void on_run_recorded(const meta::Run& run) override;

  /// Truncates the file and re-bases the high-water marks on the current
  /// database state; called after a snapshot subsumes the journal.  Also
  /// clears a sticky error if the file becomes writable again.
  [[nodiscard]] util::Status restart();

 private:
  RunJournal(meta::Database& db, data::DataStore& store, exec::SimClock& clock);

  meta::Database* db_;
  data::DataStore* store_;
  exec::SimClock* clock_;
  std::unique_ptr<JournalSink> owned_sink_;  ///< null when the sink is external
  JournalSink* sink_ = nullptr;
  // High-water marks: how many records each space had when the previous
  // line was written (everything beyond is "new" for the next line).
  std::size_t seen_data_ = 0, seen_instances_ = 0, seen_runs_ = 0;
  std::uint64_t lines_ = 0;
  util::Status status_ = util::Status::ok_status();
};

/// Splits journal text into its non-empty lines, in order.  The returned
/// views point into `text`; the final element may be a torn partial line
/// (recover_from_json tolerates that).  Exposed so the fuzz harness can
/// replay every journal prefix and assert crash-point recovery composes.
[[nodiscard]] std::vector<std::string_view> journal_lines(std::string_view text);

/// Reconstructs a manager from a snapshot plus the journal written after it.
/// The journal text may end in a torn line (crash mid-append); anything
/// malformed before the final line is a kParse error.  An empty journal is
/// valid (recovery degenerates to load_from_json).
[[nodiscard]] util::Result<std::unique_ptr<WorkflowManager>> recover_from_json(
    std::string_view snapshot_text, std::string_view journal_text);

/// File-based recovery: reads both files and delegates to recover_from_json.
/// A missing journal file is treated as empty (crash before the first run).
[[nodiscard]] util::Result<std::unique_ptr<WorkflowManager>> recover_project(
    const std::string& snapshot_path, const std::string& journal_path);

}  // namespace herc::hercules
