#pragma once
// Crash-safe run journal (write-ahead log) for the Hercules database.
//
// A full snapshot (persist.hpp) is too expensive to rewrite after every run,
// so between snapshots the journal appends ONE line per recorded run — a
// compact JSON object holding the delta the run added to the execution
// space: the virtual-clock position plus every Level-4 data object, entity
// instance and run created since the previous line (which covers imported
// primary inputs as well as the run's own output).  Each line is flushed
// before the append returns, so after a crash the journal is intact up to —
// at worst — one torn final line.
//
// On disk each line is framed `J1 <len> <crc32c> <payload>` (see
// frame_journal_line): the length prefix makes a torn final record
// self-evident and the CRC-32C catches in-place corruption.  Plain unframed
// JSON lines from older journals still replay (legacy fallback).
//
// Recovery = load the last snapshot, replay the journal tail over it
// (recover_from_json / recover_project).  A torn final line is ignored; any
// earlier malformed line is a real error (or, when the caller passes a
// RecoveryStats, replay stops at the last verified record and the damage is
// reported + quarantined instead).  The journal does NOT capture
// schedule-space mutations (plans, links) or manual clock advances between
// runs; snapshot after those if they must survive a crash.
//
// Durability guarantee: by default each line is written to the OS before the
// append returns — an APPLICATION crash never loses an acknowledged run, a
// machine crash may lose the unsynced tail.  JournalOptions::durable adds an
// fsync per append, upgrading the guarantee to power-loss safety at the cost
// of one fsync per run.  The server amortizes that cost instead: its
// GroupCommitter is installed here as a JournalSink and batches many appends
// into one fsync (see srv/group_commit.hpp).
//
// Lifecycle: WorkflowManager::enable_journal installs one as a database
// observer; save_project_file restarts (truncates) it after each snapshot.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "data/data_store.hpp"
#include "exec/executor.hpp"
#include "metadata/database.hpp"
#include "util/result.hpp"

namespace herc::hercules {

class WorkflowManager;

/// Where journal lines land.  The default sink is a file owned by the
/// journal; the server substitutes its GroupCommitter so appends from many
/// runs share one fsync.  append() receives one complete line WITHOUT the
/// trailing newline and must have written it (per the sink's durability
/// contract) by the time the owning request is acknowledged; restart()
/// truncates the backing file after a snapshot subsumes it.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  [[nodiscard]] virtual const std::string& path() const = 0;
  [[nodiscard]] virtual util::Status append(std::string line) = 0;
  [[nodiscard]] virtual util::Status restart() = 0;
};

struct JournalOptions {
  /// fsync after every append: an acknowledged run survives power loss, not
  /// just process death.  Default off — one fsync per run is exactly the
  /// cost the server's group commit exists to amortize.
  bool durable = false;
};

/// Append-only journal of recorded runs.  Registers itself as an observer of
/// the database on open() and detaches in the destructor.
class RunJournal : public meta::DatabaseObserver {
 public:
  /// Opens (and truncates) `path` and starts journaling runs recorded in
  /// `db`.  High-water marks start at the CURRENT store/db sizes, so the
  /// journal only captures what happens after — take a snapshot first.
  /// kUnsupported if the file cannot be created.
  [[nodiscard]] static util::Result<std::unique_ptr<RunJournal>> open(
      meta::Database& db, data::DataStore& store, exec::SimClock& clock,
      const std::string& path, JournalOptions options = {});

  /// Journals through a caller-owned sink (the server's group committer)
  /// instead of a private file.  The sink must outlive the journal.
  [[nodiscard]] static util::Result<std::unique_ptr<RunJournal>> open_with_sink(
      meta::Database& db, data::DataStore& store, exec::SimClock& clock,
      JournalSink& sink);

  ~RunJournal() override;
  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  [[nodiscard]] const std::string& path() const { return sink_->path(); }

  /// Sticky: the first append/flush failure; appends stop once set.
  [[nodiscard]] util::Status status() const { return status_; }

  /// Lines appended since open/restart (diagnostics and tests).
  [[nodiscard]] std::uint64_t lines_written() const { return lines_; }

  /// DatabaseObserver: appends one delta line per recorded run.
  void on_run_recorded(const meta::Run& run) override;

  /// Truncates the file and re-bases the high-water marks on the current
  /// database state; called after a snapshot subsumes the journal.  Also
  /// clears a sticky error if the file becomes writable again.
  [[nodiscard]] util::Status restart();

 private:
  RunJournal(meta::Database& db, data::DataStore& store, exec::SimClock& clock);

  meta::Database* db_;
  data::DataStore* store_;
  exec::SimClock* clock_;
  std::unique_ptr<JournalSink> owned_sink_;  ///< null when the sink is external
  JournalSink* sink_ = nullptr;
  // High-water marks: how many records each space had when the previous
  // line was written (everything beyond is "new" for the next line).
  std::size_t seen_data_ = 0, seen_instances_ = 0, seen_runs_ = 0;
  std::uint64_t lines_ = 0;
  util::Status status_ = util::Status::ok_status();
};

/// Splits journal text into its non-empty lines, in order.  The returned
/// views point into `text`; the final element may be a torn partial line
/// (recover_from_json tolerates that).  Exposed so the fuzz harness can
/// replay every journal prefix and assert crash-point recovery composes.
[[nodiscard]] std::vector<std::string_view> journal_lines(std::string_view text);

/// Wraps one journal payload in the on-disk record frame:
///   `J1 <payload-bytes> <crc32c-hex8> <payload>`
/// The length makes a torn tail self-evident (fewer payload bytes than
/// declared) and the checksum catches in-place corruption the length cannot.
/// RunJournal frames every line before it reaches the sink, so the framing
/// cost is paid once per run, off the fsync path.
[[nodiscard]] std::string frame_journal_line(std::string_view payload);

/// Verdict on one stored journal line.
enum class FrameStatus {
  kOk,       ///< framed, length and checksum verified
  kLegacy,   ///< pre-framing plain line; caller validates the payload itself
  kTorn,     ///< incomplete final record (crash mid-append): truncate here
  kCorrupt,  ///< complete but failing verification: stop, never replay past it
};

struct UnframedLine {
  FrameStatus status = FrameStatus::kLegacy;
  std::string_view payload;  ///< valid for kOk / kLegacy
};

/// Classifies one line as produced by journal_lines.  `is_final` selects the
/// torn-tail interpretation: an under-length or header-torn FINAL record is
/// the expected debris of a crash mid-append (kTorn); the same damage
/// earlier — or a full-length record whose checksum fails anywhere — is
/// corruption (kCorrupt).  Lines without the `J1 ` magic are kLegacy.
[[nodiscard]] UnframedLine unframe_journal_line(std::string_view line,
                                                bool is_final);

/// What recovery found and did; filled by recover_from_json/recover_project
/// when the caller passes one (which also switches mid-stream corruption
/// handling from fail-hard to stop-at-last-verified — see below).
struct RecoveryStats {
  std::uint64_t lines_seen = 0;     ///< non-empty journal lines in the file
  std::uint64_t lines_applied = 0;  ///< records verified and replayed
  std::uint64_t torn_tail = 0;      ///< final records dropped as crash debris
  std::uint64_t corrupt_lines = 0;  ///< first mid-stream damaged record (0/1)
  std::uint64_t lines_discarded = 0;  ///< records after the corruption point
  bool snapshot_footer = false;   ///< snapshot carried a checksum footer
  bool snapshot_corrupt = false;  ///< ...which failed to verify (fatal)
  std::string quarantine_path;  ///< `.corrupt` sidecar (recover_project only)
  std::string detail;           ///< human-readable description of the damage
};

/// Reconstructs a manager from a snapshot plus the journal written after it.
/// The journal text may end in a torn line (crash mid-append); that line is
/// dropped.  Mid-stream damage (a checksum failure, a malformed record
/// before the tail) is handled two ways:
///   - stats == nullptr (strict): fail with kParse — the default for callers
///     that must not mask corruption (the CLI, the fuzz oracle).
///   - stats != nullptr (resilient): stop at the last verified record,
///     discard everything after the damage, and report what happened in
///     `stats`.  Nothing past an unverified record is EVER replayed.
/// An empty journal is valid (recovery degenerates to load_from_json).
[[nodiscard]] util::Result<std::unique_ptr<WorkflowManager>> recover_from_json(
    std::string_view snapshot_text, std::string_view journal_text,
    RecoveryStats* stats = nullptr);

/// File-based recovery: reads both files and delegates to recover_from_json.
/// A missing journal file is treated as empty (crash before the first run).
/// With `stats`, mid-stream journal corruption additionally quarantines the
/// damaged file: its bytes are copied to `<journal_path>.corrupt` (recorded
/// in stats->quarantine_path) so the evidence survives the journal restart
/// that follows the next snapshot.
[[nodiscard]] util::Result<std::unique_ptr<WorkflowManager>> recover_project(
    const std::string& snapshot_path, const std::string& journal_path,
    RecoveryStats* stats = nullptr);

}  // namespace herc::hercules
