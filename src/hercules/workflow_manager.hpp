#pragma once
// The Hercules-style workflow manager: one object exposing the paper's full
// procedure —
//
//   define task schema  ->  initialize task database  ->  extract task tree
//   ->  bind tools/data  ->  plan schedule (simulated execution)  ->
//   execute (iterate)  ->  link completions  ->  examine status
//
// This facade owns every subsystem (calendar, Level-4 store, Level-3
// database in both spaces, tool registry, clock, estimator, tracker) and is
// what the examples and most integration tests drive.  Each subsystem stays
// independently usable; the facade only wires them.

#include <map>
#include <memory>
#include <string>
#include <unordered_set>

#include "calendar/work_calendar.hpp"
#include "core/planner.hpp"
#include "core/schedule_space.hpp"
#include "core/tracker.hpp"
#include "data/data_store.hpp"
#include "exec/executor.hpp"
#include "exec/tools.hpp"
#include "flow/task_tree.hpp"
#include "gantt/browser.hpp"
#include "metadata/database.hpp"
#include "obs/event_bus.hpp"
#include "query/query.hpp"
#include "track/status.hpp"

#include "hercules/journal.hpp"
#include "hercules/read_view.hpp"

namespace herc::hercules {

class WorkflowManager {
 public:
  /// Builds a manager from schema DSL text.  The schema is parsed and
  /// validated; the task database is initialized from it.
  [[nodiscard]] static util::Result<std::unique_ptr<WorkflowManager>> create(
      std::string_view schema_dsl, cal::WorkCalendar::Config calendar_config = {},
      std::uint64_t tool_seed = 1);

  WorkflowManager(const WorkflowManager&) = delete;
  WorkflowManager& operator=(const WorkflowManager&) = delete;
  ~WorkflowManager();

  // --- subsystem access ----------------------------------------------------
  [[nodiscard]] const schema::TaskSchema& schema() const { return *schema_; }
  [[nodiscard]] const cal::WorkCalendar& calendar() const { return calendar_; }
  [[nodiscard]] cal::WorkCalendar& calendar() { return calendar_; }
  [[nodiscard]] meta::Database& db() { return *db_; }
  [[nodiscard]] const meta::Database& db() const { return *db_; }
  [[nodiscard]] data::DataStore& store() { return *store_; }
  [[nodiscard]] const data::DataStore& store() const { return *store_; }
  [[nodiscard]] exec::ToolRegistry& tools() { return *tools_; }
  [[nodiscard]] exec::SimClock& clock() { return clock_; }
  [[nodiscard]] sched::ScheduleSpace& schedule_space() { return *space_; }
  [[nodiscard]] const sched::ScheduleSpace& schedule_space() const { return *space_; }
  [[nodiscard]] sched::DurationEstimator& estimator() { return estimator_; }
  [[nodiscard]] sched::ScheduleTracker& tracker() { return *tracker_; }
  /// The project's observability bus.  Every subsystem the manager drives
  /// publishes through it; attach an obs::MetricsRegistry or
  /// obs::ChromeTraceExporter to watch the project live.  With no
  /// subscribers attached publication is skipped at near-zero cost.
  [[nodiscard]] obs::EventBus& bus() { return bus_; }

  // --- setup ----------------------------------------------------------------
  util::Status register_tool(exec::ToolSpec spec) { return tools_->add(std::move(spec)); }
  util::ResourceId add_resource(const std::string& name,
                                const std::string& kind = "person", int capacity = 1) {
    return db_->add_resource(name, kind, capacity);
  }

  // --- fault tolerance -------------------------------------------------------
  /// Failure semantics (retry/timeout/abort-vs-degrade) applied to every
  /// execution the manager drives.  Defaults reproduce the seed behavior.
  [[nodiscard]] const exec::ExecutionOptions& exec_options() const {
    return exec_options_;
  }
  void set_exec_options(exec::ExecutionOptions options) {
    exec_options_ = std::move(options);
  }

  /// Installs a deterministic fault injector over the tool registry (replaces
  /// any previous one).  The same seed + plan reproduces the same failure
  /// sequence bit-identically.
  void set_faults(std::uint64_t seed, exec::FaultPlan plan);
  void clear_faults();
  [[nodiscard]] const exec::FaultInjector* fault_injector() const {
    return faults_.get();
  }

  /// Starts crash-safe journaling: every recorded run appends one delta line
  /// to `path` (see journal.hpp).  Take a snapshot (save_project_file) first
  /// — recovery replays the journal over it.  Replaces any active journal.
  /// JournalOptions::durable upgrades each append to an fsync (power-loss
  /// safe); the default remains flush-to-OS.
  util::Status enable_journal(const std::string& path, JournalOptions options = {});
  /// Journals through a caller-owned sink (the server's group committer);
  /// the sink must outlive the journal (disable_journal before dropping it).
  util::Status enable_journal_sink(JournalSink& sink);
  void disable_journal();
  /// nullptr when journaling is off.
  [[nodiscard]] RunJournal* journal() { return journal_.get(); }

  // --- task trees ------------------------------------------------------------
  /// Extracts a task tree named `task_name` producing `target_type`.
  util::Status extract_task(const std::string& task_name, const std::string& target_type,
                            const std::unordered_set<std::string>& stop_at = {});
  [[nodiscard]] bool has_task(const std::string& task_name) const;
  [[nodiscard]] util::Result<flow::TaskTree*> task(const std::string& task_name);
  [[nodiscard]] std::vector<std::string> task_names() const;

  /// Binds every leaf of `type_name` in the task to an instance name.
  util::Status bind(const std::string& task_name, const std::string& type_name,
                    const std::string& instance_name);

  // --- scheduling -------------------------------------------------------------
  /// Plans the task (simulated execution) and starts tracking the new plan.
  [[nodiscard]] util::Result<sched::ScheduleRunId> plan_task(
      const std::string& task_name, sched::PlanRequest request);

  /// Re-plans, deriving from the task's current plan, and tracks the result.
  [[nodiscard]] util::Result<sched::ScheduleRunId> replan_task(
      const std::string& task_name, sched::PlanRequest request);

  /// The plan currently tracked for a task, if any.
  [[nodiscard]] std::optional<sched::ScheduleRunId> plan_of(
      const std::string& task_name) const;

  // --- execution ---------------------------------------------------------------
  [[nodiscard]] util::Result<exec::ExecutionResult> execute_task(
      const std::string& task_name, const std::string& designer);

  /// Concurrent-dispatch execution (see Executor::execute_concurrent):
  /// independent activities overlap in work time, constrained by the given
  /// resource assignments.
  [[nodiscard]] util::Result<exec::ExecutionResult> execute_task_concurrent(
      const std::string& task_name, const std::string& designer,
      const exec::Executor::DispatchOptions& options = {});

  /// One iteration of a single activity of the task.
  [[nodiscard]] util::Result<exec::ActivityRunResult> run_activity(
      const std::string& task_name, const std::string& activity,
      const std::string& designer);

  /// VOV-style selective re-execution: walks the task in post-order and
  /// re-runs every activity whose output is missing or *stale* (some input
  /// has a newer version than the one its producing run consumed), so
  /// downstream work picks up fresh upstream data with the minimum number
  /// of runs.  Returns the runs performed (possibly none).  Staleness is
  /// version-based; re-binding a leaf to a different data name does not by
  /// itself mark consumers stale.
  [[nodiscard]] util::Result<std::vector<exec::ActivityRunResult>> refresh_task(
      const std::string& task_name, const std::string& designer);

  /// Declares the latest instance produced by `activity` to be its final
  /// design data and links it into the tracked schedule.
  util::Status link_completion(const std::string& task_name,
                               const std::string& activity);

  // --- status ---------------------------------------------------------------
  [[nodiscard]] util::Result<std::string> gantt(const std::string& task_name) const;
  [[nodiscard]] util::Result<std::string> status_report(
      const std::string& task_name) const;
  [[nodiscard]] util::Result<std::string> query(std::string_view statement) const;
  /// `explain` for the query fast path: chosen access path + cache state.
  [[nodiscard]] util::Result<std::string> explain(std::string_view statement) const;
  /// The manager's persistent query engine (result cache + fast-path
  /// counters live here; invalidation rides the spaces' version counters).
  [[nodiscard]] const query::QueryEngine& query_engine() const { return *query_engine_; }
  [[nodiscard]] query::QueryEngine& query_engine() { return *query_engine_; }
  [[nodiscard]] gantt::ScheduleBrowser browser() {
    return gantt::ScheduleBrowser(*space_, *db_, calendar_);
  }

  /// Both Level-3 spaces plus links — the paper's Figs. 5-7 database dumps.
  [[nodiscard]] std::string dump_database() const;

  // --- snapshot reads --------------------------------------------------------
  /// The current epoch snapshot.  Cheap when nothing changed since the last
  /// call (returns the cached view); otherwise publishes a fresh epoch via
  /// the spaces' copy-on-write tables.  Must be called serialized with
  /// mutators (the server calls it from the write lane); the RETURNED view
  /// is then safe to read from any thread for as long as it is held.
  [[nodiscard]] std::shared_ptr<const ReadView> read_view();

  /// Epoch of the most recently published view (0 = none published yet).
  [[nodiscard]] std::uint64_t snapshot_epoch() const { return view_epoch_; }
  /// Distinct epoch snapshots built so far.
  [[nodiscard]] std::uint64_t snapshots_published() const {
    return snapshot_stats_->published.load(std::memory_order_relaxed);
  }
  /// Snapshots not yet reclaimed (>= 1 once anything was published: the
  /// manager itself keeps the newest alive as its cache).
  [[nodiscard]] std::int64_t snapshots_live() const {
    return snapshot_stats_->live.load(std::memory_order_relaxed);
  }

 private:
  WorkflowManager(schema::TaskSchema parsed, cal::WorkCalendar::Config calendar_config,
                  std::uint64_t tool_seed);

  /// Forwards database mutations onto the event bus (instance_created).
  /// Same RAII pattern as the ScheduleTracker's subscription.
  class DatabaseEventBridge : public meta::DatabaseObserver {
   public:
    DatabaseEventBridge(meta::Database& db, obs::EventBus& bus) : db_(&db), bus_(&bus) {
      db_->add_observer(this);
    }
    ~DatabaseEventBridge() override { db_->remove_observer(this); }
    DatabaseEventBridge(const DatabaseEventBridge&) = delete;
    DatabaseEventBridge& operator=(const DatabaseEventBridge&) = delete;

    void on_instance_created(const meta::EntityInstance& instance) override;

   private:
    meta::Database* db_;
    obs::EventBus* bus_;
  };

  obs::EventBus bus_;
  std::unique_ptr<schema::TaskSchema> schema_;
  cal::WorkCalendar calendar_;
  std::unique_ptr<data::DataStore> store_;
  std::unique_ptr<meta::Database> db_;
  std::unique_ptr<exec::ToolRegistry> tools_;
  exec::SimClock clock_;
  std::unique_ptr<sched::ScheduleSpace> space_;
  sched::DurationEstimator estimator_;
  std::unique_ptr<sched::ScheduleTracker> tracker_;
  std::unique_ptr<DatabaseEventBridge> db_bridge_;
  std::unique_ptr<exec::FaultInjector> faults_;
  std::unique_ptr<RunJournal> journal_;  // destroyed before db_ (detaches itself)
  std::unique_ptr<query::QueryEngine> query_engine_;  // after db_/space_: views them
  exec::ExecutionOptions exec_options_;
  std::map<std::string, flow::TaskTree> tasks_;
  std::map<std::string, sched::ScheduleRunId> plan_by_task_;

  // Snapshot publication state (written only by read_view(), i.e. under the
  // caller's mutator serialization; the stats block itself is atomic because
  // view deleters run on reader threads).
  std::shared_ptr<SnapshotStats> snapshot_stats_ = std::make_shared<SnapshotStats>();
  std::shared_ptr<const ReadView> view_cache_;
  std::uint64_t view_epoch_ = 0;
  std::uint64_t view_db_version_ = 0;
  std::uint64_t view_space_version_ = 0;
  std::int64_t view_clock_minutes_ = -1;

  friend class Persistence;
};

}  // namespace herc::hercules
