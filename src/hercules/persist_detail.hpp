#pragma once
// Record-level (de)serialization shared by the full snapshot writer
// (persist.cpp) and the append-only run journal (journal.cpp).  Both must
// produce byte-identical shapes for the same record, or recovery (snapshot +
// journal replay) could not reconstruct the same file a clean save writes.
//
// Internal header; not part of the hercules public API.

#include "data/data_store.hpp"
#include "metadata/database.hpp"
#include "schema/schema.hpp"
#include "util/json.hpp"

namespace herc::hercules::detail {

[[nodiscard]] util::Json data_object_json(const data::DataObject& d);
[[nodiscard]] util::Json instance_json(const meta::EntityInstance& e);
[[nodiscard]] util::Json run_json(const meta::Run& r);

// Restore counterparts.  Each re-creates the record through the subsystem's
// public API and verifies it landed on the persisted id (kConflict if not).
// Missing or mistyped fields throw std::out_of_range /
// std::bad_variant_access, which callers translate into kParse — the same
// contract as the snapshot loader.
[[nodiscard]] util::Status restore_data_object(data::DataStore& store,
                                               const util::JsonObject& o);
[[nodiscard]] util::Status restore_instance(meta::Database& db,
                                            const util::JsonObject& o);
[[nodiscard]] util::Status restore_run(meta::Database& db,
                                       const schema::TaskSchema& schema,
                                       const util::JsonObject& o);

}  // namespace herc::hercules::detail
