#include "hercules/workflow_manager.hpp"

#include "gantt/gantt.hpp"
#include "hercules/journal.hpp"

namespace herc::hercules {

// Out of line: ~unique_ptr<RunJournal> needs the complete type.
WorkflowManager::~WorkflowManager() = default;

void WorkflowManager::set_faults(std::uint64_t seed, exec::FaultPlan plan) {
  faults_ = std::make_unique<exec::FaultInjector>(seed, std::move(plan));
  tools_->set_fault_injector(faults_.get());
}

void WorkflowManager::clear_faults() {
  tools_->set_fault_injector(nullptr);
  faults_.reset();
}

util::Status WorkflowManager::enable_journal(const std::string& path,
                                             JournalOptions options) {
  journal_.reset();  // detach any previous journal before opening the new one
  auto opened = RunJournal::open(*db_, *store_, clock_, path, options);
  if (!opened.ok()) return opened.error();
  journal_ = std::move(opened).take();
  return util::Status::ok_status();
}

util::Status WorkflowManager::enable_journal_sink(JournalSink& sink) {
  journal_.reset();
  auto opened = RunJournal::open_with_sink(*db_, *store_, clock_, sink);
  if (!opened.ok()) return opened.error();
  journal_ = std::move(opened).take();
  return util::Status::ok_status();
}

void WorkflowManager::disable_journal() { journal_.reset(); }

util::Result<std::unique_ptr<WorkflowManager>> WorkflowManager::create(
    std::string_view schema_dsl, cal::WorkCalendar::Config calendar_config,
    std::uint64_t tool_seed) {
  auto parsed = schema::parse_schema(schema_dsl);
  if (!parsed.ok()) return parsed.error();
  // Not make_unique: the constructor is private.
  std::unique_ptr<WorkflowManager> manager(
      new WorkflowManager(std::move(parsed).take(), calendar_config, tool_seed));
  // Seed designer intuition from the schema's [est ...] attributes.
  for (const auto& rule : manager->schema().rules()) {
    if (rule.default_estimate.empty()) continue;
    auto d = manager->calendar().parse_duration(rule.default_estimate);
    if (!d.ok())
      return util::parse_error("rule '" + rule.activity + "': bad [est " +
                               rule.default_estimate + "]: " + d.error().message);
    manager->estimator_.set_intuition(rule.activity, d.value());
  }
  return manager;
}

void WorkflowManager::DatabaseEventBridge::on_instance_created(
    const meta::EntityInstance& instance) {
  if (!obs::on(bus_)) return;
  obs::Event e;
  e.kind = obs::EventKind::kInstanceCreated;
  e.name = instance.type_name + "/" + instance.name;
  e.category = "meta";
  e.id = instance.id.value();
  e.work_start = instance.created_at;
  e.args = {{"version", std::to_string(instance.version)}};
  bus_->publish(std::move(e));
}

WorkflowManager::WorkflowManager(schema::TaskSchema parsed,
                                 cal::WorkCalendar::Config calendar_config,
                                 std::uint64_t tool_seed)
    : schema_(std::make_unique<schema::TaskSchema>(std::move(parsed))),
      calendar_(calendar_config),
      store_(std::make_unique<data::DataStore>()),
      db_(std::make_unique<meta::Database>(*schema_)),
      tools_(std::make_unique<exec::ToolRegistry>(tool_seed)),
      space_(std::make_unique<sched::ScheduleSpace>()),
      tracker_(std::make_unique<sched::ScheduleTracker>(*space_, *db_)),
      db_bridge_(std::make_unique<DatabaseEventBridge>(*db_, bus_)),
      query_engine_(std::make_unique<query::QueryEngine>(*db_, *space_, &bus_)) {
  bus_.set_project(schema_->name());
  tracker_->set_bus(&bus_);
}

util::Status WorkflowManager::extract_task(const std::string& task_name,
                                           const std::string& target_type,
                                           const std::unordered_set<std::string>& stop_at) {
  if (tasks_.count(task_name))
    return util::conflict("task '" + task_name + "' already exists");
  auto tree = flow::TaskTree::extract(*schema_, target_type, stop_at);
  if (!tree.ok()) return tree.error();
  tasks_.emplace(task_name, std::move(tree).take());
  return util::Status::ok_status();
}

bool WorkflowManager::has_task(const std::string& task_name) const {
  return tasks_.count(task_name) > 0;
}

util::Result<flow::TaskTree*> WorkflowManager::task(const std::string& task_name) {
  auto it = tasks_.find(task_name);
  if (it == tasks_.end()) return util::not_found("no task '" + task_name + "'");
  return &it->second;
}

std::vector<std::string> WorkflowManager::task_names() const {
  std::vector<std::string> out;
  out.reserve(tasks_.size());
  for (const auto& [name, tree] : tasks_) out.push_back(name);
  return out;
}

util::Status WorkflowManager::bind(const std::string& task_name,
                                   const std::string& type_name,
                                   const std::string& instance_name) {
  auto t = task(task_name);
  if (!t.ok()) return t.error();
  return t.value()->bind_type(type_name, instance_name);
}

util::Result<sched::ScheduleRunId> WorkflowManager::plan_task(
    const std::string& task_name, sched::PlanRequest request) {
  auto t = task(task_name);
  if (!t.ok()) return t.error();
  if (request.name == "plan") request.name = task_name;
  sched::Planner planner(*space_, *db_, estimator_, &bus_);
  auto plan = planner.plan(*t.value(), request);
  if (!plan.ok()) return plan;
  plan_by_task_[task_name] = plan.value();
  tracker_->watch_plan(plan.value());
  return plan;
}

util::Result<sched::ScheduleRunId> WorkflowManager::replan_task(
    const std::string& task_name, sched::PlanRequest request) {
  auto current = plan_of(task_name);
  if (!current)
    return util::conflict("replan: task '" + task_name + "' has no plan yet");
  request.derived_from = *current;
  return plan_task(task_name, std::move(request));
}

std::optional<sched::ScheduleRunId> WorkflowManager::plan_of(
    const std::string& task_name) const {
  auto it = plan_by_task_.find(task_name);
  if (it == plan_by_task_.end()) return std::nullopt;
  return it->second;
}

util::Result<exec::ExecutionResult> WorkflowManager::execute_task(
    const std::string& task_name, const std::string& designer) {
  auto t = task(task_name);
  if (!t.ok()) return t.error();
  // Runs must stamp THIS task's plan (several tasks may share activity
  // names when they instantiate the same schema).
  if (auto plan = plan_of(task_name)) tracker_->watch_plan(*plan);
  exec::Executor executor(*db_, *store_, *tools_, clock_, &bus_, exec_options_);
  return executor.execute(*t.value(), designer);
}

util::Result<exec::ExecutionResult> WorkflowManager::execute_task_concurrent(
    const std::string& task_name, const std::string& designer,
    const exec::Executor::DispatchOptions& options) {
  auto t = task(task_name);
  if (!t.ok()) return t.error();
  if (auto plan = plan_of(task_name)) tracker_->watch_plan(*plan);
  exec::Executor executor(*db_, *store_, *tools_, clock_, &bus_, exec_options_);
  return executor.execute_concurrent(*t.value(), designer, options);
}

util::Result<exec::ActivityRunResult> WorkflowManager::run_activity(
    const std::string& task_name, const std::string& activity,
    const std::string& designer) {
  auto t = task(task_name);
  if (!t.ok()) return t.error();
  const flow::TaskTree& tree = *t.value();
  for (flow::TaskNodeId id : tree.activities_post_order()) {
    if (tree.activity_name(id) == activity) {
      if (auto plan = plan_of(task_name)) tracker_->watch_plan(*plan);
      exec::Executor executor(*db_, *store_, *tools_, clock_, &bus_, exec_options_);
      return executor.execute_activity(tree, id, designer);
    }
  }
  return util::not_found("task '" + task_name + "' has no activity '" + activity + "'");
}

util::Result<std::vector<exec::ActivityRunResult>> WorkflowManager::refresh_task(
    const std::string& task_name, const std::string& designer) {
  auto t = task(task_name);
  if (!t.ok()) return t.error();
  const flow::TaskTree& tree = *t.value();
  if (auto plan = plan_of(task_name)) tracker_->watch_plan(*plan);

  // An activity needs a run when its latest output is missing, or when some
  // input of the run that produced it has since gained a newer version.
  auto needs_rerun = [&](flow::TaskNodeId act) {
    const std::string& output_type = schema_->type(tree.node(act).type).name;
    auto latest = db_->latest_named(output_type, output_type);
    if (!latest) return true;
    const auto& inst = db_->instance(*latest);
    if (!inst.produced_by.valid()) return true;  // shouldn't happen for outputs
    for (meta::EntityInstanceId in : db_->run(inst.produced_by).inputs) {
      const auto& input = db_->instance(in);
      auto newest = db_->latest_named(input.type_name, input.name);
      if (newest && *newest != in) return true;
    }
    return false;
  };

  std::vector<exec::ActivityRunResult> performed;
  exec::Executor executor(*db_, *store_, *tools_, clock_, &bus_, exec_options_);
  for (flow::TaskNodeId act : tree.activities_post_order()) {
    if (!needs_rerun(act)) continue;
    auto one = executor.execute_activity(tree, act, designer);
    if (!one.ok()) return one.error();
    performed.push_back(one.value());
    if (!one.value().success) break;  // designer must intervene
  }
  return performed;
}

util::Status WorkflowManager::link_completion(const std::string& task_name,
                                              const std::string& activity) {
  auto plan = plan_of(task_name);
  if (!plan) return util::conflict("link: task '" + task_name + "' has no plan");
  auto last = db_->last_completed_run(activity);
  if (!last)
    return util::conflict("link: activity '" + activity + "' has no completed run");
  const meta::Run& run = db_->run(*last);
  tracker_->watch_plan(*plan);
  return tracker_->link_completion(activity, run.output, clock_.now());
}

util::Result<std::string> WorkflowManager::gantt(const std::string& task_name) const {
  auto plan = plan_of(task_name);
  if (!plan) return util::conflict("gantt: task '" + task_name + "' has no plan");
  return herc::gantt::render_gantt(*space_, calendar_, *plan, clock_.now());
}

util::Result<std::string> WorkflowManager::status_report(
    const std::string& task_name) const {
  auto plan = plan_of(task_name);
  if (!plan) return util::conflict("status: task '" + task_name + "' has no plan");
  return track::render_status_report(*space_, *db_, calendar_, *plan, clock_.now());
}

util::Result<std::string> WorkflowManager::query(std::string_view statement) const {
  auto result = query_engine_->execute(statement);
  if (!result.ok()) return result.error();
  return result.value().render(&calendar_);
}

util::Result<std::string> WorkflowManager::explain(std::string_view statement) const {
  return query_engine_->explain(statement);
}

std::shared_ptr<const ReadView> WorkflowManager::read_view() {
  const std::uint64_t dbv = db_->version();
  const std::uint64_t spv = space_->version();
  const std::int64_t now_min = clock_.now().minutes_since_epoch();
  if (view_cache_ && view_db_version_ == dbv && view_space_version_ == spv &&
      view_clock_minutes_ == now_min) {
    return view_cache_;
  }
  auto stats = snapshot_stats_;
  auto* view = new ReadView(++view_epoch_, *db_, *space_, clock_.now(),
                            plan_by_task_, &calendar_, query_engine_.get());
  stats->published.fetch_add(1, std::memory_order_relaxed);
  stats->live.fetch_add(1, std::memory_order_relaxed);
  // The deleter may run on any reader thread — it touches only the shared
  // atomic stats block, which it keeps alive by value capture.
  view_cache_ = std::shared_ptr<const ReadView>(
      view, [stats](const ReadView* v) {
        stats->live.fetch_sub(1, std::memory_order_relaxed);
        delete v;
      });
  view_db_version_ = dbv;
  view_space_version_ = spv;
  view_clock_minutes_ = now_min;
  return view_cache_;
}

std::string WorkflowManager::dump_database() const {
  std::string out = "=== Hercules database (" + schema_->name() + ") at " +
                    calendar_.format(clock_.now()) + " ===\n";
  out += db_->dump_containers();
  out += space_->dump_containers(*db_);
  return out;
}

}  // namespace herc::hercules
