#include "hercules/persist.hpp"

#include <charconv>

#include "hercules/journal.hpp"
#include "hercules/persist_detail.hpp"
#include "util/crc32c.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"

namespace herc::hercules {

using util::Json;
using util::JsonArray;
using util::JsonObject;

namespace {

Json instant_json(cal::WorkInstant t) { return Json(t.minutes_since_epoch()); }

Json optional_instant_json(const std::optional<cal::WorkInstant>& t) {
  if (!t) return Json(nullptr);
  return instant_json(*t);
}

cal::WorkInstant instant_of(const Json& j) { return cal::WorkInstant(j.as_int()); }

std::optional<cal::WorkInstant> optional_instant_of(const Json& j) {
  if (j.is_null()) return std::nullopt;
  return instant_of(j);
}

}  // namespace

/// Friend of WorkflowManager; does the actual field-level work.
class Persistence {
 public:
  static std::string save(const WorkflowManager& m) {
    JsonObject root;
    root.set("format", "hercsched-db-v1");
    root.set("schema_dsl", m.schema_->to_dsl());

    // Calendar.
    {
      const auto& cfg = m.calendar_.config();
      JsonObject cal;
      cal.set("epoch", cfg.epoch.str());
      cal.set("minutes_per_day", cfg.minutes_per_day);
      cal.set("day_start_minute", cfg.day_start_minute);
      JsonArray week;
      for (bool w : cfg.workweek) week.emplace_back(w);
      cal.set("workweek", std::move(week));
      JsonArray holidays;
      for (cal::Date d : m.calendar_.holidays()) holidays.emplace_back(d.str());
      cal.set("holidays", std::move(holidays));
      root.set("calendar", std::move(cal));
    }

    root.set("clock", m.clock_.now().minutes_since_epoch());

    // Resources.
    {
      JsonArray arr;
      for (const auto& r : m.db_->resources()) {
        JsonObject o;
        o.set("name", r.name);
        o.set("kind", r.kind);
        o.set("capacity", r.capacity);
        JsonArray off;
        for (auto [from, to] : r.time_off) {
          JsonArray window;
          window.push_back(instant_json(from));
          window.push_back(instant_json(to));
          off.emplace_back(std::move(window));
        }
        o.set("time_off", std::move(off));
        arr.emplace_back(std::move(o));
      }
      root.set("resources", std::move(arr));
    }

    // Level 4.
    {
      JsonArray arr;
      for (const auto& d : m.store_->all()) arr.push_back(detail::data_object_json(d));
      root.set("data_objects", std::move(arr));
    }

    // Level 3, execution space.
    {
      JsonArray arr;
      for (const auto& e : m.db_->instances()) arr.push_back(detail::instance_json(e));
      root.set("instances", std::move(arr));
    }
    {
      JsonArray arr;
      for (const auto& r : m.db_->runs()) arr.push_back(detail::run_json(r));
      root.set("runs", std::move(arr));
    }

    // Level 3, schedule space.
    {
      JsonArray arr;
      for (const auto& p : m.space_->plans()) {
        JsonObject o;
        o.set("id", p.id.value());
        o.set("name", p.name);
        o.set("created", instant_json(p.created_at));
        o.set("anchor", instant_json(p.anchor));
        o.set("deadline", optional_instant_json(p.deadline));
        o.set("derived_from",
              p.derived_from.valid() ? Json(p.derived_from.value()) : Json(nullptr));
        o.set("status", std::string(p.status == sched::PlanStatus::kActive
                                        ? "active"
                                        : "superseded"));
        JsonArray deps;
        for (const auto& d : p.deps) {
          JsonArray pair;
          pair.emplace_back(d.from.value());
          pair.emplace_back(d.to.value());
          deps.emplace_back(std::move(pair));
        }
        o.set("deps", std::move(deps));
        arr.emplace_back(std::move(o));
      }
      root.set("plans", std::move(arr));
    }
    {
      JsonArray arr;
      for (std::size_t i = 1; i <= m.space_->node_count(); ++i) {
        const auto& n = m.space_->node(sched::ScheduleNodeId{i});
        JsonObject o;
        o.set("id", n.id.value());
        o.set("plan", n.plan.value());
        o.set("activity", n.activity);
        o.set("version", n.version);
        o.set("est_duration", n.est_duration.count_minutes());
        o.set("planned_start", instant_json(n.planned_start));
        o.set("planned_finish", instant_json(n.planned_finish));
        o.set("baseline_start", instant_json(n.baseline_start));
        o.set("baseline_finish", instant_json(n.baseline_finish));
        JsonArray res;
        for (auto r : n.resources) res.emplace_back(r.value());
        o.set("resources", std::move(res));
        o.set("total_slack", n.total_slack.count_minutes());
        o.set("free_slack", n.free_slack.count_minutes());
        o.set("critical", n.critical);
        o.set("actual_start", optional_instant_json(n.actual_start));
        o.set("actual_finish", optional_instant_json(n.actual_finish));
        o.set("completed", n.completed);
        o.set("deleted", n.deleted);
        arr.emplace_back(std::move(o));
      }
      root.set("schedule_nodes", std::move(arr));
    }
    {
      JsonArray arr;
      for (const auto& l : m.space_->links()) {
        JsonObject o;
        o.set("id", l.id.value());
        o.set("node", l.schedule_node.value());
        o.set("instance", l.entity_instance.value());
        o.set("linked_at", instant_json(l.linked_at));
        arr.emplace_back(std::move(o));
      }
      root.set("links", std::move(arr));
    }

    // Task trees: re-extraction is deterministic, so target + stop set +
    // per-node bindings fully reconstruct them.
    {
      JsonArray arr;
      for (const auto& [name, tree] : m.tasks_) {
        JsonObject o;
        o.set("name", name);
        o.set("target", tree.schema().type(tree.node(tree.root()).type).name);
        JsonArray stops;
        for (const auto& node : tree.nodes()) {
          if (node.kind == flow::NodeKind::kDataLeaf &&
              tree.schema().producer_of(node.type))
            stops.emplace_back(tree.schema().type(node.type).name);
        }
        o.set("stop_at", std::move(stops));
        JsonArray bindings;
        for (const auto& node : tree.nodes()) {
          if (node.kind != flow::NodeKind::kActivity && !node.binding.empty()) {
            JsonObject b;
            b.set("node", node.id.value());
            b.set("instance", node.binding);
            bindings.emplace_back(std::move(b));
          }
        }
        o.set("bindings", std::move(bindings));
        if (auto it = m.plan_by_task_.find(name); it != m.plan_by_task_.end())
          o.set("plan", it->second.value());
        else
          o.set("plan", nullptr);
        arr.emplace_back(std::move(o));
      }
      root.set("tasks", std::move(arr));
    }

    // The plan the tracker watches.
    root.set("watched_plan", m.tracker_->watched_plan()
                                 ? Json(m.tracker_->watched_plan()->value())
                                 : Json(nullptr));

    return Json(std::move(root)).dump(2) + "\n";
  }

  static util::Result<std::unique_ptr<WorkflowManager>> load(std::string_view text) {
    auto parsed = Json::parse(text);
    if (!parsed.ok()) return parsed.error();
    const Json& root_json = parsed.value();
    if (!root_json.is_object()) return util::parse_error("database file: not an object");
    const JsonObject& root = root_json.as_object();

    try {
      if (root.at("format").as_string() != "hercsched-db-v1")
        return util::invalid("unknown database format '" +
                             root.at("format").as_string() + "'");

      // Calendar config first; the manager is built with it.
      const JsonObject& cal_o = root.at("calendar").as_object();
      cal::WorkCalendar::Config cfg;
      auto epoch = cal::Date::parse(cal_o.at("epoch").as_string());
      if (!epoch.ok()) return epoch.error();
      cfg.epoch = epoch.value();
      cfg.minutes_per_day = cal_o.at("minutes_per_day").as_int();
      cfg.day_start_minute = static_cast<int>(cal_o.at("day_start_minute").as_int());
      const auto& week = cal_o.at("workweek").as_array();
      if (week.size() != 7) return util::invalid("workweek must have 7 entries");
      for (int i = 0; i < 7; ++i) cfg.workweek[i] = week[static_cast<std::size_t>(i)].as_bool();

      auto created = WorkflowManager::create(root.at("schema_dsl").as_string(), cfg);
      if (!created.ok()) return created.error();
      std::unique_ptr<WorkflowManager> m = std::move(created).take();

      for (const auto& h : cal_o.at("holidays").as_array()) {
        auto d = cal::Date::parse(h.as_string());
        if (!d.ok()) return d.error();
        m->calendar_.add_holiday(d.value());
      }

      m->clock_.advance_to(cal::WorkInstant(root.at("clock").as_int()));

      for (const auto& r : root.at("resources").as_array()) {
        const auto& o = r.as_object();
        auto rid = m->db_->add_resource(o.at("name").as_string(),
                                        o.at("kind").as_string(),
                                        static_cast<int>(o.at("capacity").as_int()));
        for (const auto& w : o.at("time_off").as_array()) {
          const auto& window = w.as_array();
          if (window.size() != 2)
            return util::parse_error("resource time_off window must have 2 entries");
          auto st = m->db_->add_time_off(rid, instant_of(window[0]),
                                         instant_of(window[1]));
          if (!st.ok()) return st.error();
        }
      }

      for (const auto& d : root.at("data_objects").as_array()) {
        auto st = detail::restore_data_object(*m->store_, d.as_object());
        if (!st.ok()) return st.error();
      }

      for (const auto& e : root.at("instances").as_array()) {
        auto st = detail::restore_instance(*m->db_, e.as_object());
        if (!st.ok()) return st.error();
      }

      for (const auto& r : root.at("runs").as_array()) {
        auto st = detail::restore_run(*m->db_, *m->schema_, r.as_object());
        if (!st.ok()) return st.error();
      }

      for (const auto& p : root.at("plans").as_array()) {
        const auto& o = p.as_object();
        sched::ScheduleRunId derived;
        if (!o.at("derived_from").is_null())
          derived = sched::ScheduleRunId{
              static_cast<std::uint64_t>(o.at("derived_from").as_int())};
        auto pid = m->space_->create_plan(o.at("name").as_string(),
                                          instant_of(o.at("created")), derived);
        if (pid.value() != static_cast<std::uint64_t>(o.at("id").as_int()))
          return util::conflict("plan did not restore to the same id");
        auto& plan = m->space_->plan_mut(pid);
        plan.anchor = instant_of(o.at("anchor"));
        plan.deadline = optional_instant_of(o.at("deadline"));
        plan.status = o.at("status").as_string() == "active"
                          ? sched::PlanStatus::kActive
                          : sched::PlanStatus::kSuperseded;
      }

      for (const auto& nj : root.at("schedule_nodes").as_array()) {
        const auto& o = nj.as_object();
        auto plan_id =
            sched::ScheduleRunId{static_cast<std::uint64_t>(o.at("plan").as_int())};
        const std::string activity = o.at("activity").as_string();
        auto rule = m->schema_->find_rule_by_activity(activity);
        if (!rule) return util::not_found("schedule node references unknown activity '" +
                                          activity + "'");
        auto nid = m->space_->create_node(plan_id, activity, *rule);
        auto& n = m->space_->node_mut(nid);
        if (n.id.value() != static_cast<std::uint64_t>(o.at("id").as_int()) ||
            n.version != static_cast<int>(o.at("version").as_int()))
          return util::conflict("schedule node did not restore to the same id/version");
        n.est_duration = cal::WorkDuration::minutes(o.at("est_duration").as_int());
        n.planned_start = instant_of(o.at("planned_start"));
        n.planned_finish = instant_of(o.at("planned_finish"));
        n.baseline_start = instant_of(o.at("baseline_start"));
        n.baseline_finish = instant_of(o.at("baseline_finish"));
        for (const auto& r : o.at("resources").as_array())
          n.resources.push_back(
              util::ResourceId{static_cast<std::uint64_t>(r.as_int())});
        n.total_slack = cal::WorkDuration::minutes(o.at("total_slack").as_int());
        n.free_slack = cal::WorkDuration::minutes(o.at("free_slack").as_int());
        n.critical = o.at("critical").as_bool();
        n.actual_start = optional_instant_of(o.at("actual_start"));
        n.actual_finish = optional_instant_of(o.at("actual_finish"));
        n.completed = o.at("completed").as_bool();
        n.deleted = o.at("deleted").as_bool();
      }

      // Plan deps reference node ids, so wire them after nodes exist.
      for (const auto& p : root.at("plans").as_array()) {
        const auto& o = p.as_object();
        auto pid = sched::ScheduleRunId{static_cast<std::uint64_t>(o.at("id").as_int())};
        for (const auto& d : o.at("deps").as_array()) {
          const auto& pair = d.as_array();
          if (pair.size() != 2)
            return util::parse_error("plan dep must have 2 entries");
          m->space_->add_dep(
              pid, sched::ScheduleNodeId{static_cast<std::uint64_t>(pair[0].as_int())},
              sched::ScheduleNodeId{static_cast<std::uint64_t>(pair[1].as_int())});
        }
      }

      for (const auto& lj : root.at("links").as_array()) {
        const auto& o = lj.as_object();
        auto lid = m->space_->add_link(
            sched::ScheduleNodeId{static_cast<std::uint64_t>(o.at("node").as_int())},
            meta::EntityInstanceId{static_cast<std::uint64_t>(o.at("instance").as_int())},
            instant_of(o.at("linked_at")));
        if (!lid.ok()) return lid.error();
        if (lid.value().value() != static_cast<std::uint64_t>(o.at("id").as_int()))
          return util::conflict("link did not restore to the same id");
      }

      for (const auto& tj : root.at("tasks").as_array()) {
        const auto& o = tj.as_object();
        const std::string name = o.at("name").as_string();
        std::unordered_set<std::string> stops;
        for (const auto& s : o.at("stop_at").as_array()) stops.insert(s.as_string());
        auto st = m->extract_task(name, o.at("target").as_string(), stops);
        if (!st.ok()) return st.error();
        auto tree = m->task(name);
        for (const auto& bj : o.at("bindings").as_array()) {
          const auto& b = bj.as_object();
          auto bound = tree.value()->bind(
              flow::TaskNodeId{static_cast<std::uint64_t>(b.at("node").as_int())},
              b.at("instance").as_string());
          if (!bound.ok()) return bound.error();
        }
        if (!o.at("plan").is_null())
          m->plan_by_task_[name] = sched::ScheduleRunId{
              static_cast<std::uint64_t>(o.at("plan").as_int())};
      }

      if (!root.at("watched_plan").is_null())
        m->tracker_->watch_plan(sched::ScheduleRunId{
            static_cast<std::uint64_t>(root.at("watched_plan").as_int())});

      return m;
    } catch (const std::out_of_range& e) {
      return util::parse_error(std::string("database file: missing field: ") + e.what());
    } catch (const std::bad_variant_access&) {
      return util::parse_error("database file: field has wrong JSON type");
    }
  }
};

std::string save_to_json(const WorkflowManager& manager) {
  return Persistence::save(manager);
}

namespace {
constexpr std::string_view kFooterMagic = "#herc-snapshot-crc32c ";
}  // namespace

std::string append_snapshot_footer(std::string text) {
  char crc_hex[8];
  util::crc32c_to_hex(util::crc32c(text), crc_hex);
  const std::string body_size = std::to_string(text.size());
  text.append(kFooterMagic);
  text.append(crc_hex, 8);
  text.push_back(' ');
  text.append(body_size);
  text.push_back('\n');
  return text;
}

util::Result<std::string_view> strip_snapshot_footer(std::string_view text,
                                                     RecoveryStats* stats) {
  // The footer is the final line; save_to_json bodies end in '\n', so search
  // back from the character before the trailing newline (if any).
  std::string_view trimmed = text;
  if (!trimmed.empty() && trimmed.back() == '\n') trimmed.remove_suffix(1);
  std::size_t nl = trimmed.find_last_of('\n');
  std::string_view last_line =
      nl == std::string_view::npos ? trimmed : trimmed.substr(nl + 1);
  if (last_line.substr(0, kFooterMagic.size()) != kFooterMagic)
    return text;  // pre-footer snapshot
  if (stats != nullptr) stats->snapshot_footer = true;

  auto corrupt = [&](const char* what) -> util::Error {
    if (stats != nullptr) {
      stats->snapshot_corrupt = true;
      stats->detail = std::string("snapshot: ") + what;
    }
    return util::parse_error(std::string("snapshot footer: ") + what);
  };

  std::string_view fields = last_line.substr(kFooterMagic.size());
  if (fields.size() < 10 || fields[8] != ' ')
    return corrupt("malformed checksum footer");
  bool crc_ok = false;
  const std::uint32_t stored = util::crc32c_from_hex(fields.substr(0, 8), &crc_ok);
  if (!crc_ok) return corrupt("malformed checksum footer");
  std::uint64_t declared = 0;
  const char* end = fields.data() + fields.size();
  auto [next, ec] = std::from_chars(fields.data() + 9, end, declared);
  if (ec != std::errc{} || next != end)
    return corrupt("malformed checksum footer");

  std::string_view body = text.substr(0, nl == std::string_view::npos ? 0 : nl + 1);
  if (body.size() != declared)
    return corrupt("body length does not match footer");
  if (util::crc32c(body) != stored)
    return corrupt("checksum mismatch (snapshot damaged on disk)");
  return body;
}

util::Status save_project_file(WorkflowManager& manager, const std::string& path,
                               bool durable) {
  auto st = util::write_file_atomic(
      path, append_snapshot_footer(save_to_json(manager)), durable);
  if (!st.ok()) return st;
  // The snapshot now covers everything the journal held; restart it so
  // recovery replays only runs recorded after this save.
  if (manager.journal()) return manager.journal()->restart();
  return util::Status::ok_status();
}

util::Result<std::unique_ptr<WorkflowManager>> load_from_json(std::string_view text,
                                                              RecoveryStats* stats) {
  auto body = strip_snapshot_footer(text, stats);
  if (!body.ok()) return body.error();
  return Persistence::load(body.value());
}

}  // namespace herc::hercules
