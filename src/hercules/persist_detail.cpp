#include "hercules/persist_detail.hpp"

namespace herc::hercules::detail {

using util::Json;
using util::JsonArray;
using util::JsonObject;

namespace {
Json instant_json(cal::WorkInstant t) { return Json(t.minutes_since_epoch()); }
cal::WorkInstant instant_of(const Json& j) { return cal::WorkInstant(j.as_int()); }
}  // namespace

Json data_object_json(const data::DataObject& d) {
  JsonObject o;
  o.set("id", d.id.value());
  o.set("name", d.name);
  o.set("type", d.type_name);
  o.set("version", d.version);
  o.set("content", d.content);
  o.set("created", instant_json(d.created_at));
  return Json(std::move(o));
}

Json instance_json(const meta::EntityInstance& e) {
  JsonObject o;
  o.set("id", e.id.value());
  o.set("type", e.type_name);
  o.set("name", e.name);
  o.set("version", e.version);
  o.set("produced_by",
        e.produced_by.valid() ? Json(e.produced_by.value()) : Json(nullptr));
  o.set("data", e.data.valid() ? Json(e.data.value()) : Json(nullptr));
  o.set("created", instant_json(e.created_at));
  return Json(std::move(o));
}

Json run_json(const meta::Run& r) {
  JsonObject o;
  o.set("id", r.id.value());
  o.set("activity", r.activity);
  o.set("tool", r.tool_binding);
  o.set("designer", r.designer);
  JsonArray inputs;
  for (auto in : r.inputs) inputs.emplace_back(in.value());
  o.set("inputs", std::move(inputs));
  o.set("output", r.output.valid() ? Json(r.output.value()) : Json(nullptr));
  o.set("started", instant_json(r.started_at));
  o.set("finished", instant_json(r.finished_at));
  o.set("status", std::string(meta::run_status_name(r.status)));
  return Json(std::move(o));
}

util::Status restore_data_object(data::DataStore& store, const JsonObject& o) {
  data::DataObject obj;
  obj.id = util::DataObjectId{static_cast<std::uint64_t>(o.at("id").as_int())};
  obj.name = o.at("name").as_string();
  obj.type_name = o.at("type").as_string();
  obj.version = static_cast<int>(o.at("version").as_int());
  obj.content = o.at("content").as_string();
  obj.content_hash = data::content_hash(obj.content);
  obj.created_at = instant_of(o.at("created"));
  return store.restore(std::move(obj));
}

util::Status restore_instance(meta::Database& db, const JsonObject& o) {
  meta::RunId produced_by;
  if (!o.at("produced_by").is_null())
    produced_by = meta::RunId{static_cast<std::uint64_t>(o.at("produced_by").as_int())};
  util::DataObjectId data;
  if (!o.at("data").is_null())
    data = util::DataObjectId{static_cast<std::uint64_t>(o.at("data").as_int())};
  auto inst = db.create_instance(o.at("type").as_string(), o.at("name").as_string(),
                                 produced_by, data, instant_of(o.at("created")));
  if (!inst.ok()) return inst.error();
  const auto& stored = db.instance(inst.value());
  if (stored.id.value() != static_cast<std::uint64_t>(o.at("id").as_int()) ||
      stored.version != static_cast<int>(o.at("version").as_int()))
    return util::conflict("instance " + std::to_string(o.at("id").as_int()) +
                          " did not restore to the same id/version");
  return util::Status::ok_status();
}

util::Status restore_run(meta::Database& db, const schema::TaskSchema& schema,
                         const JsonObject& o) {
  meta::Run run;
  run.activity = o.at("activity").as_string();
  if (auto rule = schema.find_rule_by_activity(run.activity)) run.rule = *rule;
  run.tool_binding = o.at("tool").as_string();
  run.designer = o.at("designer").as_string();
  for (const auto& in : o.at("inputs").as_array())
    run.inputs.push_back(meta::EntityInstanceId{static_cast<std::uint64_t>(in.as_int())});
  if (!o.at("output").is_null())
    run.output =
        meta::EntityInstanceId{static_cast<std::uint64_t>(o.at("output").as_int())};
  run.started_at = instant_of(o.at("started"));
  run.finished_at = instant_of(o.at("finished"));
  run.status = o.at("status").as_string() == "completed" ? meta::RunStatus::kCompleted
                                                         : meta::RunStatus::kFailed;
  auto rid = db.record_run(std::move(run));
  if (!rid.ok()) return rid.error();
  if (rid.value().value() != static_cast<std::uint64_t>(o.at("id").as_int()))
    return util::conflict("run did not restore to the same id");
  return util::Status::ok_status();
}

}  // namespace herc::hercules::detail
