#pragma once
// Persistence of the Hercules database to JSON.
//
// Everything a project needs to resume is saved: schema (as DSL), calendar,
// virtual clock, resources, Level-4 data objects, both Level-3 spaces
// (instances/runs and plans/schedule-nodes/links), extracted task trees with
// their bindings, and which plan each task tracks.
//
// NOT saved: the tool registry (tool specs contain behaviour closures;
// re-register tools after loading) and therefore the simulated-tool RNG
// position.  save -> load -> save is a byte-identical fixed point (tested).

#include <memory>
#include <string>

#include "hercules/workflow_manager.hpp"
#include "util/result.hpp"

namespace herc::hercules {

struct RecoveryStats;  // journal.hpp

/// Serializes the full manager state.
[[nodiscard]] std::string save_to_json(const WorkflowManager& manager);

/// Appends the integrity footer save_project_file writes after the
/// serialized state:
///   `#herc-snapshot-crc32c <crc32c-hex8> <body-bytes>\n`
/// The checksum covers every byte before the footer line, so a snapshot
/// damaged in place after the atomic rename is detected at load instead of
/// being deserialized into a silently wrong project.
[[nodiscard]] std::string append_snapshot_footer(std::string text);

/// Verifies and strips the integrity footer, returning the body it covers.
/// Text without a footer is returned unchanged (pre-footer snapshots stay
/// loadable).  A footer that is malformed or does not match the body is a
/// kParse error; with `stats`, RecoveryStats::snapshot_corrupt is also set
/// so recover_project can quarantine the file.
[[nodiscard]] util::Result<std::string_view> strip_snapshot_footer(
    std::string_view text, RecoveryStats* stats = nullptr);

/// Reconstructs a manager from save_to_json output, with or without the
/// integrity footer.  Fails with kParse on malformed JSON or a checksum
/// mismatch, kInvalid/kConflict on semantic mismatches (e.g. version
/// counters that do not reproduce).  `stats` reports footer presence and
/// corruption (see strip_snapshot_footer).
[[nodiscard]] util::Result<std::unique_ptr<WorkflowManager>> load_from_json(
    std::string_view text, RecoveryStats* stats = nullptr);

/// Crash-safe snapshot: serializes the manager and atomically replaces
/// `path` (write to `path + ".tmp"`, then rename), so a crash mid-save never
/// leaves a truncated database file.  If the manager has an active run
/// journal it is restarted (truncated) afterwards — the snapshot subsumes
/// its contents.  With `durable` the replacement is fsynced (file + parent
/// directory) before the journal restarts, so a machine crash between
/// snapshot and truncation cannot lose both.
[[nodiscard]] util::Status save_project_file(WorkflowManager& manager,
                                             const std::string& path,
                                             bool durable = false);

}  // namespace herc::hercules
