#pragma once
// Persistence of the Hercules database to JSON.
//
// Everything a project needs to resume is saved: schema (as DSL), calendar,
// virtual clock, resources, Level-4 data objects, both Level-3 spaces
// (instances/runs and plans/schedule-nodes/links), extracted task trees with
// their bindings, and which plan each task tracks.
//
// NOT saved: the tool registry (tool specs contain behaviour closures;
// re-register tools after loading) and therefore the simulated-tool RNG
// position.  save -> load -> save is a byte-identical fixed point (tested).

#include <memory>
#include <string>

#include "hercules/workflow_manager.hpp"
#include "util/result.hpp"

namespace herc::hercules {

/// Serializes the full manager state.
[[nodiscard]] std::string save_to_json(const WorkflowManager& manager);

/// Reconstructs a manager from save_to_json output.  Fails with kParse on
/// malformed JSON, kInvalid/kConflict on semantic mismatches (e.g. version
/// counters that do not reproduce).
[[nodiscard]] util::Result<std::unique_ptr<WorkflowManager>> load_from_json(
    std::string_view text);

/// Crash-safe snapshot: serializes the manager and atomically replaces
/// `path` (write to `path + ".tmp"`, then rename), so a crash mid-save never
/// leaves a truncated database file.  If the manager has an active run
/// journal it is restarted (truncated) afterwards — the snapshot subsumes
/// its contents.  With `durable` the replacement is fsynced (file + parent
/// directory) before the journal restarts, so a machine crash between
/// snapshot and truncation cannot lose both.
[[nodiscard]] util::Status save_project_file(WorkflowManager& manager,
                                             const std::string& path,
                                             bool durable = false);

}  // namespace herc::hercules
