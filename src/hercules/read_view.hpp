#pragma once
// ReadView: one pinned epoch of a project, readable without any lock.
//
// A ReadView is an immutable copy of everything the read-only operations
// (query, explain, status, gantt) consume: both Level-3 spaces, the clock,
// and the task -> tracked-plan map.  Thanks to the CowVec storage underneath
// meta::Database / sched::ScheduleSpace, building one costs O(index keys),
// not O(rows), and holding one pins only the table buffers of its epoch —
// which are reclaimed automatically when the last view referencing them
// dies (shared_ptr-driven epoch reclamation; see util/cow.hpp).
//
// Lifecycle: the writer (the shard's serialized write lane) calls
// WorkflowManager::read_view() after each mutation; the manager rebuilds
// only if something changed (epoch++), else republishes the cached view.
// Readers atomically load the current view and run against it for as long
// as they like — a designer can hold epoch N while the writer publishes
// N+1, N+2, ...; memory stays bounded because unshared tables still share
// every buffer except the ones rewritten since N.
//
// The calendar and query engine are referenced, not copied: both outlive
// every view (the shard keeps its manager alive while reads are in flight),
// the calendar is immutable after setup, and the engine's shared result
// cache is internally synchronized with per-target version stamps keeping
// epochs straight.

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "calendar/work_calendar.hpp"
#include "core/schedule_space.hpp"
#include "metadata/database.hpp"
#include "query/query.hpp"
#include "util/result.hpp"

namespace herc::hercules {

class ReadView {
 public:
  ReadView(std::uint64_t epoch, const meta::Database& db,
           const sched::ScheduleSpace& space, cal::WorkInstant now,
           std::map<std::string, sched::ScheduleRunId> plan_by_task,
           const cal::WorkCalendar* calendar, const query::QueryEngine* engine)
      : epoch_(epoch),
        db_(db),
        space_(space),
        now_(now),
        plan_by_task_(std::move(plan_by_task)),
        calendar_(calendar),
        engine_(engine) {}

  ReadView(const ReadView&) = delete;
  ReadView& operator=(const ReadView&) = delete;

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const meta::Database& db() const { return db_; }
  [[nodiscard]] const sched::ScheduleSpace& space() const { return space_; }
  [[nodiscard]] cal::WorkInstant now() const { return now_; }

  /// The plan tracked for `task` at snapshot time, if any.
  [[nodiscard]] std::optional<sched::ScheduleRunId> plan_of(
      const std::string& task) const;

  // Read operations, byte-identical to the WorkflowManager equivalents
  // evaluated at the snapshot instant.
  //
  // Each rendered response is memoized for the life of the view: an epoch is
  // immutable, so a whole response — the status table, a rendered query —
  // can be cached with NO invalidation logic at all; the memo dies with the
  // epoch.  This is where snapshot reads beat the single-mutex model even
  // with zero parallelism: the mutable-state path must re-render on every
  // call because the state may have moved since the last one.
  [[nodiscard]] util::Result<std::string> gantt(const std::string& task) const;
  [[nodiscard]] util::Result<std::string> status_report(const std::string& task) const;
  [[nodiscard]] util::Result<std::string> query(std::string_view statement) const;
  [[nodiscard]] util::Result<std::string> explain(std::string_view statement) const;

 private:
  [[nodiscard]] util::Result<std::string> memoized(
      std::string key,
      const std::function<util::Result<std::string>()>& compute) const;

  const std::uint64_t epoch_;
  const meta::Database db_;
  const sched::ScheduleSpace space_;
  const cal::WorkInstant now_;
  const std::map<std::string, sched::ScheduleRunId> plan_by_task_;
  const cal::WorkCalendar* calendar_;
  const query::QueryEngine* engine_;

  /// Rendered-response memo ("<op>\n<operand>" -> result).  The mutex only
  /// covers the map; a miss computes under it (concurrent first-touchers of
  /// the same epoch would serialize on the data anyway).
  mutable std::mutex memo_mu_;
  mutable std::unordered_map<std::string, util::Result<std::string>> memo_;
};

/// Snapshot-health counters, shared by the manager and the deleter of every
/// view it publishes (atomic: views die on reader threads).
struct SnapshotStats {
  std::atomic<std::uint64_t> published{0};  ///< distinct epochs built
  std::atomic<std::int64_t> live{0};        ///< views not yet reclaimed
};

/// The published-view slot: writers store the newest epoch, readers copy it
/// out.  A dedicated mutex held only for the shared_ptr copy — never while
/// a view is built or a response rendered — so a read can stall a write (or
/// vice versa) for at most a pointer copy.  Deliberately NOT
/// std::atomic<std::shared_ptr>: libstdc++'s lock-bit implementation
/// unlocks its load() with a relaxed RMW, which leaves no release edge from
/// a reader's critical section to the next writer's plain-pointer swap —
/// a data race by the letter of the memory model, and one TSan reports.
class ViewSlot {
 public:
  [[nodiscard]] std::shared_ptr<const ReadView> load() const {
    std::lock_guard<std::mutex> lock(mu_);
    return view_;
  }
  void store(std::shared_ptr<const ReadView> view) {
    std::lock_guard<std::mutex> lock(mu_);
    view_ = std::move(view);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const ReadView> view_;
};

}  // namespace herc::hercules
