#include "hercules/read_view.hpp"

#include "gantt/gantt.hpp"
#include "track/status.hpp"

namespace herc::hercules {

std::optional<sched::ScheduleRunId> ReadView::plan_of(
    const std::string& task) const {
  auto it = plan_by_task_.find(task);
  if (it == plan_by_task_.end()) return std::nullopt;
  return it->second;
}

util::Result<std::string> ReadView::memoized(
    std::string key,
    const std::function<util::Result<std::string>()>& compute) const {
  std::lock_guard<std::mutex> lock(memo_mu_);
  auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  auto result = compute();
  memo_.emplace(std::move(key), result);
  return result;
}

util::Result<std::string> ReadView::gantt(const std::string& task) const {
  return memoized("gantt\n" + task, [&]() -> util::Result<std::string> {
    auto plan = plan_of(task);
    if (!plan) return util::conflict("gantt: task '" + task + "' has no plan");
    return herc::gantt::render_gantt(space_, *calendar_, *plan, now_);
  });
}

util::Result<std::string> ReadView::status_report(const std::string& task) const {
  return memoized("status\n" + task, [&]() -> util::Result<std::string> {
    auto plan = plan_of(task);
    if (!plan) return util::conflict("status: task '" + task + "' has no plan");
    return track::render_status_report(space_, db_, *calendar_, *plan, now_);
  });
}

util::Result<std::string> ReadView::query(std::string_view statement) const {
  return memoized("query\n" + std::string(statement),
                  [&]() -> util::Result<std::string> {
                    auto result = engine_->execute(statement, db_, space_);
                    if (!result.ok()) return result.error();
                    return result.value().render(calendar_);
                  });
}

util::Result<std::string> ReadView::explain(std::string_view statement) const {
  return memoized("explain\n" + std::string(statement),
                  [&]() -> util::Result<std::string> {
                    return engine_->explain(statement, db_, space_);
                  });
}

}  // namespace herc::hercules
