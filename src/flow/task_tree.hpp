#pragma once
// Level 2 of the four-level architecture: design flow models.
//
// In Hercules the Level-2 object is the *task tree*: the user extracts a
// tree that covers the scope of an intended task, then binds unique tool and
// data instances to its leaf nodes, after which the tree can be executed
// (creating Level-3 metadata) or *simulated* (creating Level-3 schedule
// instances — the paper's core idea).
//
// Tree shape: each construction rule whose output is in scope becomes an
// activity node; its children are, in rule order, one node per input data
// type (either the producing activity node or a data leaf) followed by a
// tool leaf for the rule's tool type.  Extraction is deterministic because a
// data type has at most one producing rule (see schema.hpp).
//
// Shared structure: a data type consumed by several activities is
// represented by ONE node (activity or data leaf) referenced from each
// consumer — the "tree" is really a rooted DAG, so each activity is planned
// and executed once however many consumers its output has.  `parent` holds
// the first consumer found; traversals visit each node exactly once.

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "schema/schema.hpp"
#include "util/ids.hpp"
#include "util/result.hpp"

namespace herc::flow {

using util::TaskNodeId;

enum class NodeKind {
  kActivity,  ///< a construction rule to run
  kDataLeaf,  ///< a primary-input data slot to bind
  kToolLeaf,  ///< a tool slot to bind
};

[[nodiscard]] const char* node_kind_name(NodeKind k);

/// One node of a task tree.
struct TaskNode {
  TaskNodeId id;
  NodeKind kind = NodeKind::kActivity;
  schema::RuleId rule;           ///< set for activity nodes
  schema::EntityTypeId type;     ///< output data type / leaf data type / tool type
  std::vector<TaskNodeId> children;  ///< inputs in rule order, tool leaf last
  TaskNodeId parent;             ///< invalid for the root
  std::string binding;           ///< bound instance name; empty if unbound (leaves)
};

/// A task tree over a schema.  Holds a non-owning pointer to the schema; the
/// schema must outlive the tree (the WorkflowManager owns both).
class TaskTree {
 public:
  /// Extracts the tree producing `target_type` (a data type name).  Types in
  /// `stop_at` are treated as given inputs even if a producing rule exists,
  /// which limits the scope of the task exactly as Hercules' "task tree that
  /// covers the scope of the intended task".
  [[nodiscard]] static util::Result<TaskTree> extract(
      const schema::TaskSchema& schema, const std::string& target_type,
      const std::unordered_set<std::string>& stop_at = {});

  [[nodiscard]] const schema::TaskSchema& schema() const { return *schema_; }
  [[nodiscard]] TaskNodeId root() const { return root_; }
  [[nodiscard]] const TaskNode& node(TaskNodeId id) const;
  [[nodiscard]] const std::vector<TaskNode>& nodes() const { return nodes_; }

  /// Activity nodes in post-order: "running from primary inputs to outputs".
  /// This is both the execution order and the planning order.
  [[nodiscard]] std::vector<TaskNodeId> activities_post_order() const;

  /// All leaves (data + tool) in post-order.
  [[nodiscard]] std::vector<TaskNodeId> leaves() const;

  /// Binds a specific leaf to an instance name (a tool instance like
  /// "spice3f5@server1" or a design-data name like "adder.netlist").
  util::Status bind(TaskNodeId leaf, const std::string& instance_name);

  /// Binds every leaf whose entity type is named `type_name`.
  util::Status bind_type(const std::string& type_name, const std::string& instance_name);

  /// OK iff every leaf is bound; otherwise lists the unbound slots.
  [[nodiscard]] util::Status fully_bound() const;

  /// Activity name of a node (activity nodes only).
  [[nodiscard]] const std::string& activity_name(TaskNodeId id) const;

  /// ASCII rendering of the tree with bindings (the Fig. 8 task-graph pane).
  [[nodiscard]] std::string render() const;

 private:
  explicit TaskTree(const schema::TaskSchema& schema) : schema_(&schema) {}

  TaskNodeId build(schema::EntityTypeId data_type,
                   const std::unordered_set<std::string>& stop_at, TaskNodeId parent,
                   std::unordered_map<std::uint64_t, TaskNodeId>& shared);
  TaskNodeId new_node(NodeKind kind, schema::EntityTypeId type, TaskNodeId parent);
  void render_node(TaskNodeId id, std::string& out, std::string prefix, bool last,
                   std::unordered_set<std::uint64_t>& rendered) const;

  const schema::TaskSchema* schema_;
  std::vector<TaskNode> nodes_;  // index = id - 1
  TaskNodeId root_;
};

}  // namespace herc::flow
