#include "flow/task_tree.hpp"

#include <stdexcept>

namespace herc::flow {

const char* node_kind_name(NodeKind k) {
  switch (k) {
    case NodeKind::kActivity: return "activity";
    case NodeKind::kDataLeaf: return "data-leaf";
    case NodeKind::kToolLeaf: return "tool-leaf";
  }
  return "?";
}

util::Result<TaskTree> TaskTree::extract(const schema::TaskSchema& schema,
                                         const std::string& target_type,
                                         const std::unordered_set<std::string>& stop_at) {
  auto valid = schema.validate();
  if (!valid.ok()) return valid.error();

  auto target = schema.find_type(target_type);
  if (!target)
    return util::not_found("target type '" + target_type + "' not in schema '" +
                           schema.name() + "'");
  if (schema.type(*target).kind != schema::EntityKind::kData)
    return util::invalid("target '" + target_type + "' is a tool type");
  if (!schema.producer_of(*target))
    return util::invalid("target '" + target_type +
                         "' is a primary input; nothing to execute");
  if (stop_at.count(target_type))
    return util::invalid("target '" + target_type + "' is in the stop set");
  for (const auto& s : stop_at)
    if (!schema.find_type(s))
      return util::not_found("stop type '" + s + "' not in schema");

  TaskTree tree(schema);
  std::unordered_map<std::uint64_t, TaskNodeId> shared;
  tree.root_ = tree.build(*target, stop_at, TaskNodeId::invalid(), shared);
  return tree;
}

TaskNodeId TaskTree::new_node(NodeKind kind, schema::EntityTypeId type,
                              TaskNodeId parent) {
  TaskNode n;
  n.id = TaskNodeId{nodes_.size() + 1};
  n.kind = kind;
  n.type = type;
  n.parent = parent;
  nodes_.push_back(std::move(n));
  return nodes_.back().id;
}

TaskNodeId TaskTree::build(schema::EntityTypeId data_type,
                           const std::unordered_set<std::string>& stop_at,
                           TaskNodeId parent,
                           std::unordered_map<std::uint64_t, TaskNodeId>& shared) {
  // A data type already in scope is shared, not duplicated: its producer
  // runs once and every consumer reads the same output.
  if (auto it = shared.find(data_type.value()); it != shared.end()) return it->second;

  auto producer = schema_->producer_of(data_type);
  if (!producer || stop_at.count(schema_->type(data_type).name)) {
    TaskNodeId leaf = new_node(NodeKind::kDataLeaf, data_type, parent);
    shared.emplace(data_type.value(), leaf);
    return leaf;
  }
  const auto& rule = schema_->rule(*producer);
  TaskNodeId id = new_node(NodeKind::kActivity, data_type, parent);
  nodes_[id.value() - 1].rule = rule.id;
  shared.emplace(data_type.value(), id);
  std::vector<TaskNodeId> children;
  children.reserve(rule.inputs.size() + 1);
  for (schema::EntityTypeId in : rule.inputs)
    children.push_back(build(in, stop_at, id, shared));
  children.push_back(new_node(NodeKind::kToolLeaf, rule.tool, id));
  nodes_[id.value() - 1].children = std::move(children);
  return id;
}

const TaskNode& TaskTree::node(TaskNodeId id) const {
  if (!id.valid() || id.value() > nodes_.size())
    throw std::out_of_range("TaskTree::node: unknown id " + id.str());
  return nodes_[id.value() - 1];
}

namespace {
void post_order_walk(const TaskTree& t, TaskNodeId id, std::vector<TaskNodeId>& out,
                     bool leaves, std::unordered_set<std::uint64_t>& visited) {
  if (!visited.insert(id.value()).second) return;  // shared node: visit once
  const TaskNode& n = t.node(id);
  for (TaskNodeId c : n.children) post_order_walk(t, c, out, leaves, visited);
  if (leaves ? n.kind != NodeKind::kActivity : n.kind == NodeKind::kActivity)
    out.push_back(id);
}
}  // namespace

std::vector<TaskNodeId> TaskTree::activities_post_order() const {
  std::vector<TaskNodeId> out;
  std::unordered_set<std::uint64_t> visited;
  post_order_walk(*this, root_, out, /*leaves=*/false, visited);
  return out;
}

std::vector<TaskNodeId> TaskTree::leaves() const {
  std::vector<TaskNodeId> out;
  std::unordered_set<std::uint64_t> visited;
  post_order_walk(*this, root_, out, /*leaves=*/true, visited);
  return out;
}

util::Status TaskTree::bind(TaskNodeId leaf, const std::string& instance_name) {
  if (!leaf.valid() || leaf.value() > nodes_.size())
    return util::not_found("bind: unknown node " + leaf.str());
  TaskNode& n = nodes_[leaf.value() - 1];
  if (n.kind == NodeKind::kActivity)
    return util::invalid("bind: node " + leaf.str() +
                         " is an activity, only leaves are bindable");
  if (instance_name.empty()) return util::invalid("bind: empty instance name");
  n.binding = instance_name;
  return util::Status::ok_status();
}

util::Status TaskTree::bind_type(const std::string& type_name,
                                 const std::string& instance_name) {
  auto type = schema_->find_type(type_name);
  if (!type) return util::not_found("bind_type: unknown type '" + type_name + "'");
  bool any = false;
  for (auto& n : nodes_) {
    if (n.kind != NodeKind::kActivity && n.type == *type) {
      n.binding = instance_name;
      any = true;
    }
  }
  if (!any)
    return util::not_found("bind_type: no leaf of type '" + type_name +
                           "' in this task tree");
  return util::Status::ok_status();
}

util::Status TaskTree::fully_bound() const {
  std::string missing;
  for (const auto& n : nodes_) {
    if (n.kind != NodeKind::kActivity && n.binding.empty()) {
      if (!missing.empty()) missing += ", ";
      missing += schema_->type(n.type).name + " (" + node_kind_name(n.kind) + " " +
                 n.id.str() + ")";
    }
  }
  if (!missing.empty()) return util::unbound("unbound leaves: " + missing);
  return util::Status::ok_status();
}

const std::string& TaskTree::activity_name(TaskNodeId id) const {
  const TaskNode& n = node(id);
  if (n.kind != NodeKind::kActivity)
    throw std::logic_error("activity_name: node " + id.str() + " is a leaf");
  return schema_->rule(n.rule).activity;
}

void TaskTree::render_node(TaskNodeId id, std::string& out, std::string prefix,
                           bool last,
                           std::unordered_set<std::uint64_t>& rendered) const {
  const TaskNode& n = node(id);
  const bool repeat = !rendered.insert(id.value()).second;
  out += prefix;
  if (n.parent.valid()) out += last ? "`-- " : "|-- ";
  switch (n.kind) {
    case NodeKind::kActivity:
      out += "[" + schema_->rule(n.rule).activity + "] -> " +
             schema_->type(n.type).name;
      if (repeat) {
        out += " (shared, see above)\n";
        return;
      }
      break;
    case NodeKind::kDataLeaf:
      out += schema_->type(n.type).name + " (data";
      out += n.binding.empty() ? ", UNBOUND)" : " = " + n.binding + ")";
      break;
    case NodeKind::kToolLeaf:
      out += schema_->type(n.type).name + " (tool";
      out += n.binding.empty() ? ", UNBOUND)" : " = " + n.binding + ")";
      break;
  }
  out += "\n";
  std::string child_prefix = prefix;
  if (n.parent.valid()) child_prefix += last ? "    " : "|   ";
  for (std::size_t i = 0; i < n.children.size(); ++i)
    render_node(n.children[i], out, child_prefix, i + 1 == n.children.size(), rendered);
}

std::string TaskTree::render() const {
  std::string out;
  std::unordered_set<std::uint64_t> rendered;
  render_node(root_, out, "", true, rendered);
  return out;
}

}  // namespace herc::flow
