#pragma once
// The structured events the observability subsystem carries.
//
// Every interesting state transition in the Level-3 spaces (a run recorded,
// a plan computed, a completion linked, a slip propagated) is describable as
// one Event.  Events carry BOTH clocks the system lives in: the monotonic
// wall clock (what the process actually spent, for profiling) and the
// SimClock work-time span (where the work sits on the project timeline, for
// planned-vs-actual comparison).  Producers publish through an EventBus
// (event_bus.hpp); consumers — MetricsRegistry, ChromeTraceExporter — only
// ever see this struct, never the producing subsystem.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "calendar/work_calendar.hpp"

namespace herc::obs {

enum class EventKind {
  kRunStarted,        ///< executor is about to invoke a tool
  kRunFinished,       ///< a Run was recorded (completed or failed)
  kInstanceCreated,   ///< an entity instance appeared in the database
  kSchedulePlanned,   ///< a plan (ScheduleRun) was computed
  kActivityPlanned,   ///< one schedule node of a plan received dates
  kActivityLinked,    ///< designer linked final data to a schedule node
  kSlipPropagated,    ///< tracker re-projected the watched plan with CPM
  kQueryExecuted,     ///< the query engine evaluated a statement
  kScope,             ///< a generic wall-clock timed scope closed
};

[[nodiscard]] const char* event_kind_name(EventKind k);

struct Event {
  EventKind kind = EventKind::kScope;
  std::string name;      ///< activity / plan / query text / scope name
  std::string category;  ///< producing layer: "exec", "plan", "track", "query"
  std::string project;   ///< stamped by the bus from its project label if empty
  std::uint64_t id = 0;  ///< run / plan / node id when one applies

  /// Monotonic sequence number, stamped by the bus (1, 2, ...).
  std::uint64_t seq = 0;
  /// Wall-clock publish timestamp (steady-clock ns); stamped by the bus.
  std::int64_t wall_ns = 0;
  /// Wall-clock duration for scopes and queries; -1 when not a timed event.
  std::int64_t duration_ns = -1;

  /// Work-time span of the event's subject (a run's or schedule node's
  /// start/finish, a link's instant).  Absent for pure wall-clock events.
  std::optional<cal::WorkInstant> work_start;
  std::optional<cal::WorkInstant> work_finish;

  bool failed = false;  ///< e.g. a failed run or an erroring query

  /// Free-form detail (designer, tool binding, row counts, ...).
  std::vector<std::pair<std::string, std::string>> args;
};

}  // namespace herc::obs
