#pragma once
// EventBus: the thread-safe publish/subscribe hub of herc::obs.
//
// Producers (executor, planner, tracker, query engine) hold a nullable
// EventBus* and guard every publication with obs::on(bus) — a null pointer
// or a bus with zero subscribers costs one relaxed atomic load, so an
// uninstrumented build path stays as fast as before the subsystem existed.
// Subscribers (MetricsRegistry, ChromeTraceExporter, tests) receive every
// event in publish order, under the bus lock, in the publisher's thread.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/event.hpp"

namespace herc::obs {

/// Receives published events.  Must outlive its subscription (unsubscribe
/// before destruction; the bundled subscribers do this via detach()).
class Subscriber {
 public:
  virtual ~Subscriber() = default;
  virtual void on_event(const Event& event) = 0;
};

class EventBus {
 public:
  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Project label stamped onto events that do not carry one (one bus per
  /// WorkflowManager; the label is the schema name).
  void set_project(std::string name);
  [[nodiscard]] std::string project() const;

  void subscribe(Subscriber* sub);
  /// Unknown subscribers are ignored (idempotent).
  void unsubscribe(Subscriber* sub);

  /// True when at least one subscriber is attached.  The fast path every
  /// producer checks before building an Event.
  [[nodiscard]] bool active() const {
    return subscriber_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Stamps seq/wall_ns/project and delivers to every subscriber, in
  /// subscription order.  No-op without subscribers.
  void publish(Event event);

  /// Events delivered so far (diagnostics).
  [[nodiscard]] std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }

  /// Monotonic wall-clock now in ns (the clock publish() stamps with).
  [[nodiscard]] static std::int64_t wall_now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Subscriber*> subscribers_;
  std::string project_;
  std::atomic<int> subscriber_count_{0};
  std::atomic<std::uint64_t> published_{0};
  std::uint64_t next_seq_ = 1;
};

/// The producers' fast-path guard.
[[nodiscard]] inline bool on(const EventBus* bus) { return bus && bus->active(); }

/// RAII wall-clock scope: publishes a kScope event with the measured
/// duration when it closes.  Arms only if the bus is active at construction,
/// so a disabled bus costs one atomic load and no clock reads.
class ScopedTimer {
 public:
  ScopedTimer(EventBus* bus, std::string name, std::string category)
      : bus_(on(bus) ? bus : nullptr) {
    if (!bus_) return;
    name_ = std::move(name);
    category_ = std::move(category);
    start_ns_ = EventBus::wall_now_ns();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (!bus_) return;
    Event e;
    e.kind = EventKind::kScope;
    e.name = std::move(name_);
    e.category = std::move(category_);
    e.duration_ns = EventBus::wall_now_ns() - start_ns_;
    bus_->publish(std::move(e));
  }

 private:
  EventBus* bus_ = nullptr;
  std::string name_;
  std::string category_;
  std::int64_t start_ns_ = 0;
};

}  // namespace herc::obs
