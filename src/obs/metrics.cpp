#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/strings.hpp"

namespace herc::obs {

namespace {

/// Renders ns durations like "1.25ms" for the text dump.
std::string ns_str(double ns) {
  char buf[32];
  if (ns < 1e3) std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  else if (ns < 1e6) std::snprintf(buf, sizeof(buf), "%.2fus", ns / 1e3);
  else if (ns < 1e9) std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  else std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  return buf;
}

}  // namespace

void Histogram::record(std::int64_t ns) {
  if (ns < 0) ns = 0;
  int bucket = 0;
  while (bucket + 1 < kBuckets && (std::int64_t{1} << (bucket + 1)) <= ns) ++bucket;
  ++buckets_[bucket];
  if (count_ == 0 || ns < min_) min_ = ns;
  if (ns > max_) max_ = ns;
  ++count_;
  sum_ += ns;
}

std::int64_t Histogram::quantile_ns(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return std::int64_t{1} << (i + 1);
  }
  return max_;
}

void MetricsRegistry::attach(EventBus& bus) {
  detach();
  bus_ = &bus;
  bus.subscribe(this);
}

void MetricsRegistry::detach() {
  if (bus_ == nullptr) return;
  bus_->unsubscribe(this);
  bus_ = nullptr;
}

void MetricsRegistry::add(const std::string& counter, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[counter] += delta;
}

void MetricsRegistry::record_latency(const std::string& histogram, std::int64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_[histogram].record(ns);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

void MetricsRegistry::on_event(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (event.kind) {
    case EventKind::kRunStarted:
      ++counters_["runs_started"];
      break;
    case EventKind::kRunFinished:
      ++counters_["runs_executed"];
      if (event.failed) ++counters_["runs_failed"];
      break;
    case EventKind::kInstanceCreated:
      ++counters_["instances_created"];
      break;
    case EventKind::kSchedulePlanned:
      ++counters_["plans_computed"];
      for (const auto& [key, value] : event.args)
        if (key == "derived_from") ++counters_["replans"];
      break;
    case EventKind::kActivityPlanned:
      ++counters_["activities_planned"];
      break;
    case EventKind::kActivityLinked:
      ++counters_["completions_linked"];
      break;
    case EventKind::kSlipPropagated:
      // A failed projection left the plan's displayed dates stale — count it
      // apart so it never hides inside the normal re-projection traffic.
      if (event.failed) {
        ++counters_["project_failures"];
        break;
      }
      // Every re-projection invalidates the previously displayed dates and
      // runs one CPM pass over the watched plan.
      ++counters_["replan_invalidations"];
      ++counters_["cpm_passes"];
      if (event.duration_ns >= 0)
        histograms_["slip_projection"].record(event.duration_ns);
      break;
    case EventKind::kQueryExecuted:
      ++counters_["queries_executed"];
      if (event.failed) ++counters_["queries_failed"];
      if (event.duration_ns >= 0)
        histograms_["query_latency"].record(event.duration_ns);
      // Query fast-path counters ride along as args-as-deltas (same carrier
      // idiom as the "cpm.solver" scope below).
      for (const auto& [key, value] : event.args) {
        char* end = nullptr;
        const std::uint64_t delta = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str()) continue;
        if (key == "rows_scanned") counters_["rows_scanned"] += delta;
        else if (key == "index_seeks") counters_["index_seeks"] += delta;
        else if (key == "cache_hits") counters_["query_cache_hits"] += delta;
        else if (key == "cache_misses") counters_["query_cache_misses"] += delta;
      }
      break;
    case EventKind::kScope:
      if (event.name == "cpm") ++counters_["cpm_passes"];
      // Scheduling-kernel stats carrier (see sched::publish_solver_stats):
      // args hold counter deltas instead of a wall-clock duration.
      if (event.name == "cpm.solver") {
        for (const auto& [key, value] : event.args) {
          char* end = nullptr;
          const std::uint64_t delta = std::strtoull(value.c_str(), &end, 10);
          if (end == value.c_str()) continue;
          if (key == "compiles") counters_["solver_compiles"] += delta;
          else if (key == "solves") counters_["solver_solves"] += delta;
          else if (key == "resolves") counters_["solver_incremental_solves"] += delta;
          else if (key == "parallel") counters_["solver_parallel_solves"] += delta;
          else if (key == "batched") counters_["solver_batched_lanes"] += delta;
        }
      }
      // Executor fault-tolerance stats carrier (see
      // exec::Executor::publish_fault_stats): same args-as-deltas idiom.
      if (event.name == "exec.faults") {
        for (const auto& [key, value] : event.args) {
          char* end = nullptr;
          const std::uint64_t delta = std::strtoull(value.c_str(), &end, 10);
          if (end == value.c_str()) continue;
          if (key == "retries") counters_["run_retries"] += delta;
          else if (key == "timeouts") counters_["run_timeouts"] += delta;
          else if (key == "degraded") counters_["runs_degraded"] += delta;
        }
      }
      if (event.duration_ns >= 0)
        histograms_["scope." + event.name].record(event.duration_ns);
      break;
  }
}

std::string MetricsRegistry::text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "counters:\n";
  if (counters_.empty()) out += "  (none)\n";
  for (const auto& [name, value] : counters_)
    out += "  " + util::pad_right(name, 24) + std::to_string(value) + "\n";
  out += "latency histograms:\n";
  if (histograms_.empty()) out += "  (none)\n";
  for (const auto& [name, h] : histograms_) {
    out += "  " + util::pad_right(name, 24) + "count=" + std::to_string(h.count()) +
           " mean=" + ns_str(h.mean_ns()) +
           " min=" + ns_str(static_cast<double>(h.min_ns())) +
           " max=" + ns_str(static_cast<double>(h.max_ns())) +
           " p90<=" + ns_str(static_cast<double>(h.quantile_ns(0.9))) + "\n";
  }
  return out;
}

util::Json MetricsRegistry::json() const {
  std::lock_guard<std::mutex> lock(mu_);
  util::JsonObject counters;
  for (const auto& [name, value] : counters_)
    counters.set(name, static_cast<std::int64_t>(value));
  util::JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    util::JsonObject one;
    one.set("count", static_cast<std::int64_t>(h.count()));
    one.set("sum_ns", h.sum_ns());
    one.set("min_ns", h.min_ns());
    one.set("max_ns", h.max_ns());
    one.set("mean_ns", h.mean_ns());
    util::JsonArray buckets;
    // Trailing empty buckets are elided; index i covers [2^i, 2^(i+1)) ns.
    int last = Histogram::kBuckets;
    while (last > 0 && h.buckets()[last - 1] == 0) --last;
    for (int i = 0; i < last; ++i)
      buckets.push_back(static_cast<std::int64_t>(h.buckets()[i]));
    one.set("log2_buckets", std::move(buckets));
    histograms.set(name, std::move(one));
  }
  util::JsonObject root;
  root.set("counters", std::move(counters));
  root.set("histograms", std::move(histograms));
  return root;
}

}  // namespace herc::obs
