#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>

namespace herc::obs {

namespace {

/// Track ids: project p (0-based) owns pids 3p+1 (schedule), 3p+2
/// (execution), 3p+3 (wall clock).
struct ProjectTracks {
  std::int64_t schedule_pid;
  std::int64_t execution_pid;
  std::int64_t wall_pid;
};

util::Json meta_event(const char* what, std::int64_t pid, std::int64_t tid,
                      const std::string& name) {
  util::JsonObject args;
  args.set("name", name);
  util::JsonObject e;
  e.set("ph", "M");
  e.set("name", what);
  e.set("pid", pid);
  e.set("tid", tid);
  e.set("args", std::move(args));
  return e;
}

util::JsonObject event_args(const Event& event) {
  util::JsonObject args;
  args.set("kind", event_kind_name(event.kind));
  args.set("seq", static_cast<std::int64_t>(event.seq));
  if (event.id != 0) args.set("id", static_cast<std::int64_t>(event.id));
  if (event.failed) args.set("failed", true);
  for (const auto& [key, value] : event.args) args.set(key, value);
  return args;
}

/// One work minute maps to one trace microsecond.
double work_ts(cal::WorkInstant t) {
  return static_cast<double>(t.minutes_since_epoch());
}

}  // namespace

void ChromeTraceExporter::attach(EventBus& bus) {
  detach();
  bus_ = &bus;
  bus.subscribe(this);
}

void ChromeTraceExporter::detach() {
  if (bus_ == nullptr) return;
  bus_->unsubscribe(this);
  bus_ = nullptr;
}

std::size_t ChromeTraceExporter::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void ChromeTraceExporter::on_event(const Event& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

util::Json ChromeTraceExporter::trace_json() const {
  std::lock_guard<std::mutex> lock(mu_);

  util::JsonArray out;

  // Wall-clock origin: the earliest scope *start* across the capture.
  std::int64_t wall_base = 0;
  bool have_wall = false;
  for (const Event& e : events_) {
    std::int64_t start = e.wall_ns - std::max<std::int64_t>(e.duration_ns, 0);
    if (!have_wall || start < wall_base) {
      wall_base = start;
      have_wall = true;
    }
  }

  std::map<std::string, ProjectTracks> projects;      // project -> pids
  std::map<std::pair<std::int64_t, std::int64_t>, std::string>
      thread_names;                                   // (pid, tid) -> label
  std::map<std::string, std::int64_t> designer_tids;  // designer -> exec tid

  auto tracks_for = [&](const std::string& project) -> ProjectTracks& {
    auto it = projects.find(project);
    if (it != projects.end()) return it->second;
    const auto p = static_cast<std::int64_t>(projects.size());
    ProjectTracks t{3 * p + 1, 3 * p + 2, 3 * p + 3};
    const std::string label = project.empty() ? "herc" : project;
    out.push_back(meta_event("process_name", t.schedule_pid, 0, label + " schedule"));
    out.push_back(meta_event("process_name", t.execution_pid, 0, label + " execution"));
    out.push_back(meta_event("process_name", t.wall_pid, 0, label + " wall clock"));
    return projects.emplace(project, t).first->second;
  };

  auto name_thread = [&](std::int64_t pid, std::int64_t tid, const std::string& name) {
    auto key = std::make_pair(pid, tid);
    if (thread_names.count(key)) return;
    thread_names[key] = name;
    out.push_back(meta_event("thread_name", pid, tid, name));
  };

  auto designer_tid = [&](const Event& e) {
    std::string designer = "designer";
    for (const auto& [key, value] : e.args)
      if (key == "designer") designer = value;
    auto it = designer_tids.find(designer);
    if (it == designer_tids.end())
      it = designer_tids
               .emplace(designer, static_cast<std::int64_t>(designer_tids.size()) + 1)
               .first;
    return std::make_pair(it->second, designer);
  };

  auto push_complete = [&](const Event& e, std::int64_t pid, std::int64_t tid,
                           double ts, double dur) {
    util::JsonObject x;
    x.set("ph", "X");
    x.set("name", e.name);
    x.set("cat", e.category.empty() ? std::string(event_kind_name(e.kind)) : e.category);
    x.set("ts", ts);
    x.set("dur", dur);
    x.set("pid", pid);
    x.set("tid", tid);
    if (e.failed) x.set("cname", "terrible");
    x.set("args", event_args(e));
    out.push_back(std::move(x));
  };

  auto push_instant = [&](const Event& e, std::int64_t pid, std::int64_t tid,
                          double ts) {
    util::JsonObject i;
    i.set("ph", "i");
    i.set("name", std::string(event_kind_name(e.kind)) +
                      (e.name.empty() ? "" : " " + e.name));
    i.set("cat", e.category.empty() ? std::string(event_kind_name(e.kind)) : e.category);
    i.set("s", "t");
    i.set("ts", ts);
    i.set("pid", pid);
    i.set("tid", tid);
    i.set("args", event_args(e));
    out.push_back(std::move(i));
  };

  for (const Event& e : events_) {
    ProjectTracks& tracks = tracks_for(e.project);
    switch (e.kind) {
      case EventKind::kActivityPlanned: {
        if (!e.work_start || !e.work_finish) break;
        // One row per plan generation: successive re-plans stack under the
        // schedule process, giving the plan-evolution view of Fig. 5.
        const auto tid = static_cast<std::int64_t>(e.id);
        std::string plan_name = "plan";
        for (const auto& [key, value] : e.args)
          if (key == "plan") plan_name = value;
        name_thread(tracks.schedule_pid, tid,
                    plan_name + " #" + std::to_string(e.id));
        push_complete(e, tracks.schedule_pid, tid, work_ts(*e.work_start),
                      work_ts(*e.work_finish) - work_ts(*e.work_start));
        break;
      }
      case EventKind::kSchedulePlanned: {
        if (!e.work_start) break;
        const auto tid = static_cast<std::int64_t>(e.id);
        push_instant(e, tracks.schedule_pid, tid, work_ts(*e.work_start));
        break;
      }
      case EventKind::kActivityLinked:
      case EventKind::kSlipPropagated: {
        if (!e.work_start) break;
        name_thread(tracks.schedule_pid, 0, "tracking");
        push_instant(e, tracks.schedule_pid, 0, work_ts(*e.work_start));
        break;
      }
      case EventKind::kRunStarted: {
        if (!e.work_start) break;
        auto [tid, designer] = designer_tid(e);
        name_thread(tracks.execution_pid, tid, designer);
        push_instant(e, tracks.execution_pid, tid, work_ts(*e.work_start));
        break;
      }
      case EventKind::kRunFinished: {
        if (!e.work_start || !e.work_finish) break;
        auto [tid, designer] = designer_tid(e);
        name_thread(tracks.execution_pid, tid, designer);
        push_complete(e, tracks.execution_pid, tid, work_ts(*e.work_start),
                      work_ts(*e.work_finish) - work_ts(*e.work_start));
        break;
      }
      case EventKind::kInstanceCreated: {
        if (!e.work_start) break;
        name_thread(tracks.execution_pid, 0, "instances");
        push_instant(e, tracks.execution_pid, 0, work_ts(*e.work_start));
        break;
      }
      case EventKind::kQueryExecuted:
      case EventKind::kScope: {
        if (e.duration_ns < 0) break;
        name_thread(tracks.wall_pid, 1, "scopes");
        const double ts =
            static_cast<double>(e.wall_ns - e.duration_ns - wall_base) / 1e3;
        push_complete(e, tracks.wall_pid, 1, ts,
                      static_cast<double>(e.duration_ns) / 1e3);
        break;
      }
    }
  }

  util::JsonObject other;
  other.set("tool", "hercsched");
  other.set("work_time_unit", "1 trace us = 1 work minute");
  other.set("captured_events", static_cast<std::int64_t>(events_.size()));

  util::JsonObject root;
  root.set("traceEvents", std::move(out));
  root.set("displayTimeUnit", "ms");
  root.set("otherData", std::move(other));
  return root;
}

std::string ChromeTraceExporter::str() const { return trace_json().dump(-1); }

util::Status ChromeTraceExporter::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return util::invalid("trace: cannot write file '" + path + "'");
  f << str() << "\n";
  return util::Status::ok_status();
}

}  // namespace herc::obs
