#pragma once
// MetricsRegistry: named counters and latency histograms.
//
// The registry is itself an EventBus subscriber — attach() it and the
// standard counters (plans_computed, runs_executed, cpm_passes,
// slips_propagated, queries_executed, ...) accumulate from the event
// stream; query and scope durations feed log2-bucketed latency histograms.
// Subsystems (or tests) may also bump custom counters directly.  Dumps are
// available as aligned plain text and as a util::Json document.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "obs/event_bus.hpp"
#include "util/json.hpp"

namespace herc::obs {

/// Log2-bucketed nanosecond latency histogram.  Bucket i counts samples in
/// [2^i, 2^(i+1)) ns; bucket 0 also takes zero.
class Histogram {
 public:
  static constexpr int kBuckets = 44;  ///< up to ~4.8 hours in ns

  void record(std::int64_t ns);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::int64_t sum_ns() const { return sum_; }
  [[nodiscard]] std::int64_t min_ns() const { return count_ ? min_ : 0; }
  [[nodiscard]] std::int64_t max_ns() const { return max_; }
  [[nodiscard]] double mean_ns() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }
  /// Upper bound of the smallest bucket prefix holding >= q of the samples
  /// (q in [0,1]); a coarse quantile good to a factor of two.
  [[nodiscard]] std::int64_t quantile_ns(double q) const;
  [[nodiscard]] const std::uint64_t* buckets() const { return buckets_; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

class MetricsRegistry : public Subscriber {
 public:
  MetricsRegistry() = default;
  ~MetricsRegistry() override { detach(); }

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Subscribes to `bus` (detaching from any previous bus first).
  void attach(EventBus& bus);
  void detach();

  void add(const std::string& counter, std::uint64_t delta = 1);
  void record_latency(const std::string& histogram, std::int64_t ns);

  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  /// Resets every counter and histogram to zero (subscription unchanged).
  void reset();

  /// Aligned `name  value` lines, counters first, then histograms.
  [[nodiscard]] std::string text() const;
  /// {"counters": {...}, "histograms": {name: {count,mean_ns,...}}}
  [[nodiscard]] util::Json json() const;

  // --- Subscriber ----------------------------------------------------------
  void on_event(const Event& event) override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
  EventBus* bus_ = nullptr;
};

}  // namespace herc::obs
