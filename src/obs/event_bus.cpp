#include "obs/event_bus.hpp"

#include <algorithm>

namespace herc::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kRunStarted: return "run_started";
    case EventKind::kRunFinished: return "run_finished";
    case EventKind::kInstanceCreated: return "instance_created";
    case EventKind::kSchedulePlanned: return "schedule_planned";
    case EventKind::kActivityPlanned: return "activity_planned";
    case EventKind::kActivityLinked: return "activity_linked";
    case EventKind::kSlipPropagated: return "slip_propagated";
    case EventKind::kQueryExecuted: return "query_executed";
    case EventKind::kScope: return "scope";
  }
  return "unknown";
}

void EventBus::set_project(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  project_ = std::move(name);
}

std::string EventBus::project() const {
  std::lock_guard<std::mutex> lock(mu_);
  return project_;
}

void EventBus::subscribe(Subscriber* sub) {
  if (sub == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (std::find(subscribers_.begin(), subscribers_.end(), sub) != subscribers_.end())
    return;
  subscribers_.push_back(sub);
  subscriber_count_.store(static_cast<int>(subscribers_.size()),
                          std::memory_order_relaxed);
}

void EventBus::unsubscribe(Subscriber* sub) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribers_.erase(std::remove(subscribers_.begin(), subscribers_.end(), sub),
                     subscribers_.end());
  subscriber_count_.store(static_cast<int>(subscribers_.size()),
                          std::memory_order_relaxed);
}

void EventBus::publish(Event event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (subscribers_.empty()) return;
  event.seq = next_seq_++;
  if (event.wall_ns == 0) event.wall_ns = wall_now_ns();
  if (event.project.empty()) event.project = project_;
  published_.fetch_add(1, std::memory_order_relaxed);
  for (Subscriber* sub : subscribers_) sub->on_event(event);
}

}  // namespace herc::obs
