#pragma once
// ChromeTraceExporter: an EventBus subscriber that renders the event stream
// as Chrome Trace Event Format JSON (chrome://tracing, ui.perfetto.dev).
//
// Per project (= per WorkflowManager / schema) the trace carries three
// process tracks:
//
//   "<project> schedule"   — work-time timeline of the PLAN: one complete
//                            ("ph":"X") slice per schedule node, one row
//                            (tid) per plan generation, plus instants for
//                            links and slip re-projections;
//   "<project> execution"  — work-time timeline of the ACTUAL runs: one
//                            complete slice per recorded Run, one row per
//                            designer;
//   "<project> wall clock" — real time spent inside instrumented scopes
//                            (plan, execute, cpm, queries).
//
// Opening the trace in Perfetto therefore gives the paper's
// planned-vs-actual Gantt comparison directly: the schedule and execution
// tracks sit above each other on the same axis.  Work-time tracks use the
// convention 1 work minute = 1 trace microsecond; wall-clock tracks use
// real microseconds since the first captured event.

#include <cstddef>
#include <mutex>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"
#include "util/json.hpp"
#include "util/result.hpp"

namespace herc::obs {

class ChromeTraceExporter : public Subscriber {
 public:
  ChromeTraceExporter() = default;
  ~ChromeTraceExporter() override { detach(); }

  ChromeTraceExporter(const ChromeTraceExporter&) = delete;
  ChromeTraceExporter& operator=(const ChromeTraceExporter&) = delete;

  /// Subscribes to `bus`; an exporter may observe several buses over its
  /// lifetime (attach detaches from the previous one) and keeps everything
  /// captured so far.
  void attach(EventBus& bus);
  void detach();

  [[nodiscard]] std::size_t event_count() const;

  /// The whole trace as a JSON document ({"traceEvents": [...], ...}).
  [[nodiscard]] util::Json trace_json() const;
  /// Compact serialized form of trace_json().
  [[nodiscard]] std::string str() const;
  /// Writes str() to `path`.
  util::Status write_file(const std::string& path) const;

  // --- Subscriber ----------------------------------------------------------
  void on_event(const Event& event) override;

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  EventBus* bus_ = nullptr;
};

}  // namespace herc::obs
