#include "adapters/four_level.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace herc::adapters {

std::vector<Table1Row> table1_rows() {
  return {
      {"RoadMap Model",
       {"FlowType (Tool), Pin (PinType), Port (DataType)",
        "Flow, InSlot, OutSlot, FlowHierarchy, PortInst, Channel",
        "Run, Representation, RepUsage", "Representation, File Group"}},
      {"ELSIS",
       {"Tool, Task, Entity", "Task, Node, Arc", "ActivityRun, Transaction",
        "Design Object"}},
      {"Hercules",
       {"FlowGraph, Tool Dep., Data Dep. (task schema)",
        "Design Tasks (task trees)", "Entity Inst., Inst Dep. (runs)",
        "Cyclops Data Object"}},
      {"History Model",
       {"Activity, Task Templates", "Design Activity", "Design Process",
        "Data Object"}},
      {"Hilda",
       {"Transitions, Places, Arcs", "Patterns (Reusable)", "Tokens, Transitions, Places",
        "Tokens, Places"}},
      {"VOV",
       {"(none: no a-priori flow)", "Trace", "Trace, Transaction", "Data Object"}},
      {"+ Schedule ext. (this work)",
       {"(unchanged)", "(unchanged)",
        "ScheduleRun (plan), ScheduleNode, ScheduleDep, Link",
        "(unchanged)"}},
  };
}

std::string render_table1() {
  auto rows = table1_rows();
  std::string out =
      "TABLE I. SYSTEM REPRESENTATION USING THE FOUR-LEVEL ARCHITECTURE\n";
  const std::size_t name_w = 28;
  out += util::pad_right("System", name_w);
  for (int l = 1; l <= 4; ++l) out += util::pad_right("Level " + std::to_string(l), 48);
  out += "\n" + util::repeat('-', name_w + 4 * 48) + "\n";
  for (const auto& r : rows) {
    out += util::pad_right(r.system, name_w);
    for (const auto& cell : r.levels) out += util::pad_right(cell, 48);
    out += "\n";
  }
  return out;
}

std::string render_four_level_report(const schema::TaskSchema& schema,
                                     const meta::Database& db,
                                     const sched::ScheduleSpace& space,
                                     const data::DataStore& store) {
  std::size_t data_types = 0, tool_types = 0;
  for (const auto& t : schema.types())
    (t.kind == schema::EntityKind::kData ? data_types : tool_types)++;

  std::size_t links = space.links().size();
  std::size_t deps = 0;
  for (const auto& p : space.plans()) deps += p.deps.size();

  std::string out = "Four-level inventory of '" + schema.name() + "'\n";
  out += "  Level 1 (flow elements):   " + std::to_string(data_types) +
         " data types, " + std::to_string(tool_types) + " tool types, " +
         std::to_string(schema.rules().size()) + " construction rules\n";
  out += "  Level 2 (flow models):     task trees extracted on demand from the "
         "schema (deterministic)\n";
  out += "  Level 3 (execution space): " + std::to_string(db.instance_count()) +
         " entity instances, " + std::to_string(db.run_count()) + " runs\n";
  out += "  Level 3 (schedule space):  " + std::to_string(space.plans().size()) +
         " plans, " + std::to_string(space.node_count()) + " schedule instances, " +
         std::to_string(deps) + " schedule deps, " + std::to_string(links) +
         " completion links\n";
  out += "  Level 4 (design data):     " + std::to_string(store.size()) +
         " data objects\n";
  return out;
}

}  // namespace herc::adapters
