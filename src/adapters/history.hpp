#pragma once
// History model (the UC-Berkeley representation of Chiueh & Katz).
//
// "The History Model is a CAD system developed at U.C. Berkeley to provide
//  support for the dynamic aspects of VLSI design.  The model is based on a
//  task specification language and provides an integrated framework for
//  managing both design operations and design data." — paper, Sec. II
//
// Its essence is the design process as an ordered history of operations over
// design data.  This adapter derives that history from the execution-space
// metadata and provides the model's characteristic capability: *temporal*
// views — the state of every entity container as of any past instant, which
// design data existed, and which operations had run.  Views are read-only
// reconstructions (the metadata database itself is append-only, so history
// is always fully recoverable).

#include <string>
#include <vector>

#include "metadata/database.hpp"

namespace herc::adapters {

/// One step of the recovered design process.
struct HistoryEvent {
  enum class Kind { kImport, kRun, kDerive };
  Kind kind = Kind::kRun;
  cal::WorkInstant at;
  meta::RunId run;                     ///< valid for kRun
  meta::EntityInstanceId instance;     ///< valid for kImport / kDerive
  std::string summary;                 ///< one-line description
};

/// Snapshot of the database as of an instant.
struct HistorySnapshot {
  cal::WorkInstant as_of;
  std::size_t instances = 0;
  std::size_t runs = 0;
  /// Entity container contents as of `as_of`, per data type in schema order.
  std::vector<std::pair<std::string, std::vector<meta::EntityInstanceId>>> containers;
};

class HistoryModel {
 public:
  /// Derives the full operation history from the database.  Events are
  /// ordered by time (instances by creation, runs by finish), ties by id.
  [[nodiscard]] static HistoryModel capture(const meta::Database& db);

  [[nodiscard]] const std::vector<HistoryEvent>& events() const { return events_; }

  /// State of the database as of `t` (inclusive).
  [[nodiscard]] HistorySnapshot state_at(cal::WorkInstant t) const;

  /// The version chain of a design-data name within a type: every instance
  /// of (type, name) in creation order, with the run that produced each.
  struct VersionStep {
    meta::EntityInstanceId instance;
    meta::RunId produced_by;  ///< invalid for imports
    cal::WorkInstant at;
  };
  [[nodiscard]] std::vector<VersionStep> version_chain(const std::string& type_name,
                                                       const std::string& name) const;

  /// Timeline rendering (the History Model's process view).
  [[nodiscard]] std::string describe(const cal::WorkCalendar& calendar) const;

 private:
  explicit HistoryModel(const meta::Database& db) : db_(&db) {}

  const meta::Database* db_;
  std::vector<HistoryEvent> events_;
};

}  // namespace herc::adapters
