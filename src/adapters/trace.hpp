#pragma once
// Trace model (the VOV representation).
//
// "Unlike the previous systems which focus on design flow management, the
//  VOV CAD System ... concentrates on monitoring and tracking design
//  activities.  The authors feel a design process cannot be planned a priori
//  and instead must be created as the designers work through the design
//  process." — paper, Sec. II
//
// A trace is a bipartite DAG of design objects and transactions captured
// from actual executions.  This adapter builds the trace directly from the
// execution-space metadata (each completed Run is a transaction), supports
// VOV's central operation — determining what must re-run when an input
// changes — and *derives a flow* from the trace, demonstrating the paper's
// point that even an a-posteriori system fits the four-level architecture
// and can therefore host the schedule model.

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "metadata/database.hpp"
#include "util/result.hpp"

namespace herc::adapters {

/// Bipartite trace graph: design-object nodes and transaction nodes.
class TraceGraph {
 public:
  /// Captures every completed run of `db` as a transaction.
  [[nodiscard]] static TraceGraph capture(const meta::Database& db);

  [[nodiscard]] std::size_t transaction_count() const { return transactions_.size(); }
  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }

  /// Transactions that must re-run (downstream closure) if `instance`
  /// changes — VOV's retrace set, in execution order.
  [[nodiscard]] std::vector<meta::RunId> affected_by(
      meta::EntityInstanceId instance) const;

  /// Design objects invalidated if `instance` changes (instances produced,
  /// directly or transitively, from it).
  [[nodiscard]] std::vector<meta::EntityInstanceId> invalidated_by(
      meta::EntityInstanceId instance) const;

  /// VOV's retrace: the distinct activities that must re-execute, in
  /// original execution order, if every instance in `changed` gains a new
  /// version.  This is the union of the affected_by closures collapsed to
  /// activity granularity — the exact set a selective re-execution
  /// (WorkflowManager::refresh_task) performs, which the conformance
  /// harness checks differentially.
  [[nodiscard]] std::vector<std::string> retrace_activities(
      const std::vector<meta::EntityInstanceId>& changed) const;

  /// Full-trace replay plan: every transaction's activity in execution
  /// order.  Driving a fresh manager through this list (one run_activity
  /// per entry) must reproduce the captured Level-3 metadata — VOV's
  /// "the trace IS the flow" claim, checked byte-for-byte.
  [[nodiscard]] std::vector<std::string> replay_order() const;

  /// VOV's up-to-date notion: a *latest* instance is stale when some input
  /// of its producing run has a newer version in the database.  Returns the
  /// stale latest instances in creation order (superseded versions are
  /// history, not staleness).
  [[nodiscard]] std::vector<meta::EntityInstanceId> stale_instances() const;

  /// Derives the activity-level flow the trace implies: the distinct
  /// activities in dependency order with their observed predecessor
  /// activities.  This is "the design process ... created as the designers
  /// work", mapped back into a Level-2 shape.
  struct DerivedActivity {
    std::string activity;
    std::vector<std::string> predecessors;  ///< distinct upstream activities
    int observed_runs = 0;
  };
  [[nodiscard]] std::vector<DerivedActivity> derive_flow() const;

  /// Human dump of the trace.
  [[nodiscard]] std::string describe() const;

 private:
  explicit TraceGraph(const meta::Database& db) : db_(&db) {}

  const meta::Database* db_;
  std::vector<meta::RunId> transactions_;               // execution order
  std::vector<meta::EntityInstanceId> objects_;         // creation order
  /// object -> transactions consuming it
  std::unordered_map<std::uint64_t, std::vector<meta::RunId>> consumers_;
};

}  // namespace herc::adapters
