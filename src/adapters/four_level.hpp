#pragma once
// The four-level architecture (van den Hamer & Treffers) as a reporting
// surface: reproduces the paper's Table I and produces live four-level
// inventories of a running system.
//
// Table I's content is the paper's survey of six systems; reproducing the
// table means regenerating those rows.  The live report demonstrates the
// claim behind the table: our native model and each adapter (Petri/Hilda,
// trace/VOV, roadmap/ELSIS) all decompose into the same four levels, which
// is why the Level-3 schedule model transfers across them.

#include <array>
#include <string>
#include <vector>

#include "core/schedule_space.hpp"
#include "data/data_store.hpp"
#include "metadata/database.hpp"
#include "schema/schema.hpp"

namespace herc::adapters {

/// One row of Table I.
struct Table1Row {
  std::string system;
  std::array<std::string, 4> levels;  ///< objects at Levels 1..4
};

/// The paper's Table I ("System representation using the four-level
/// architecture"), including the schedule extension row this work adds.
[[nodiscard]] std::vector<Table1Row> table1_rows();

/// Formatted Table I.
[[nodiscard]] std::string render_table1();

/// Live inventory: what the running system holds at each level, with object
/// counts — the computational analogue of the Hercules column of Table I
/// plus the paper's Fig. 2.
[[nodiscard]] std::string render_four_level_report(const schema::TaskSchema& schema,
                                                   const meta::Database& db,
                                                   const sched::ScheduleSpace& space,
                                                   const data::DataStore& store);

}  // namespace herc::adapters
