#include "adapters/petri.hpp"

#include <algorithm>
#include <stdexcept>

namespace herc::adapters {

PetriNet::PlaceId PetriNet::add_place(const std::string& name, int tokens) {
  Place p{name, {}};
  p.tokens.assign(static_cast<std::size_t>(tokens < 0 ? 0 : tokens), 0);
  places_.push_back(std::move(p));
  return places_.size() - 1;
}

PetriNet::TransitionId PetriNet::add_transition(const std::string& name) {
  transitions_.push_back(Transition{name, {}, {}, {}, 0});
  return transitions_.size() - 1;
}

void PetriNet::add_input_arc(PlaceId from, TransitionId to) {
  transitions_.at(to).inputs.push_back(from);
  (void)places_.at(from);
}

void PetriNet::add_output_arc(TransitionId from, PlaceId to) {
  transitions_.at(from).outputs.push_back(to);
  (void)places_.at(to);
}

void PetriNet::add_read_arc(PlaceId from, TransitionId to) {
  transitions_.at(to).reads.push_back(from);
  (void)places_.at(from);
}

void PetriNet::set_duration(TransitionId t, std::int64_t minutes) {
  transitions_.at(t).duration = minutes < 0 ? 0 : minutes;
}

std::int64_t PetriNet::duration(TransitionId t) const {
  return transitions_.at(t).duration;
}

const std::string& PetriNet::place_name(PlaceId p) const { return places_.at(p).name; }

const std::string& PetriNet::transition_name(TransitionId t) const {
  return transitions_.at(t).name;
}

int PetriNet::marking(PlaceId p) const {
  return static_cast<int>(places_.at(p).tokens.size());
}

bool PetriNet::enabled(TransitionId t) const {
  // Multiple arcs from the same place need that many tokens.
  std::unordered_map<PlaceId, std::size_t> need;
  for (PlaceId p : transitions_.at(t).inputs) ++need[p];
  for (const auto& [p, n] : need)
    if (places_[p].tokens.size() < n) return false;
  // A read arc needs a token present but never consumes it.
  for (PlaceId p : transitions_[t].reads)
    if (places_[p].tokens.empty()) return false;
  return !transitions_[t].inputs.empty() || !transitions_[t].reads.empty() ||
         !transitions_[t].outputs.empty();
}

std::vector<PetriNet::TransitionId> PetriNet::enabled_transitions() const {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < transitions_.size(); ++t)
    if (enabled(t)) out.push_back(t);
  return out;
}

util::Status PetriNet::fire(TransitionId t) {
  if (t >= transitions_.size())
    return util::not_found("petri: unknown transition " + std::to_string(t));
  if (!enabled(t))
    return util::conflict("petri: transition '" + transitions_[t].name +
                          "' is not enabled");
  // Untimed view: consume the earliest tokens, produce at time 0.
  for (PlaceId p : transitions_[t].inputs)
    places_[p].tokens.erase(places_[p].tokens.begin());
  for (PlaceId p : transitions_[t].outputs) {
    auto& tokens = places_[p].tokens;
    tokens.insert(std::lower_bound(tokens.begin(), tokens.end(), 0), 0);
  }
  return util::Status::ok_status();
}

std::vector<PetriNet::TransitionId> PetriNet::run_to_quiescence(
    std::size_t max_firings) {
  std::vector<TransitionId> sequence;
  while (sequence.size() < max_firings) {
    auto ready = enabled_transitions();
    if (ready.empty()) break;
    fire(ready.front()).expect("petri: firing an enabled transition");
    sequence.push_back(ready.front());
  }
  return sequence;
}

std::int64_t PetriNet::earliest_start(TransitionId t) const {
  std::int64_t start = 0;
  // The k-th arc from a place consumes the k-th earliest token there.
  std::unordered_map<PlaceId, std::size_t> taken;
  for (PlaceId p : transitions_[t].inputs) {
    std::size_t k = taken[p]++;
    start = std::max(start, places_[p].tokens[k]);
  }
  for (PlaceId p : transitions_[t].reads)
    start = std::max(start, places_[p].tokens.front());
  return start;
}

std::vector<PetriNet::TimedFiring> PetriNet::run_timed_to_quiescence(
    std::size_t max_firings) {
  std::vector<TimedFiring> log;
  while (log.size() < max_firings) {
    // Conflict resolution: earliest possible start wins, ties to lowest id.
    std::optional<TransitionId> pick;
    std::int64_t pick_start = 0;
    for (TransitionId t = 0; t < transitions_.size(); ++t) {
      if (!enabled(t)) continue;
      std::int64_t s = earliest_start(t);
      if (!pick || s < pick_start) {
        pick = t;
        pick_start = s;
      }
    }
    if (!pick) break;
    Transition& tr = transitions_[*pick];
    std::unordered_map<PlaceId, std::size_t> consumed;
    for (PlaceId p : tr.inputs) ++consumed[p];
    for (const auto& [p, n] : consumed) {
      auto& tokens = places_[p].tokens;
      tokens.erase(tokens.begin(), tokens.begin() + static_cast<std::ptrdiff_t>(n));
    }
    std::int64_t finish = pick_start + tr.duration;
    for (PlaceId p : tr.outputs) {
      auto& tokens = places_[p].tokens;
      tokens.insert(std::lower_bound(tokens.begin(), tokens.end(), finish), finish);
    }
    log.push_back(TimedFiring{*pick, pick_start, finish});
  }
  return log;
}

std::string PetriNet::describe() const {
  std::string out = "Petri net: " + std::to_string(places_.size()) + " places, " +
                    std::to_string(transitions_.size()) + " transitions\n";
  for (PlaceId p = 0; p < places_.size(); ++p) {
    out += "  place " + places_[p].name + " [";
    for (std::size_t i = 0; i < places_[p].tokens.size(); ++i) out += "*";
    out += "]\n";
  }
  for (const auto& t : transitions_) {
    out += "  transition " + t.name;
    if (t.duration > 0) out += " (" + std::to_string(t.duration) + "m)";
    out += ": (";
    std::size_t i = 0;
    for (PlaceId p : t.inputs) out += (i++ ? ", " : "") + places_[p].name;
    for (PlaceId p : t.reads) out += (i++ ? ", ~" : "~") + places_[p].name;
    out += ") -> (";
    for (std::size_t j = 0; j < t.outputs.size(); ++j)
      out += (j ? ", " : "") + places_[t.outputs[j]].name;
    out += ")\n";
  }
  return out;
}

util::Result<PetriConversion> petri_from_task_tree(const flow::TaskTree& tree,
                                                   const PetriBuildOptions& options) {
  PetriConversion conv;
  const auto& schema = tree.schema();

  // One place per tree node (distinct branches of the same type stay
  // distinct); tools get one shared place per tool type (reusable resource).
  std::unordered_map<std::uint64_t, PetriNet::PlaceId> place_of_node;
  std::unordered_map<std::uint64_t, PetriNet::PlaceId> place_of_tool_type;

  for (const auto& node : tree.nodes()) {
    const std::string& type_name = schema.type(node.type).name;
    switch (node.kind) {
      case flow::NodeKind::kDataLeaf:
        // Bound inputs are available: one token.
        place_of_node[node.id.value()] = conv.net.add_place(
            type_name + "@" + node.id.str(), node.binding.empty() ? 0 : 1);
        break;
      case flow::NodeKind::kActivity:
        place_of_node[node.id.value()] =
            conv.net.add_place(type_name + "@" + node.id.str(), 0);
        break;
      case flow::NodeKind::kToolLeaf: {
        if (!options.shared_tools) break;  // unshared: no resource constraint
        auto key = node.type.value();
        if (!place_of_tool_type.count(key)) {
          auto place = conv.net.add_place("tool:" + type_name, 1);
          place_of_tool_type[key] = place;
          conv.tool_places.push_back(place);
        }
        break;
      }
    }
  }

  for (flow::TaskNodeId act : tree.activities_post_order()) {
    const auto& node = tree.node(act);
    auto t = conv.net.add_transition(tree.activity_name(act));
    conv.activity_of_transition.push_back(tree.activity_name(act));
    if (options.durations) {
      auto it = options.durations->find(tree.activity_name(act));
      if (it != options.durations->end()) conv.net.set_duration(t, it->second);
    }
    // One-shot control token: each activity instance of the task fires once
    // (without it a transition reading only available data would re-fire
    // forever).
    auto ready = conv.net.add_place("ready:" + tree.activity_name(act), 1);
    conv.ready_places.push_back(ready);
    conv.net.add_input_arc(ready, t);
    for (flow::TaskNodeId child_id : node.children) {
      const auto& child = tree.node(child_id);
      if (child.kind == flow::NodeKind::kToolLeaf) {
        auto it = place_of_tool_type.find(child.type.value());
        if (it == place_of_tool_type.end()) continue;  // unshared tools
        conv.net.add_input_arc(it->second, t);
        conv.net.add_output_arc(t, it->second);  // the tool is returned after use
      } else {
        // Data is *read*, not consumed: a shared output enables every
        // consumer, and (timed) readers never serialize against each other.
        conv.net.add_read_arc(place_of_node.at(child_id.value()), t);
      }
    }
    conv.net.add_output_arc(t, place_of_node.at(node.id.value()));
  }

  conv.target_place = place_of_node.at(tree.root().value());
  return conv;
}

}  // namespace herc::adapters
