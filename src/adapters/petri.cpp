#include "adapters/petri.hpp"

#include <stdexcept>

namespace herc::adapters {

PetriNet::PlaceId PetriNet::add_place(const std::string& name, int tokens) {
  places_.push_back(Place{name, tokens});
  return places_.size() - 1;
}

PetriNet::TransitionId PetriNet::add_transition(const std::string& name) {
  transitions_.push_back(Transition{name, {}, {}});
  return transitions_.size() - 1;
}

void PetriNet::add_input_arc(PlaceId from, TransitionId to) {
  transitions_.at(to).inputs.push_back(from);
  (void)places_.at(from);
}

void PetriNet::add_output_arc(TransitionId from, PlaceId to) {
  transitions_.at(from).outputs.push_back(to);
  (void)places_.at(to);
}

const std::string& PetriNet::place_name(PlaceId p) const { return places_.at(p).name; }

const std::string& PetriNet::transition_name(TransitionId t) const {
  return transitions_.at(t).name;
}

int PetriNet::marking(PlaceId p) const { return places_.at(p).tokens; }

bool PetriNet::enabled(TransitionId t) const {
  // Multiple arcs from the same place need that many tokens.
  std::unordered_map<PlaceId, int> need;
  for (PlaceId p : transitions_.at(t).inputs) ++need[p];
  for (const auto& [p, n] : need)
    if (places_[p].tokens < n) return false;
  return !transitions_[t].inputs.empty() || !transitions_[t].outputs.empty();
}

std::vector<PetriNet::TransitionId> PetriNet::enabled_transitions() const {
  std::vector<TransitionId> out;
  for (TransitionId t = 0; t < transitions_.size(); ++t)
    if (enabled(t)) out.push_back(t);
  return out;
}

util::Status PetriNet::fire(TransitionId t) {
  if (t >= transitions_.size())
    return util::not_found("petri: unknown transition " + std::to_string(t));
  if (!enabled(t))
    return util::conflict("petri: transition '" + transitions_[t].name +
                          "' is not enabled");
  for (PlaceId p : transitions_[t].inputs) --places_[p].tokens;
  for (PlaceId p : transitions_[t].outputs) ++places_[p].tokens;
  return util::Status::ok_status();
}

std::vector<PetriNet::TransitionId> PetriNet::run_to_quiescence(
    std::size_t max_firings) {
  std::vector<TransitionId> sequence;
  while (sequence.size() < max_firings) {
    auto ready = enabled_transitions();
    if (ready.empty()) break;
    fire(ready.front()).expect("petri: firing an enabled transition");
    sequence.push_back(ready.front());
  }
  return sequence;
}

std::string PetriNet::describe() const {
  std::string out = "Petri net: " + std::to_string(places_.size()) + " places, " +
                    std::to_string(transitions_.size()) + " transitions\n";
  for (PlaceId p = 0; p < places_.size(); ++p) {
    out += "  place " + places_[p].name + " [";
    for (int i = 0; i < places_[p].tokens; ++i) out += "*";
    out += "]\n";
  }
  for (const auto& t : transitions_) {
    out += "  transition " + t.name + ": (";
    for (std::size_t i = 0; i < t.inputs.size(); ++i)
      out += (i ? ", " : "") + places_[t.inputs[i]].name;
    out += ") -> (";
    for (std::size_t i = 0; i < t.outputs.size(); ++i)
      out += (i ? ", " : "") + places_[t.outputs[i]].name;
    out += ")\n";
  }
  return out;
}

util::Result<PetriConversion> petri_from_task_tree(const flow::TaskTree& tree) {
  PetriConversion conv;
  const auto& schema = tree.schema();

  // One place per tree node (distinct branches of the same type stay
  // distinct); tools get one shared place per tool type (reusable resource).
  std::unordered_map<std::uint64_t, PetriNet::PlaceId> place_of_node;
  std::unordered_map<std::uint64_t, PetriNet::PlaceId> place_of_tool_type;

  for (const auto& node : tree.nodes()) {
    const std::string& type_name = schema.type(node.type).name;
    switch (node.kind) {
      case flow::NodeKind::kDataLeaf:
        // Bound inputs are available: one token.
        place_of_node[node.id.value()] = conv.net.add_place(
            type_name + "@" + node.id.str(), node.binding.empty() ? 0 : 1);
        break;
      case flow::NodeKind::kActivity:
        place_of_node[node.id.value()] =
            conv.net.add_place(type_name + "@" + node.id.str(), 0);
        break;
      case flow::NodeKind::kToolLeaf: {
        auto key = node.type.value();
        if (!place_of_tool_type.count(key)) {
          place_of_tool_type[key] = conv.net.add_place("tool:" + type_name, 1);
        }
        break;
      }
    }
  }

  for (flow::TaskNodeId act : tree.activities_post_order()) {
    const auto& node = tree.node(act);
    auto t = conv.net.add_transition(tree.activity_name(act));
    conv.activity_of_transition.push_back(tree.activity_name(act));
    // One-shot control token: each activity instance of the task fires once
    // (without it a transition consuming only its returned tool place would
    // re-fire forever).
    auto ready = conv.net.add_place("ready:" + tree.activity_name(act), 1);
    conv.net.add_input_arc(ready, t);
    for (flow::TaskNodeId child_id : node.children) {
      const auto& child = tree.node(child_id);
      if (child.kind == flow::NodeKind::kToolLeaf) {
        PetriNet::PlaceId tool = place_of_tool_type.at(child.type.value());
        conv.net.add_input_arc(tool, t);
        conv.net.add_output_arc(t, tool);  // the tool is returned after use
      } else {
        // Data is *read*, not consumed: the token returns so an output
        // shared by several consumers enables all of them.
        PetriNet::PlaceId data = place_of_node.at(child_id.value());
        conv.net.add_input_arc(data, t);
        conv.net.add_output_arc(t, data);
      }
    }
    conv.net.add_output_arc(t, place_of_node.at(node.id.value()));
  }

  conv.target_place = place_of_node.at(tree.root().value());
  return conv;
}

}  // namespace herc::adapters
