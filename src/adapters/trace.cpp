#include "adapters/trace.hpp"

#include <algorithm>
#include <queue>

namespace herc::adapters {

TraceGraph TraceGraph::capture(const meta::Database& db) {
  TraceGraph g(db);
  for (const auto& run : db.runs()) {
    if (run.status != meta::RunStatus::kCompleted) continue;
    g.transactions_.push_back(run.id);
    for (meta::EntityInstanceId in : run.inputs)
      g.consumers_[in.value()].push_back(run.id);
  }
  for (const auto& inst : db.instances()) g.objects_.push_back(inst.id);
  return g;
}

std::vector<meta::RunId> TraceGraph::affected_by(meta::EntityInstanceId instance) const {
  // BFS downstream: instance -> consuming transactions -> their outputs -> ...
  std::vector<meta::RunId> out;
  std::unordered_set<std::uint64_t> seen_runs;
  std::queue<meta::EntityInstanceId> frontier;
  frontier.push(instance);
  std::unordered_set<std::uint64_t> seen_objects{instance.value()};

  while (!frontier.empty()) {
    meta::EntityInstanceId obj = frontier.front();
    frontier.pop();
    auto it = consumers_.find(obj.value());
    if (it == consumers_.end()) continue;
    for (meta::RunId rid : it->second) {
      if (!seen_runs.insert(rid.value()).second) continue;
      out.push_back(rid);
      const meta::Run& run = db_->run(rid);
      if (run.output.valid() && seen_objects.insert(run.output.value()).second)
        frontier.push(run.output);
    }
  }
  std::sort(out.begin(), out.end());  // execution order = id order
  return out;
}

std::vector<meta::EntityInstanceId> TraceGraph::invalidated_by(
    meta::EntityInstanceId instance) const {
  std::vector<meta::EntityInstanceId> out;
  for (meta::RunId rid : affected_by(instance)) {
    const meta::Run& run = db_->run(rid);
    if (run.output.valid()) out.push_back(run.output);
  }
  return out;
}

std::vector<std::string> TraceGraph::retrace_activities(
    const std::vector<meta::EntityInstanceId>& changed) const {
  // Union of closures, collapsed to activities; run-id order = execution
  // order, so the first run of each activity fixes its position.
  std::vector<meta::RunId> all;
  for (meta::EntityInstanceId inst : changed) {
    auto runs = affected_by(inst);
    all.insert(all.end(), runs.begin(), runs.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  for (meta::RunId rid : all)
    if (seen.insert(db_->run(rid).activity).second)
      out.push_back(db_->run(rid).activity);
  return out;
}

std::vector<std::string> TraceGraph::replay_order() const {
  std::vector<std::string> out;
  out.reserve(transactions_.size());
  for (meta::RunId rid : transactions_) out.push_back(db_->run(rid).activity);
  return out;
}

std::vector<meta::EntityInstanceId> TraceGraph::stale_instances() const {
  std::vector<meta::EntityInstanceId> out;
  for (const auto& inst : db_->instances()) {
    if (!inst.produced_by.valid()) continue;  // imports are never stale
    // Only the latest version of a (type, name) can be stale.
    auto latest = db_->latest_named(inst.type_name, inst.name);
    if (!latest || *latest != inst.id) continue;
    for (meta::EntityInstanceId in : db_->run(inst.produced_by).inputs) {
      const auto& input = db_->instance(in);
      auto newest_input = db_->latest_named(input.type_name, input.name);
      if (newest_input && *newest_input != in) {
        out.push_back(inst.id);
        break;
      }
    }
  }
  return out;
}

std::vector<TraceGraph::DerivedActivity> TraceGraph::derive_flow() const {
  // Distinct activities in first-observed order.
  std::vector<DerivedActivity> out;
  std::unordered_map<std::string, std::size_t> index;
  for (meta::RunId rid : transactions_) {
    const meta::Run& run = db_->run(rid);
    auto it = index.find(run.activity);
    if (it == index.end()) {
      index[run.activity] = out.size();
      out.push_back(DerivedActivity{run.activity, {}, 0});
      it = index.find(run.activity);
    }
    DerivedActivity& act = out[it->second];
    ++act.observed_runs;
    // Predecessor activities: the producers of this run's inputs.
    for (meta::EntityInstanceId in : run.inputs) {
      const auto& inst = db_->instance(in);
      if (!inst.produced_by.valid()) continue;  // imported primary input
      const std::string& pred = db_->run(inst.produced_by).activity;
      if (std::find(act.predecessors.begin(), act.predecessors.end(), pred) ==
          act.predecessors.end())
        act.predecessors.push_back(pred);
    }
  }
  return out;
}

std::string TraceGraph::describe() const {
  std::string out = "Trace: " + std::to_string(transactions_.size()) +
                    " transactions over " + std::to_string(objects_.size()) +
                    " design objects\n";
  for (meta::RunId rid : transactions_) {
    const meta::Run& run = db_->run(rid);
    out += "  txn " + rid.str() + " [" + run.activity + "] (";
    for (std::size_t i = 0; i < run.inputs.size(); ++i)
      out += (i ? ", " : "") + db_->instance(run.inputs[i]).str();
    out += ") -> ";
    out += run.output.valid() ? db_->instance(run.output).str() : "(failed)";
    out += "\n";
  }
  return out;
}

}  // namespace herc::adapters
