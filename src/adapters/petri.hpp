#pragma once
// Petri-net flow model (the Hilda representation).
//
// "Hilda is a CAD Framework ... that uses a Petri net representation to
//  describe design flows.  Since Hilda uses a Petri Net representation for
//  the process flow, the functional building blocks are those associated
//  with a Petri Net model." — paper, Sec. II
//
// The paper argues any flow manager fitting the four-level architecture can
// host the schedule model.  This adapter demonstrates that for Hilda's
// representation: a task tree converts to a Petri net (activity ->
// transition, data type -> place), the net executes by token firing, and the
// firing sequence respects exactly the partial order the native executor
// respects — so the same schedule instances describe both.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/task_tree.hpp"
#include "util/result.hpp"

namespace herc::adapters {

/// A plain place/transition Petri net with non-negative integer markings.
class PetriNet {
 public:
  using PlaceId = std::size_t;
  using TransitionId = std::size_t;

  /// Adds a place with an initial marking.
  PlaceId add_place(const std::string& name, int tokens = 0);
  /// Adds a transition; arcs are added separately.
  TransitionId add_transition(const std::string& name);

  void add_input_arc(PlaceId from, TransitionId to);   ///< place -> transition
  void add_output_arc(TransitionId from, PlaceId to);  ///< transition -> place

  [[nodiscard]] std::size_t place_count() const { return places_.size(); }
  [[nodiscard]] std::size_t transition_count() const { return transitions_.size(); }
  [[nodiscard]] const std::string& place_name(PlaceId p) const;
  [[nodiscard]] const std::string& transition_name(TransitionId t) const;
  [[nodiscard]] int marking(PlaceId p) const;

  /// A transition is enabled iff every input place holds a token.
  [[nodiscard]] bool enabled(TransitionId t) const;
  [[nodiscard]] std::vector<TransitionId> enabled_transitions() const;

  /// Fires the transition: consumes one token per input arc, produces one
  /// per output arc.  kConflict if not enabled.
  util::Status fire(TransitionId t);

  /// Fires enabled transitions (lowest id first) until none is enabled or
  /// `max_firings` is reached; returns the firing sequence.
  [[nodiscard]] std::vector<TransitionId> run_to_quiescence(
      std::size_t max_firings = 100000);

  /// True if no transition is enabled.
  [[nodiscard]] bool quiescent() const { return enabled_transitions().empty(); }

  /// Human dump: places with markings, transitions with arcs.
  [[nodiscard]] std::string describe() const;

 private:
  struct Place {
    std::string name;
    int tokens = 0;
  };
  struct Transition {
    std::string name;
    std::vector<PlaceId> inputs;
    std::vector<PlaceId> outputs;
  };
  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

/// Conversion of a task tree to a Petri net:
///   - every tree node's data type gets a place (one per shared node);
///   - every activity gets a transition reading its input data places
///     (token consumed and returned: data is read, not destroyed, so shared
///     outputs enable every consumer), consuming its tool place (returned
///     after use: tools are reusable resources) and a one-shot "ready"
///     control place (not returned: each activity instance fires once),
///     and producing its output place;
///   - bound data leaves, tools and control places start with one token.
struct PetriConversion {
  PetriNet net;
  /// transition id -> activity name, for comparing firing order with the
  /// native execution order.
  std::vector<std::string> activity_of_transition;
  PetriNet::PlaceId target_place = 0;  ///< place of the root output
};

[[nodiscard]] util::Result<PetriConversion> petri_from_task_tree(
    const flow::TaskTree& tree);

}  // namespace herc::adapters
