#pragma once
// Petri-net flow model (the Hilda representation).
//
// "Hilda is a CAD Framework ... that uses a Petri net representation to
//  describe design flows.  Since Hilda uses a Petri Net representation for
//  the process flow, the functional building blocks are those associated
//  with a Petri Net model." — paper, Sec. II
//
// The paper argues any flow manager fitting the four-level architecture can
// host the schedule model.  This adapter demonstrates that for Hilda's
// representation: a task tree converts to a Petri net (activity ->
// transition, data type -> place), the net executes by token firing, and the
// firing sequence respects exactly the partial order the native executor
// respects — so the same schedule instances describe both.
//
// Timed semantics (after the timed-colored-net formulation of Pashazadeh &
// Niyari): every token carries an availability timestamp, every transition a
// duration.  A transition's earliest start is the latest availability among
// the tokens it needs; firing consumes its input tokens, leaves read tokens
// untouched, and produces output tokens stamped start + duration.  Conflict
// resolution is deterministic: among enabled transitions the earliest start
// fires first, ties broken by lowest transition id.  With unshared tools the
// resulting makespan is exactly the CPM early-finish makespan — the
// cross-model differential the conformance harness checks.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/task_tree.hpp"
#include "util/result.hpp"

namespace herc::adapters {

/// A place/transition Petri net.  Tokens carry availability timestamps
/// (work minutes); the untimed API views a marking as a plain token count.
class PetriNet {
 public:
  using PlaceId = std::size_t;
  using TransitionId = std::size_t;

  /// Adds a place with an initial marking (tokens available at time 0).
  PlaceId add_place(const std::string& name, int tokens = 0);
  /// Adds a transition; arcs are added separately.
  TransitionId add_transition(const std::string& name);

  void add_input_arc(PlaceId from, TransitionId to);   ///< place -> transition
  void add_output_arc(TransitionId from, PlaceId to);  ///< transition -> place
  /// Read arc: the transition needs a token present in `from` to fire but
  /// does not consume it (Hilda's data-is-read-not-destroyed semantics;
  /// several readers of one token are never serialized against each other).
  void add_read_arc(PlaceId from, TransitionId to);

  /// Work minutes the transition takes to fire (timed semantics only;
  /// untimed firing ignores it).  Defaults to 0.
  void set_duration(TransitionId t, std::int64_t minutes);
  [[nodiscard]] std::int64_t duration(TransitionId t) const;

  [[nodiscard]] std::size_t place_count() const { return places_.size(); }
  [[nodiscard]] std::size_t transition_count() const { return transitions_.size(); }
  [[nodiscard]] const std::string& place_name(PlaceId p) const;
  [[nodiscard]] const std::string& transition_name(TransitionId t) const;
  [[nodiscard]] int marking(PlaceId p) const;

  /// A transition is enabled iff every input place holds a token per input
  /// arc and every read place holds at least one token.
  [[nodiscard]] bool enabled(TransitionId t) const;
  [[nodiscard]] std::vector<TransitionId> enabled_transitions() const;

  /// Fires the transition: consumes one token per input arc, produces one
  /// per output arc (read places are untouched).  kConflict if not enabled.
  util::Status fire(TransitionId t);

  /// Fires enabled transitions (lowest id first) until none is enabled or
  /// `max_firings` is reached; returns the firing sequence.
  [[nodiscard]] std::vector<TransitionId> run_to_quiescence(
      std::size_t max_firings = 100000);

  /// One firing of the timed run: the transition, when it started (the
  /// latest availability among the tokens it needed) and when it finished.
  struct TimedFiring {
    TransitionId transition = 0;
    std::int64_t start = 0;
    std::int64_t finish = 0;
  };

  /// Timed token game: repeatedly fires, among all enabled transitions, the
  /// one with the earliest possible start (ties to the lowest id — the
  /// deterministic conflict resolution).  Consumed tokens are the earliest
  /// available in each input place; produced tokens are stamped
  /// start + duration.  Read tokens keep their timestamps but gate the
  /// start.  Returns the chronologically ordered firing log.
  [[nodiscard]] std::vector<TimedFiring> run_timed_to_quiescence(
      std::size_t max_firings = 100000);

  /// True if no transition is enabled.
  [[nodiscard]] bool quiescent() const { return enabled_transitions().empty(); }

  /// Human dump: places with markings, transitions with arcs (read arcs
  /// prefixed with '~').
  [[nodiscard]] std::string describe() const;

 private:
  struct Place {
    std::string name;
    std::vector<std::int64_t> tokens;  ///< availability timestamps, sorted
  };
  struct Transition {
    std::string name;
    std::vector<PlaceId> inputs;
    std::vector<PlaceId> reads;
    std::vector<PlaceId> outputs;
    std::int64_t duration = 0;
  };

  /// Earliest time the enabled transition could start (max over the tokens
  /// it would consume or read).
  [[nodiscard]] std::int64_t earliest_start(TransitionId t) const;

  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

/// Conversion of a task tree to a Petri net:
///   - every tree node's data type gets a place (one per shared node);
///   - every activity gets a transition *reading* its input data places
///     (data is read, not destroyed, so a shared output enables every
///     consumer without serializing them), consuming its tool place
///     (returned after use: tools are reusable resources) and a one-shot
///     "ready" control place (not returned: each activity instance fires
///     once), and producing its output place;
///   - bound data leaves, tools and control places start with one token.
struct PetriConversion {
  PetriNet net;
  /// transition id -> activity name, for comparing firing order with the
  /// native execution order.
  std::vector<std::string> activity_of_transition;
  PetriNet::PlaceId target_place = 0;  ///< place of the root output
  std::vector<PetriNet::PlaceId> ready_places;  ///< one-shot control places
  std::vector<PetriNet::PlaceId> tool_places;   ///< shared tool resources
};

struct PetriBuildOptions {
  /// true: each tool type is a capacity-1 resource place shared by its
  /// users (Hilda's resource semantics).  false: tool places are omitted
  /// entirely — unshared tools, the configuration whose timed makespan
  /// must equal the CPM makespan.
  bool shared_tools = true;
  /// Optional per-activity durations (work minutes) stamped onto the
  /// transitions for the timed token game.
  const std::unordered_map<std::string, std::int64_t>* durations = nullptr;
};

[[nodiscard]] util::Result<PetriConversion> petri_from_task_tree(
    const flow::TaskTree& tree, const PetriBuildOptions& options = {});

}  // namespace herc::adapters
