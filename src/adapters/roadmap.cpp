#include "adapters/roadmap.hpp"

#include <unordered_set>

namespace herc::adapters {

RoadmapModel RoadmapModel::from_schema(const schema::TaskSchema& schema) {
  RoadmapModel m;
  m.schema_ = &schema;
  for (const auto& rule : schema.rules()) {
    FlowType ft;
    ft.name = rule.activity;
    ft.tool_type = schema.type(rule.tool).name;
    int pin_no = 0;
    for (schema::EntityTypeId in : rule.inputs) {
      ft.pins.push_back(
          Pin{"in" + std::to_string(pin_no++), schema.type(in).name, true});
    }
    ft.pins.push_back(Pin{"out", schema.type(rule.output).name, false});
    m.types_.push_back(std::move(ft));
  }
  return m;
}

std::optional<std::size_t> RoadmapModel::find_flow_type(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i)
    if (types_[i].name == name) return i;
  return std::nullopt;
}

util::Status RoadmapModel::instantiate(const flow::TaskTree& tree) {
  if (&tree.schema() != schema_)
    return util::invalid("roadmap: task tree uses a different schema");
  instances_.clear();
  channels_.clear();

  std::unordered_map<std::uint64_t, std::size_t> instance_of_node;
  for (flow::TaskNodeId act : tree.activities_post_order()) {
    FlowInstance fi;
    fi.id = instances_.size();
    fi.flow_type = tree.activity_name(act);
    instance_of_node[act.value()] = fi.id;
    instances_.push_back(std::move(fi));
  }
  for (flow::TaskNodeId act : tree.activities_post_order()) {
    const auto& node = tree.node(act);
    int pin_no = 0;
    for (flow::TaskNodeId child_id : node.children) {
      const auto& child = tree.node(child_id);
      if (child.kind == flow::NodeKind::kToolLeaf) continue;
      if (child.kind == flow::NodeKind::kActivity) {
        channels_.push_back(Channel{instance_of_node.at(child_id.value()),
                                    instance_of_node.at(act.value()),
                                    "in" + std::to_string(pin_no)});
      }
      ++pin_no;  // data leaves occupy a pin slot but get no channel
    }
  }
  return util::Status::ok_status();
}

util::Result<std::string> RoadmapModel::verify_against(
    const flow::TaskTree& tree) const {
  auto activities = tree.activities_post_order();
  if (instances_.size() != activities.size())
    return util::invalid("roadmap: instance count " +
                         std::to_string(instances_.size()) + " != activity count " +
                         std::to_string(activities.size()));

  // Count the tree's activity-to-activity edges.
  std::size_t tree_edges = 0;
  for (flow::TaskNodeId act : activities) {
    for (flow::TaskNodeId child : tree.node(act).children)
      if (tree.node(child).kind == flow::NodeKind::kActivity) ++tree_edges;
  }
  if (channels_.size() != tree_edges)
    return util::invalid("roadmap: channel count " + std::to_string(channels_.size()) +
                         " != tree edge count " + std::to_string(tree_edges));

  // Pin-type agreement on every channel.
  for (const auto& ch : channels_) {
    const FlowType& from = types_[*find_flow_type(instances_[ch.from_instance].flow_type)];
    const FlowType& to = types_[*find_flow_type(instances_[ch.to_instance].flow_type)];
    const Pin* to_pin = nullptr;
    for (const auto& p : to.pins)
      if (p.name == ch.to_pin) to_pin = &p;
    if (!to_pin)
      return util::invalid("roadmap: channel references unknown pin '" + ch.to_pin + "'");
    if (from.output().data_type != to_pin->data_type)
      return util::invalid("roadmap: channel type mismatch " + from.output().data_type +
                           " -> " + to_pin->data_type);
  }

  return std::string("roadmap network isomorphic to task tree: ") +
         std::to_string(instances_.size()) + " instances, " +
         std::to_string(channels_.size()) + " channels, all pin types agree";
}

std::string RoadmapModel::describe() const {
  std::string out = "Roadmap model: " + std::to_string(types_.size()) + " flow types\n";
  for (const auto& t : types_) {
    out += "  flowtype " + t.name + " (tool " + t.tool_type + "): ";
    for (std::size_t i = 0; i + 1 < t.pins.size(); ++i)
      out += (i ? ", " : "") + t.pins[i].name + ":" + t.pins[i].data_type;
    out += " -> " + t.output().data_type + "\n";
  }
  if (!instances_.empty()) {
    out += "  network: " + std::to_string(instances_.size()) + " instances, " +
           std::to_string(channels_.size()) + " channels\n";
    for (const auto& ch : channels_)
      out += "    " + instances_[ch.from_instance].flow_type + " ==> " +
             instances_[ch.to_instance].flow_type + "." + ch.to_pin + "\n";
  }
  return out;
}

}  // namespace herc::adapters
