#include "adapters/history.hpp"

#include <algorithm>

namespace herc::adapters {

HistoryModel HistoryModel::capture(const meta::Database& db) {
  HistoryModel model(db);
  for (const auto& inst : db.instances()) {
    HistoryEvent e;
    e.at = inst.created_at;
    e.instance = inst.id;
    if (inst.produced_by.valid()) {
      e.kind = HistoryEvent::Kind::kDerive;
      e.summary = "derive " + inst.str() + " by run " + inst.produced_by.str();
    } else {
      e.kind = HistoryEvent::Kind::kImport;
      e.summary = "import " + inst.str();
    }
    model.events_.push_back(std::move(e));
  }
  for (const auto& run : db.runs()) {
    HistoryEvent e;
    e.kind = HistoryEvent::Kind::kRun;
    e.at = run.finished_at;
    e.run = run.id;
    e.summary = run.str();
    model.events_.push_back(std::move(e));
  }
  std::stable_sort(model.events_.begin(), model.events_.end(),
                   [](const HistoryEvent& a, const HistoryEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     // Derivations land with their runs; order events at the
                     // same instant by kind then id for determinism.
                     auto rank = [](const HistoryEvent& e) {
                       return e.kind == HistoryEvent::Kind::kRun ? 1 : 0;
                     };
                     if (rank(a) != rank(b)) return rank(a) < rank(b);
                     if (a.instance != b.instance) return a.instance < b.instance;
                     return a.run < b.run;
                   });
  return model;
}

HistorySnapshot HistoryModel::state_at(cal::WorkInstant t) const {
  HistorySnapshot snap;
  snap.as_of = t;
  for (const auto& inst : db_->instances())
    if (inst.created_at <= t) ++snap.instances;
  for (const auto& run : db_->runs())
    if (run.finished_at <= t) ++snap.runs;
  for (const auto& type : db_->schema().types()) {
    if (type.kind != schema::EntityKind::kData) continue;
    std::vector<meta::EntityInstanceId> present;
    for (meta::EntityInstanceId id : db_->container(type.name))
      if (db_->instance(id).created_at <= t) present.push_back(id);
    snap.containers.emplace_back(type.name, std::move(present));
  }
  return snap;
}

std::vector<HistoryModel::VersionStep> HistoryModel::version_chain(
    const std::string& type_name, const std::string& name) const {
  std::vector<VersionStep> out;
  for (meta::EntityInstanceId id : db_->container(type_name)) {
    const auto& inst = db_->instance(id);
    if (inst.name != name) continue;
    out.push_back(VersionStep{id, inst.produced_by, inst.created_at});
  }
  return out;
}

std::string HistoryModel::describe(const cal::WorkCalendar& calendar) const {
  std::string out =
      "Design history (" + std::to_string(events_.size()) + " events)\n";
  for (const auto& e : events_)
    out += "  " + calendar.format(e.at) + "  " + e.summary + "\n";
  return out;
}

}  // namespace herc::adapters
