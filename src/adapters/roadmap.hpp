#pragma once
// Data-flow roadmap model (the Philips Roadmap / ELSIS representation).
//
// "The Data Flow Based Architecture or Roadmap Model ... is based on the
//  Object Type Oriented Data Model.  The structure of the RoadMap Model
//  introduced the idea of a multi-level architecture for a flow model."
//                                                       — paper, Sec. II
//
// Roadmap's Level-1 objects are FlowTypes with typed Pins; Level-2 objects
// are Flow instances whose InSlots/OutSlots are wired by Channels.  This
// adapter expresses a task schema in those terms, wires a flow network
// equivalent to a task tree, and verifies the two are isomorphic — the
// structural half of the paper's claim that the schedule model transfers to
// roadmap-style systems.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "flow/task_tree.hpp"
#include "schema/schema.hpp"
#include "util/result.hpp"

namespace herc::adapters {

/// Level-1: a typed pin of a FlowType.
struct Pin {
  std::string name;       ///< pin label, unique within the flow type
  std::string data_type;  ///< entity-type name the pin carries
  bool is_input = true;
};

/// Level-1: a flow type (Roadmap's reusable building block; corresponds to
/// one construction rule + its tool).
struct FlowType {
  std::string name;  ///< activity name
  std::string tool_type;
  std::vector<Pin> pins;  ///< inputs in rule order, then the single output

  [[nodiscard]] const Pin& output() const { return pins.back(); }
};

/// Level-2: an instance of a FlowType placed in a flow network.
struct FlowInstance {
  std::size_t id = 0;
  std::string flow_type;  ///< FlowType::name
};

/// Level-2: a channel from an OutSlot to an InSlot.
struct Channel {
  std::size_t from_instance;  ///< producer FlowInstance id
  std::size_t to_instance;    ///< consumer FlowInstance id
  std::string to_pin;         ///< consumer's input pin name
};

/// The roadmap view of one schema + one task tree.
class RoadmapModel {
 public:
  /// Level-1 conversion: one FlowType per construction rule.
  [[nodiscard]] static RoadmapModel from_schema(const schema::TaskSchema& schema);

  [[nodiscard]] const std::vector<FlowType>& flow_types() const { return types_; }
  [[nodiscard]] std::optional<std::size_t> find_flow_type(const std::string& name) const;

  /// Level-2 conversion: instantiates the flow network equivalent to `tree`.
  /// Fails if the tree's schema differs from this model's.
  util::Status instantiate(const flow::TaskTree& tree);

  [[nodiscard]] const std::vector<FlowInstance>& instances() const { return instances_; }
  [[nodiscard]] const std::vector<Channel>& channels() const { return channels_; }

  /// Structural check: the flow network has exactly one instance per tree
  /// activity and one channel per activity-to-activity edge, with matching
  /// pin types.  Returns a human-readable isomorphism report.
  [[nodiscard]] util::Result<std::string> verify_against(const flow::TaskTree& tree) const;

  [[nodiscard]] std::string describe() const;

 private:
  const schema::TaskSchema* schema_ = nullptr;
  std::vector<FlowType> types_;
  std::vector<FlowInstance> instances_;
  std::vector<Channel> channels_;
};

}  // namespace herc::adapters
