#include "cli/cli.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "adapters/trace.hpp"
#include "exec/fault.hpp"
#include "core/compare.hpp"
#include "core/risk.hpp"
#include "core/whatif.hpp"
#include "gantt/gantt.hpp"
#include "gantt/svg.hpp"
#include "hercules/journal.hpp"
#include "hercules/persist.hpp"
#include "query/query.hpp"
#include "srv/client.hpp"
#include "track/report.hpp"
#include "track/utilization.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

namespace herc::cli {

namespace {

constexpr const char* kHelp = R"(commands:
  new <schema-file> [epoch YYYY-MM-DD]     create a project from a schema file
  schema <inline-dsl>                      create a project from inline DSL
  show schema|db|task <name>
  tool <instance> <type> <nominal> [noise <frac>] [fail <rate>]
  resource <name> [kind] [capacity]
  vacation <resource> <start-date> <days>   (leveled plans schedule around it)
  task <name> <target-type> [stop <type> ...]
  bind <task> <type> <instance>
  estimate <activity> <duration> | estimate fallback <duration>
  plan <task> [strategy intuition|last|mean|ewma|pert] [level] [deadline <dur>]
  replan <task> [strategy ...] [level] [deadline <dur>]
  execute <task> <designer>
  dispatch <task> <designer>  (concurrent execution; plan assignments apply)
  run <task> <activity> <designer>
  refresh <task> <designer>   (re-run only stale/missing activities)
  stale                       (design data whose inputs moved on)
  drag <task>                 (where optimisation buys schedule)
  link <task> <activity>
  gantt <task> | portfolio <task>... | svg <task> | status <task>
  lineage <task> | diff <task>   (plan evolution; what the re-plan changed)
  report <task> (HTML) | utilization <task>
  risk <task> [samples] [seed] [threads]   (Monte Carlo completion risk)
  query <statement>
  explain <statement>           (chosen access path: index vs scan, cache)
  browse | select <id> | display | delete
  whatif delay <task> <activity> <duration>
  whatif crash <task> <deadline, duration from epoch>
  retry <max> [backoff <dur>] [timeout <dur>] [tool <instance>]
  onfail abort|retry|continue   (what execution does when a run fails)
  faults seed <n>               (deterministic fault injection)
  faults tool <inst> [fail <p>] [latency <f>] [failon <k>...] [crashon <k>...]
  faults crashafter <n> | faults show | faults off
  journal on <file> | journal off  (crash-safe run journal; snapshot first)
  recover <snapshot> <journal>     (rebuild a crashed project)
  advance <duration> | now
  trace on <file> | trace off   (Chrome/Perfetto trace of the project)
  stats [json]                  (event-bus counters and latency histograms)
  save <file> | open <file>     (save replaces the file atomically)
  remote connect unix:/path|tcp:host:port   (talk to a herc_srv instance)
  remote ping | projects | stats | disconnect
  remote open <name> [seed=N] [shape=S] [size=K] | remote close <name>
  remote <project> <op> [key=value ...]     (generic op passthrough)
  quit
)";

util::Result<sched::EstimateStrategy> parse_strategy(const std::string& name) {
  if (name == "intuition") return sched::EstimateStrategy::kIntuition;
  if (name == "last") return sched::EstimateStrategy::kLast;
  if (name == "mean") return sched::EstimateStrategy::kMean;
  if (name == "ewma") return sched::EstimateStrategy::kEwma;
  if (name == "pert") return sched::EstimateStrategy::kPert;
  return util::invalid("unknown strategy '" + name +
                       "' (intuition|last|mean|ewma|pert)");
}

std::string join_from(const std::vector<std::string>& args, std::size_t from) {
  std::vector<std::string> rest(args.begin() + static_cast<std::ptrdiff_t>(from),
                                args.end());
  return util::join(rest, " ");
}

}  // namespace

CliSession::~CliSession() {
  // Mirror `trace off`: an unclosed trace still reaches its file.
  if (exporter_ && !trace_path_.empty()) (void)exporter_->write_file(trace_path_);
}

void CliSession::adopt(std::unique_ptr<hercules::WorkflowManager> manager) {
  // Subscribers follow the session, not the project: detach from the old
  // manager's bus before it dies, re-attach to the new one.
  metrics_->detach();
  if (exporter_) exporter_->detach();
  manager_ = std::move(manager);
  browser_.reset();
  if (manager_) {
    metrics_->attach(manager_->bus());
    if (exporter_) exporter_->attach(manager_->bus());
  }
}

util::Result<hercules::WorkflowManager*> CliSession::need_manager() {
  if (!manager_)
    return util::conflict("no project; use 'new <schema-file>' or 'schema <dsl>'");
  return manager_.get();
}

util::Result<std::string> CliSession::execute_line(const std::string& line) {
  std::string_view trimmed = util::trim(line);
  if (trimmed.empty() || trimmed.front() == '#') return std::string{};
  try {
    // `schema` and `query` take the rest of the line verbatim.
    auto args = util::split_ws(trimmed);
    if (args[0] == "schema" && args.size() > 1)
      return cmd_schema(std::string(util::trim(trimmed.substr(6))));
    if (args[0] == "query") {
      auto m = need_manager();
      if (!m.ok()) return m.error();
      if (args.size() < 2) return util::invalid("query: missing statement");
      return m.value()->query(util::trim(trimmed.substr(5)));
    }
    if (args[0] == "explain") {
      auto m = need_manager();
      if (!m.ok()) return m.error();
      if (args.size() < 2) return util::invalid("explain: missing statement");
      return m.value()->explain(util::trim(trimmed.substr(7)));
    }
    return dispatch(args);
  } catch (const exec::InjectedCrash& crash) {
    // A fault-plan crash point fired mid-command: the simulated process
    // death.  The in-memory project is now whatever the crash left behind —
    // exactly the state `recover` rebuilds from snapshot + journal.
    return util::unsupported(std::string("simulated crash: ") + crash.what());
  }
}

util::Result<std::string> CliSession::dispatch(const Args& args) {
  const std::string& cmd = args[0];
  if (cmd == "help") return std::string(kHelp);
  if (cmd == "quit" || cmd == "exit") {
    quit_ = true;
    return std::string("bye\n");
  }
  if (cmd == "new") return cmd_new(args);
  if (cmd == "show") return cmd_show(args);
  if (cmd == "tool") return cmd_tool(args);
  if (cmd == "resource") return cmd_resource(args);
  if (cmd == "vacation") return cmd_vacation(args);
  if (cmd == "task") return cmd_task(args);
  if (cmd == "bind") return cmd_bind(args);
  if (cmd == "estimate") return cmd_estimate(args);
  if (cmd == "plan") return cmd_plan(args, /*replan=*/false);
  if (cmd == "replan") return cmd_plan(args, /*replan=*/true);
  if (cmd == "execute") return cmd_execute(args);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "link") return cmd_link(args);
  if (cmd == "whatif") return cmd_whatif(args);
  if (cmd == "retry") return cmd_retry(args);
  if (cmd == "onfail") return cmd_onfail(args);
  if (cmd == "faults") return cmd_faults(args);
  if (cmd == "journal") return cmd_journal(args);
  if (cmd == "recover") return cmd_recover(args);
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "browse" || cmd == "select" || cmd == "display" || cmd == "delete")
    return cmd_browse_ops(args);
  if (cmd == "save") return cmd_save(args);
  if (cmd == "open") return cmd_open(args);
  if (cmd == "remote") return cmd_remote(args);

  auto m = need_manager();
  if (!m.ok()) return m.error();
  auto* manager = m.value();

  if (cmd == "gantt") {
    if (args.size() != 2) return util::invalid("gantt <task>");
    return manager->gantt(args[1]);
  }
  if (cmd == "svg") {
    if (args.size() != 2) return util::invalid("svg <task>");
    auto plan = manager->plan_of(args[1]);
    if (!plan) return util::conflict("task '" + args[1] + "' has no plan");
    return gantt::render_gantt_svg(manager->schedule_space(), manager->calendar(),
                                   *plan, manager->clock().now());
  }
  if (cmd == "status") {
    if (args.size() != 2) return util::invalid("status <task>");
    return manager->status_report(args[1]);
  }
  if (cmd == "report") {
    if (args.size() != 2) return util::invalid("report <task>");
    auto plan = manager->plan_of(args[1]);
    if (!plan) return util::conflict("task '" + args[1] + "' has no plan");
    return track::render_html_report(manager->schedule_space(), manager->db(),
                                     manager->calendar(), *plan,
                                     manager->clock().now());
  }
  if (cmd == "risk") {
    if (args.size() < 2 || args.size() > 5)
      return util::invalid("risk <task> [samples] [seed] [threads]");
    auto plan = manager->plan_of(args[1]);
    if (!plan) return util::conflict("task '" + args[1] + "' has no plan");
    sched::RiskOptions opt;
    opt.bus = &manager->bus();
    try {
      if (args.size() > 2) opt.samples = std::stoi(args[2]);
      if (args.size() > 3) opt.seed = std::stoull(args[3]);
      if (args.size() > 4) opt.threads = std::stoi(args[4]);
    } catch (const std::exception&) {
      return util::invalid("risk: [samples] [seed] [threads] must be numeric");
    }
    auto risk =
        sched::analyze_risk(manager->schedule_space(), manager->db(), *plan, opt);
    if (!risk.ok()) return risk.error();
    return risk.value().render(manager->calendar());
  }
  if (cmd == "utilization") {
    if (args.size() != 2) return util::invalid("utilization <task>");
    auto plan = manager->plan_of(args[1]);
    if (!plan) return util::conflict("task '" + args[1] + "' has no plan");
    auto report = track::utilization(manager->schedule_space(), manager->db(), *plan);
    if (!report.ok()) return report.error();
    return report.value().render(manager->calendar());
  }
  if (cmd == "portfolio") {
    if (args.size() < 2) return util::invalid("portfolio <task> [<task> ...]");
    std::vector<sched::ScheduleRunId> plans;
    for (std::size_t i = 1; i < args.size(); ++i) {
      auto plan = manager->plan_of(args[i]);
      if (!plan) return util::conflict("task '" + args[i] + "' has no plan");
      plans.push_back(*plan);
    }
    return gantt::render_portfolio_gantt(manager->schedule_space(),
                                         manager->calendar(), plans,
                                         manager->clock().now());
  }
  if (cmd == "dispatch") {
    if (args.size() != 3) return util::invalid("dispatch <task> <designer>");
    // Resource assignments come from the task's plan when one exists.
    exec::Executor::DispatchOptions opt;
    if (auto plan = manager->plan_of(args[1])) {
      for (sched::ScheduleNodeId nid : manager->schedule_space().plan(*plan).nodes) {
        const auto& n = manager->schedule_space().node(nid);
        if (!n.resources.empty()) opt.assignments[n.activity] = n.resources;
      }
    }
    auto result = manager->execute_task_concurrent(args[1], args[2], opt);
    if (!result.ok()) return result.error();
    std::string out;
    for (const auto& r : result.value().runs)
      out += manager->db().run(r.run).str() + "  [" +
             manager->calendar().format(manager->db().run(r.run).started_at) + " .. " +
             manager->calendar().format(manager->db().run(r.run).finished_at) + "]\n";
    if (result.value().success) {
      out += "dispatch complete at " +
             manager->calendar().format(manager->clock().now()) + "\n";
    } else if (!result.value().skipped.empty()) {
      out += "dispatch DEGRADED on failure; skipped:";
      for (const auto& s : result.value().skipped) out += " " + s;
      out += "\n";
    } else {
      out += "dispatch STOPPED on failure\n";
    }
    return out;
  }
  if (cmd == "refresh") {
    if (args.size() != 3) return util::invalid("refresh <task> <designer>");
    auto runs = manager->refresh_task(args[1], args[2]);
    if (!runs.ok()) return runs.error();
    if (runs.value().empty()) return std::string("everything up to date\n");
    std::string out;
    for (const auto& r : runs.value()) out += manager->db().run(r.run).str() + "\n";
    return out;
  }
  if (cmd == "stale") {
    auto trace = adapters::TraceGraph::capture(manager->db());
    auto stale = trace.stale_instances();
    if (stale.empty()) return std::string("no stale design data\n");
    std::string out = "stale (inputs have newer versions):\n";
    for (auto id : stale) out += "  " + manager->db().instance(id).str() + "\n";
    return out;
  }
  if (cmd == "drag") {
    if (args.size() != 2) return util::invalid("drag <task>");
    auto plan = manager->plan_of(args[1]);
    if (!plan) return util::conflict("task '" + args[1] + "' has no plan");
    std::string out = "critical-path drag (completion gained if the activity "
                      "took zero time):\n";
    for (const auto& d : sched::plan_drag(manager->schedule_space(), *plan))
      out += "  " + util::pad_right(d.activity, 16) +
             d.drag.str(manager->calendar().minutes_per_day()) + "\n";
    return out;
  }
  if (cmd == "diff") {
    if (args.size() != 2) return util::invalid("diff <task>");
    auto plan = manager->plan_of(args[1]);
    if (!plan) return util::conflict("task '" + args[1] + "' has no plan");
    auto prev = manager->schedule_space().plan(*plan).derived_from;
    if (!prev.valid())
      return util::conflict("task '" + args[1] +
                            "' has only one plan generation; nothing to diff");
    auto cmp = sched::compare_plans(manager->schedule_space(), prev, *plan);
    if (!cmp.ok()) return cmp.error();
    return cmp.value().render(manager->calendar());
  }
  if (cmd == "lineage") {
    if (args.size() != 2) return util::invalid("lineage <task>");
    auto plan = manager->plan_of(args[1]);
    if (!plan) return util::conflict("task '" + args[1] + "' has no plan");
    query::QueryEngine engine(manager->db(), manager->schedule_space());
    return engine.plan_lineage(*plan).render(&manager->calendar());
  }
  if (cmd == "advance") {
    if (args.size() < 2) return util::invalid("advance <duration>");
    auto d = manager->calendar().parse_duration(join_from(args, 1));
    if (!d.ok()) return d.error();
    manager->clock().advance(d.value());
    return "now: " + manager->calendar().format(manager->clock().now()) + "\n";
  }
  if (cmd == "now")
    return "now: " + manager->calendar().format(manager->clock().now()) + "\n";

  return util::not_found("unknown command '" + cmd + "' (try 'help')");
}

util::Result<std::string> CliSession::cmd_new(const Args& args) {
  if (args.size() != 2 && args.size() != 4)
    return util::invalid("new <schema-file> [epoch YYYY-MM-DD]");
  auto dsl = util::read_file(args[1]);
  if (!dsl.ok()) return dsl.error();
  cal::WorkCalendar::Config cfg;
  if (args.size() == 4) {
    if (args[2] != "epoch") return util::invalid("new <schema-file> [epoch <date>]");
    auto epoch = cal::Date::parse(args[3]);
    if (!epoch.ok()) return epoch.error();
    cfg.epoch = epoch.value();
  }
  auto created = hercules::WorkflowManager::create(dsl.value(), cfg);
  if (!created.ok()) return created.error();
  adopt(std::move(created).take());
  return "project created from '" + args[1] + "' (schema '" +
         manager_->schema().name() + "')\n";
}

util::Result<std::string> CliSession::cmd_schema(const std::string& rest) {
  auto created = hercules::WorkflowManager::create(rest);
  if (!created.ok()) return created.error();
  adopt(std::move(created).take());
  return "project created (schema '" + manager_->schema().name() + "')\n";
}

util::Result<std::string> CliSession::cmd_show(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() >= 2 && args[1] == "schema") {
    std::string out = m.value()->schema().describe();
    auto warnings = m.value()->schema().lint();
    for (const auto& w : warnings) out += "  warning: " + w + "\n";
    return out;
  }
  if (args.size() >= 2 && args[1] == "db") return m.value()->dump_database();
  if (args.size() == 3 && args[1] == "task") {
    auto tree = m.value()->task(args[2]);
    if (!tree.ok()) return tree.error();
    return tree.value()->render();
  }
  return util::invalid("show schema|db|task <name>");
}

util::Result<std::string> CliSession::cmd_tool(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() < 4)
    return util::invalid("tool <instance> <type> <nominal> [noise <f>] [fail <r>]");
  exec::ToolSpec spec;
  spec.instance_name = args[1];
  spec.tool_type = args[2];
  auto nominal = m.value()->calendar().parse_duration(args[3]);
  if (!nominal.ok()) return nominal.error();
  spec.nominal = nominal.value();
  for (std::size_t i = 4; i + 1 < args.size(); i += 2) {
    try {
      if (args[i] == "noise") spec.noise_frac = std::stod(args[i + 1]);
      else if (args[i] == "fail") spec.fail_rate = std::stod(args[i + 1]);
      else return util::invalid("tool: unknown option '" + args[i] + "'");
    } catch (const std::exception&) {
      return util::invalid("tool: bad number '" + args[i + 1] + "'");
    }
  }
  auto st = m.value()->register_tool(std::move(spec));
  if (!st.ok()) return st.error();
  return "tool '" + args[1] + "' registered\n";
}

util::Result<std::string> CliSession::cmd_resource(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() < 2 || args.size() > 4)
    return util::invalid("resource <name> [kind] [capacity]");
  std::string kind = args.size() > 2 ? args[2] : "person";
  int capacity = 1;
  if (args.size() > 3) {
    try {
      capacity = std::stoi(args[3]);
    } catch (const std::exception&) {
      return util::invalid("resource: bad capacity '" + args[3] + "'");
    }
  }
  auto id = m.value()->add_resource(args[1], kind, capacity);
  return "resource '" + args[1] + "' " + id.str() + " added\n";
}

util::Result<std::string> CliSession::cmd_vacation(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() != 4) return util::invalid("vacation <resource> <start-date> <days>");
  auto rid = m.value()->db().find_resource(args[1]);
  if (!rid) return util::not_found("no resource '" + args[1] + "'");
  auto date = cal::Date::parse(args[2]);
  if (!date.ok()) return date.error();
  int days = 0;
  try {
    days = std::stoi(args[3]);
  } catch (const std::exception&) {
    return util::invalid("vacation: bad day count '" + args[3] + "'");
  }
  if (days < 1) return util::invalid("vacation: need at least one day");
  const auto& calendar = m.value()->calendar();
  cal::WorkInstant from = calendar.at_start_of(date.value());
  cal::WorkInstant to =
      from + cal::WorkDuration::minutes(days * calendar.minutes_per_day());
  auto st = m.value()->db().add_time_off(*rid, from, to);
  if (!st.ok()) return st.error();
  return args[1] + " off " + calendar.format_date(from) + " for " +
         std::to_string(days) + " workday(s)\n";
}

util::Result<std::string> CliSession::cmd_task(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() < 3) return util::invalid("task <name> <target-type> [stop <t>...]");
  std::unordered_set<std::string> stops;
  if (args.size() > 3) {
    if (args[3] != "stop") return util::invalid("task <name> <target> [stop <t>...]");
    for (std::size_t i = 4; i < args.size(); ++i) stops.insert(args[i]);
  }
  auto st = m.value()->extract_task(args[1], args[2], stops);
  if (!st.ok()) return st.error();
  return "task '" + args[1] + "' extracted:\n" + m.value()->task(args[1]).value()->render();
}

util::Result<std::string> CliSession::cmd_bind(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() != 4) return util::invalid("bind <task> <type> <instance>");
  auto st = m.value()->bind(args[1], args[2], args[3]);
  if (!st.ok()) return st.error();
  return "bound " + args[2] + " = " + args[3] + "\n";
}

util::Result<std::string> CliSession::cmd_estimate(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() < 3) return util::invalid("estimate <activity|fallback> <duration>");
  auto d = m.value()->calendar().parse_duration(join_from(args, 2));
  if (!d.ok()) return d.error();
  if (args[1] == "fallback") {
    m.value()->estimator().set_fallback(d.value());
    return std::string("fallback estimate set\n");
  }
  if (!m.value()->schema().find_rule_by_activity(args[1]))
    return util::not_found("no activity '" + args[1] + "' in the schema");
  m.value()->estimator().set_intuition(args[1], d.value());
  return "estimate for " + args[1] + " set to " +
         d.value().str(m.value()->calendar().minutes_per_day()) + "\n";
}

util::Result<std::string> CliSession::cmd_plan(const Args& args, bool replan) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() < 2) return util::invalid("plan <task> [strategy <s>] [level]");
  sched::PlanRequest req;
  req.anchor = m.value()->clock().now();
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (args[i] == "strategy" && i + 1 < args.size()) {
      auto s = parse_strategy(args[++i]);
      if (!s.ok()) return s.error();
      req.strategy = s.value();
    } else if (args[i] == "level") {
      req.level_resources = true;
    } else if (args[i] == "deadline" && i + 1 < args.size()) {
      auto d = m.value()->calendar().parse_duration(args[++i]);
      if (!d.ok()) return d.error();
      req.deadline = cal::WorkInstant(d.value().count_minutes());
    } else {
      return util::invalid("plan: unknown option '" + args[i] + "'");
    }
  }
  auto plan = replan ? m.value()->replan_task(args[1], req)
                     : m.value()->plan_task(args[1], req);
  if (!plan.ok()) return plan.error();
  return m.value()->schedule_space().plan(plan.value()).str() + " created\n" +
         m.value()->gantt(args[1]).value();
}

util::Result<std::string> CliSession::cmd_execute(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() != 3) return util::invalid("execute <task> <designer>");
  auto result = m.value()->execute_task(args[1], args[2]);
  if (!result.ok()) return result.error();
  std::string out;
  for (const auto& r : result.value().runs) {
    const auto& run = m.value()->db().run(r.run);
    out += run.str() + "\n";
  }
  if (result.value().success) {
    out += "execution complete\n";
  } else if (!result.value().skipped.empty()) {
    out += "execution DEGRADED on failure; skipped:";
    for (const auto& s : result.value().skipped) out += " " + s;
    out += "\n";
  } else {
    out += "execution STOPPED on failure\n";
  }
  return out;
}

util::Result<std::string> CliSession::cmd_run(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() != 4) return util::invalid("run <task> <activity> <designer>");
  auto result = m.value()->run_activity(args[1], args[2], args[3]);
  if (!result.ok()) return result.error();
  return m.value()->db().run(result.value().run).str() + "\n";
}

util::Result<std::string> CliSession::cmd_link(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() != 3) return util::invalid("link <task> <activity>");
  auto st = m.value()->link_completion(args[1], args[2]);
  if (!st.ok()) return st.error();
  return "linked final " + args[2] + " data to its schedule instance\n";
}

util::Result<std::string> CliSession::cmd_whatif(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  auto* manager = m.value();
  const std::int64_t mpd = manager->calendar().minutes_per_day();
  if (args.size() >= 5 && args[1] == "delay") {
    auto plan = manager->plan_of(args[2]);
    if (!plan) return util::conflict("task '" + args[2] + "' has no plan");
    auto d = manager->calendar().parse_duration(join_from(args, 4));
    if (!d.ok()) return d.error();
    auto impact =
        sched::simulate_delay(manager->schedule_space(), *plan, args[3], d.value());
    if (!impact.ok()) return impact.error();
    const auto& i = impact.value();
    std::string out = "if " + i.activity + " slips " + i.delay.str(mpd) + ": ";
    if (i.absorbed) {
      out += "absorbed by slack; completion stays " +
             manager->calendar().format_date(i.old_finish) + "\n";
    } else {
      out += "completion moves " + manager->calendar().format_date(i.old_finish) +
             " -> " + manager->calendar().format_date(i.new_finish) + " (slip " +
             i.project_slip.str(mpd) + ")\n";
    }
    if (!i.shifted_activities.empty())
      out += "shifted: " + util::join(i.shifted_activities, ", ") + "\n";
    return out;
  }
  if (args.size() >= 4 && args[1] == "crash") {
    auto plan = manager->plan_of(args[2]);
    if (!plan) return util::conflict("task '" + args[2] + "' has no plan");
    auto d = manager->calendar().parse_duration(join_from(args, 3));
    if (!d.ok()) return d.error();
    auto crash = sched::crash_to_deadline(manager->schedule_space(), *plan,
                                          cal::WorkInstant(d.value().count_minutes()));
    if (!crash.ok()) return crash.error();
    const auto& c = crash.value();
    std::string out = "deadline " + manager->calendar().format_date(c.deadline) +
                      ", projected " +
                      manager->calendar().format_date(c.projected_finish) + "\n";
    if (c.shortfall.count_minutes() <= 0) return out + "deadline already met\n";
    out += c.feasible ? "feasible with cuts:\n" : "INFEASIBLE even with cuts:\n";
    for (const auto& step : c.steps)
      out += "  shorten " + step.activity + " by " + step.reduction.str(mpd) +
             " (currently " + step.current.str(mpd) + ")\n";
    return out;
  }
  return util::invalid("whatif delay <task> <activity> <duration> | "
                       "whatif crash <task> <deadline>");
}

util::Result<std::string> CliSession::cmd_retry(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() < 2)
    return util::invalid("retry <max> [backoff <dur>] [timeout <dur>] [tool <inst>]");
  exec::RetryPolicy policy;
  try {
    policy.max_attempts = std::stoi(args[1]);
  } catch (const std::exception&) {
    return util::invalid("retry: bad attempt count '" + args[1] + "'");
  }
  if (policy.max_attempts < 1) return util::invalid("retry: need at least 1 attempt");
  std::string tool;
  for (std::size_t i = 2; i + 1 < args.size(); i += 2) {
    if (args[i] == "backoff" || args[i] == "timeout") {
      auto d = m.value()->calendar().parse_duration(args[i + 1]);
      if (!d.ok()) return d.error();
      (args[i] == "backoff" ? policy.backoff : policy.timeout) = d.value();
    } else if (args[i] == "tool") {
      tool = args[i + 1];
    } else {
      return util::invalid("retry: unknown option '" + args[i] + "'");
    }
  }
  auto options = m.value()->exec_options();
  if (tool.empty())
    options.retry = policy;
  else
    options.tool_retry[tool] = policy;
  m.value()->set_exec_options(std::move(options));
  std::string out = "retry policy" + (tool.empty() ? "" : " for '" + tool + "'") +
                    ": " + std::to_string(policy.max_attempts) + " attempt(s)\n";
  if (m.value()->exec_options().on_failure == exec::FailurePolicy::kAbort &&
      policy.max_attempts > 1)
    out += "note: onfail is 'abort'; retries apply after 'onfail retry' or "
           "'onfail continue'\n";
  return out;
}

util::Result<std::string> CliSession::cmd_onfail(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() != 2) return util::invalid("onfail abort|retry|continue");
  auto options = m.value()->exec_options();
  if (args[1] == "abort") options.on_failure = exec::FailurePolicy::kAbort;
  else if (args[1] == "retry") options.on_failure = exec::FailurePolicy::kRetryThenAbort;
  else if (args[1] == "continue")
    options.on_failure = exec::FailurePolicy::kContinueIndependent;
  else return util::invalid("onfail abort|retry|continue");
  m.value()->set_exec_options(std::move(options));
  return "on failure: " + args[1] + "\n";
}

util::Result<std::string> CliSession::cmd_faults(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  auto* manager = m.value();
  if (args.size() < 2)
    return util::invalid("faults seed|tool|crashafter|show|off ...");

  // Start from the installed scenario so successive commands compose.
  std::uint64_t seed = 1;
  exec::FaultPlan plan;
  if (const auto* injector = manager->fault_injector()) {
    seed = injector->seed();
    plan = injector->plan();
  }

  if (args[1] == "off") {
    manager->clear_faults();
    return std::string("fault injection off\n");
  }
  if (args[1] == "show") {
    if (!manager->fault_injector()) return std::string("fault injection off\n");
    std::string out = "fault seed " + std::to_string(seed) + "\n";
    if (plan.crash_after_total > 0)
      out += "  crash after " + std::to_string(plan.crash_after_total) +
             " total invocations\n";
    for (const auto& [name, f] : plan.tools) {
      out += "  " + name + ": fail " + std::to_string(f.fail_prob) + ", latency x" +
             std::to_string(f.latency_factor);
      if (!f.fail_on.empty()) {
        out += ", failon";
        for (int k : f.fail_on) out += " " + std::to_string(k);
      }
      if (!f.crash_on.empty()) {
        out += ", crashon";
        for (int k : f.crash_on) out += " " + std::to_string(k);
      }
      out += "\n";
    }
    return out;
  }
  if (args[1] == "seed") {
    if (args.size() != 3) return util::invalid("faults seed <n>");
    try {
      seed = std::stoull(args[2]);
    } catch (const std::exception&) {
      return util::invalid("faults: bad seed '" + args[2] + "'");
    }
    manager->set_faults(seed, std::move(plan));
    return "fault seed " + std::to_string(seed) + "\n";
  }
  if (args[1] == "crashafter") {
    if (args.size() != 3) return util::invalid("faults crashafter <n>");
    try {
      plan.crash_after_total = std::stoull(args[2]);
    } catch (const std::exception&) {
      return util::invalid("faults: bad invocation count '" + args[2] + "'");
    }
    manager->set_faults(seed, std::move(plan));
    return "crash after " + args[2] + " total invocations\n";
  }
  if (args[1] == "tool") {
    if (args.size() < 3)
      return util::invalid(
          "faults tool <inst> [fail <p>] [latency <f>] [failon <k>...] [crashon <k>...]");
    exec::ToolFaults& f = plan.tools[args[2]];
    std::size_t i = 3;
    try {
      while (i < args.size()) {
        if (args[i] == "fail" && i + 1 < args.size()) {
          f.fail_prob = std::stod(args[i + 1]);
          i += 2;
        } else if (args[i] == "latency" && i + 1 < args.size()) {
          f.latency_factor = std::stod(args[i + 1]);
          i += 2;
        } else if (args[i] == "failon" || args[i] == "crashon") {
          auto& list = args[i] == "failon" ? f.fail_on : f.crash_on;
          std::size_t j = i + 1;
          while (j < args.size() && (std::isdigit(args[j][0]) != 0))
            list.push_back(std::stoi(args[j++]));
          if (j == i + 1) return util::invalid("faults: " + args[i] + " needs indices");
          i = j;
        } else {
          return util::invalid("faults: unknown option '" + args[i] + "'");
        }
      }
    } catch (const std::exception&) {
      return util::invalid("faults: bad number in tool options");
    }
    const std::string name = args[2];
    manager->set_faults(seed, std::move(plan));
    return "faults set for tool '" + name + "'\n";
  }
  return util::invalid("faults seed|tool|crashafter|show|off ...");
}

util::Result<std::string> CliSession::cmd_journal(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() == 3 && args[1] == "on") {
    auto st = m.value()->enable_journal(args[2]);
    if (!st.ok()) return st.error();
    return "journaling runs to '" + args[2] +
           "' (snapshot with 'save' so recovery has a base)\n";
  }
  if (args.size() == 2 && args[1] == "off") {
    if (!m.value()->journal()) return util::conflict("journaling is not on");
    m.value()->disable_journal();
    return std::string("journaling off\n");
  }
  return util::invalid("journal on <file> | journal off");
}

util::Result<std::string> CliSession::cmd_recover(const Args& args) {
  if (args.size() != 3) return util::invalid("recover <snapshot> <journal>");
  auto recovered = hercules::recover_project(args[1], args[2]);
  if (!recovered.ok()) return recovered.error();
  adopt(std::move(recovered).take());
  return "project recovered from '" + args[1] + "' + journal '" + args[2] +
         "' (" + std::to_string(manager_->db().run_count()) +
         " runs; re-register tools before executing)\n";
}

util::Result<std::string> CliSession::cmd_trace(const Args& args) {
  if (args.size() == 3 && args[1] == "on") {
    auto m = need_manager();
    if (!m.ok()) return m.error();
    if (exporter_) return util::conflict("already tracing to '" + trace_path_ + "'");
    exporter_ = std::make_unique<obs::ChromeTraceExporter>();
    exporter_->attach(m.value()->bus());
    trace_path_ = args[2];
    return "tracing to '" + trace_path_ + "' (chrome://tracing / Perfetto)\n";
  }
  if (args.size() == 2 && args[1] == "off") {
    if (!exporter_) return util::conflict("not tracing; use 'trace on <file>'");
    exporter_->detach();
    auto st = exporter_->write_file(trace_path_);
    std::string out = "wrote " + std::to_string(exporter_->event_count()) +
                      " events to '" + trace_path_ + "'\n";
    // Tracing ends either way; a failed write must not leave the session
    // stuck "already tracing" to an unwritable path.
    exporter_.reset();
    trace_path_.clear();
    if (!st.ok())
      return util::invalid(st.error().message + " (trace discarded)");
    return out;
  }
  return util::invalid("trace on <file> | trace off");
}

util::Result<std::string> CliSession::cmd_stats(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  // Snapshot health rides along with the metrics: which epoch the project
  // is at, how many views were ever published, and how many are still
  // pinned (live > 1 means a retired epoch is held by some reader).
  const std::int64_t live = m.value()->snapshots_live();
  if (args.size() == 2 && args[1] == "json") {
    auto j = metrics_->json();
    util::JsonObject sn;
    sn.set("epoch", static_cast<std::int64_t>(m.value()->snapshot_epoch()));
    sn.set("published",
           static_cast<std::int64_t>(m.value()->snapshots_published()));
    sn.set("live", live);
    sn.set("retired_unreclaimed", live > 1 ? live - 1 : 0);
    j.as_object().set("snapshots", util::Json(std::move(sn)));
    return j.dump() + "\n";
  }
  if (args.size() != 1) return util::invalid("stats [json]");
  std::string out = metrics_->text();
  out += "snapshots:\n  epoch " + std::to_string(m.value()->snapshot_epoch()) +
         "  published " + std::to_string(m.value()->snapshots_published()) +
         "  live " + std::to_string(live) + "  retired-unreclaimed " +
         std::to_string(live > 1 ? live - 1 : 0) + "\n";
  return out;
}

util::Result<std::string> CliSession::cmd_browse_ops(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (!browser_) {
    browser_ = std::make_unique<gantt::ScheduleBrowser>(
        m.value()->schedule_space(), m.value()->db(), m.value()->calendar());
  }
  if (args[0] == "browse") return browser_->list();
  if (args[0] == "select") {
    if (args.size() != 2) return util::invalid("select <id>");
    std::uint64_t id = 0;
    try {
      id = std::stoull(args[1]);
    } catch (const std::exception&) {
      return util::invalid("select: bad id '" + args[1] + "'");
    }
    auto st = browser_->select(sched::ScheduleNodeId{id});
    if (!st.ok()) return st.error();
    return "selected " + sched::ScheduleNodeId{id}.str() + "\n";
  }
  if (args[0] == "display") return browser_->display();
  // delete
  auto st = browser_->delete_selected();
  if (!st.ok()) return st.error();
  return std::string("deleted\n");
}

util::Result<std::string> CliSession::cmd_save(const Args& args) {
  auto m = need_manager();
  if (!m.ok()) return m.error();
  if (args.size() != 2) return util::invalid("save <file>");
  auto st = hercules::save_project_file(*m.value(), args[1]);
  if (!st.ok()) return st.error();
  return "saved to '" + args[1] + "'\n";
}

util::Result<std::string> CliSession::cmd_open(const Args& args) {
  if (args.size() != 2) return util::invalid("open <file>");
  auto text = util::read_file(args[1]);
  if (!text.ok()) return text.error();
  auto loaded = hercules::load_from_json(text.value());
  if (!loaded.ok()) return loaded.error();
  adopt(std::move(loaded).take());
  return "project loaded from '" + args[1] +
         "' (re-register tools before executing)\n";
}

util::Result<std::string> CliSession::cmd_remote(const Args& args) {
  if (args.size() < 2)
    return util::invalid(
        "remote connect <addr> | disconnect | ping | projects | stats | "
        "open <name> [seed N] [shape S] [size K] | close <name> | "
        "<project> <op> [key=value ...]");
  const std::string& sub = args[1];

  if (sub == "connect") {
    if (args.size() != 3)
      return util::invalid("remote connect unix:/path|tcp:host:port");
    auto client = srv::Client::connect(args[2]);
    if (!client.ok()) return client.error();
    remote_ = std::move(client).take();
    return "connected to " + args[2] + "\n";
  }
  if (sub == "disconnect") {
    if (!remote_) return util::conflict("not connected");
    remote_.reset();
    return std::string("disconnected\n");
  }
  if (!remote_)
    return util::conflict("not connected; use 'remote connect <addr>'");

  // k=v pairs -> args object; integers pass through as numbers so ops like
  // advance {minutes} and open {scenario_seed} work from the command line.
  auto parse_kv = [](const Args& list, std::size_t from,
                     util::JsonObject& out) -> util::Status {
    for (std::size_t i = from; i < list.size(); ++i) {
      auto eq = list[i].find('=');
      if (eq == std::string::npos || eq == 0)
        return util::invalid("remote: expected key=value, got '" + list[i] + "'");
      std::string key = list[i].substr(0, eq);
      std::string value = list[i].substr(eq + 1);
      if (value == "true" || value == "false") {
        out.set(key, util::Json(value == "true"));
        continue;
      }
      try {
        std::size_t used = 0;
        std::int64_t n = std::stoll(value, &used);
        if (used == value.size()) {
          out.set(key, util::Json(n));
          continue;
        }
      } catch (const std::exception&) {
      }
      out.set(key, util::Json(std::move(value)));
    }
    return util::Status::ok_status();
  };

  std::string project;
  std::string op;
  util::JsonObject call_args;
  if (sub == "ping" || sub == "projects" || sub == "stats" ||
      sub == "shutdown") {
    op = sub;
  } else if (sub == "open" || sub == "close") {
    if (args.size() < 3) return util::invalid("remote " + sub + " <name> ...");
    op = sub;
    call_args.set("name", util::Json(args[2]));
    if (sub == "open") {
      // Friendly aliases for the open op's scenario knobs.
      util::JsonObject extra;
      auto st = parse_kv(args, 3, extra);
      if (!st.ok()) return st.error();
      for (const auto& [key, value] : extra) {
        if (key == "seed")
          call_args.set("scenario_seed", value);
        else
          call_args.set(key, value);
      }
    }
  } else {
    // Generic passthrough: remote <project> <op> [key=value ...]
    if (args.size() < 3)
      return util::invalid("remote <project> <op> [key=value ...]");
    project = sub;
    op = args[2];
    if (op == "query" || op == "explain") {
      // Statements contain spaces; take the rest of the line verbatim.
      if (args.size() < 4)
        return util::invalid("remote <project> " + op + " <statement>");
      call_args.set("statement", util::Json(join_from(args, 3)));
    } else {
      auto st = parse_kv(args, 3, call_args);
      if (!st.ok()) return st.error();
    }
  }

  auto result = remote_->invoke(project, op, std::move(call_args));
  if (!result.ok()) {
    // A transport error means the connection is gone; drop it so the next
    // command fails with "not connected" instead of writing to a dead fd.
    if (result.error().code == util::Error::Code::kUnbound) remote_.reset();
    return result.error();
  }
  return result.value().dump(2) + "\n";
}

}  // namespace herc::cli
