#pragma once
// Command-line session over the workflow manager.
//
// The paper's Hercules exposed its operations through a Motif GUI (Fig. 8);
// this is the scriptable equivalent: one command per line covering the full
// procedure (schema -> tools -> task -> bind -> estimate -> plan -> execute
// -> link -> status) plus queries, what-if analysis, the browser, the clock
// and persistence.  `examples/herc_shell` wraps it in a REPL; tests drive it
// line by line.
//
// Commands (run `help` for the same list):
//
//   new <schema-file> [epoch YYYY-MM-DD]     create a project from a schema
//   schema <inline-dsl>                      create a project from inline DSL
//   show schema|db|task <name>
//   tool <instance> <type> <nominal> [noise <frac>] [fail <rate>]
//   resource <name> [kind] [capacity]
//   task <name> <target-type> [stop <type> ...]
//   bind <task> <type> <instance>
//   estimate <activity> <duration>           e.g. estimate Route 2d 4h
//   estimate fallback <duration>
//   plan <task> [strategy intuition|last|mean|ewma|pert] [level]
//   replan <task> [strategy ...] [level]
//   execute <task> <designer>
//   run <task> <activity> <designer>
//   link <task> <activity>
//   gantt <task>            svg <task>
//   status <task>           lineage <task>
//   query <statement>
//   browse | select <id> | display | delete
//   whatif delay <task> <activity> <duration>
//   whatif crash <task> <deadline-duration-from-epoch>
//   retry <max> [backoff <dur>] [timeout <dur>] [tool <instance>]
//   onfail abort|retry|continue
//   faults seed|tool|crashafter|show|off ...   (deterministic fault injection)
//   journal on <file> | journal off            (crash-safe run journal)
//   recover <snapshot> <journal>
//   advance <duration>      now
//   save <file> | open <file>                  (save is atomic: tmp + rename)
//   remote connect unix:/path|tcp:host:port    talk to a herc_srv instance
//   remote ping|projects|stats|disconnect
//   remote open <name> [seed=N] [shape=S] [size=K]   remote close <name>
//   remote <project> <op> [key=value ...]      generic server op passthrough
//   quit

#include <memory>
#include <string>

#include "gantt/browser.hpp"
#include "hercules/workflow_manager.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "srv/client.hpp"

namespace herc::cli {

class CliSession {
 public:
  CliSession() = default;
  /// Flushes an active trace to its file (best effort) before teardown.
  ~CliSession();

  // Movable (the bus points at the heap-allocated subscribers, which do not
  // move with the session), not copyable.
  CliSession(CliSession&&) = default;
  CliSession& operator=(CliSession&&) = default;

  /// Executes one command line; returns the text to display.  Unknown
  /// commands, bad arguments and subsystem failures come back as errors.
  /// Blank lines and '#' comments return empty output.
  [[nodiscard]] util::Result<std::string> execute_line(const std::string& line);

  [[nodiscard]] bool quit_requested() const { return quit_; }

  /// The managed project; null until `new`/`schema`/`open` succeeds.
  [[nodiscard]] hercules::WorkflowManager* manager() { return manager_.get(); }

  /// Installs a manager built elsewhere (tests, embedding).
  void adopt(std::unique_ptr<hercules::WorkflowManager> manager);

 private:
  using Args = std::vector<std::string>;

  util::Result<std::string> dispatch(const Args& args);
  util::Result<std::string> cmd_new(const Args& args);
  util::Result<std::string> cmd_schema(const std::string& rest);
  util::Result<std::string> cmd_show(const Args& args);
  util::Result<std::string> cmd_tool(const Args& args);
  util::Result<std::string> cmd_resource(const Args& args);
  util::Result<std::string> cmd_vacation(const Args& args);
  util::Result<std::string> cmd_task(const Args& args);
  util::Result<std::string> cmd_bind(const Args& args);
  util::Result<std::string> cmd_estimate(const Args& args);
  util::Result<std::string> cmd_plan(const Args& args, bool replan);
  util::Result<std::string> cmd_execute(const Args& args);
  util::Result<std::string> cmd_run(const Args& args);
  util::Result<std::string> cmd_link(const Args& args);
  util::Result<std::string> cmd_whatif(const Args& args);
  util::Result<std::string> cmd_retry(const Args& args);
  util::Result<std::string> cmd_onfail(const Args& args);
  util::Result<std::string> cmd_faults(const Args& args);
  util::Result<std::string> cmd_journal(const Args& args);
  util::Result<std::string> cmd_recover(const Args& args);
  util::Result<std::string> cmd_browse_ops(const Args& args);
  util::Result<std::string> cmd_trace(const Args& args);
  util::Result<std::string> cmd_stats(const Args& args);
  util::Result<std::string> cmd_save(const Args& args);
  util::Result<std::string> cmd_open(const Args& args);
  util::Result<std::string> cmd_remote(const Args& args);

  /// Fails unless a project exists.
  util::Result<hercules::WorkflowManager*> need_manager();

  std::unique_ptr<hercules::WorkflowManager> manager_;
  std::unique_ptr<gantt::ScheduleBrowser> browser_;
  // Session-wide observability: metrics always follow the current project's
  // bus; the exporter exists only between `trace on` and `trace off`.
  // Declared after manager_ so they detach from the bus before it dies.
  std::unique_ptr<obs::MetricsRegistry> metrics_ =
      std::make_unique<obs::MetricsRegistry>();
  std::unique_ptr<obs::ChromeTraceExporter> exporter_;
  std::string trace_path_;
  // `remote connect` session against a herc_srv instance; local project
  // commands keep working side by side (the CLI is then a thin wire client
  // for the remote ops and a full workflow manager for the local ones).
  std::unique_ptr<srv::Client> remote_;
  bool quit_ = false;
};

}  // namespace herc::cli
