#include "track/status.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace herc::track {

const char* activity_state_name(ActivityState s) {
  switch (s) {
    case ActivityState::kNotStarted: return "not-started";
    case ActivityState::kInProgress: return "in-progress";
    case ActivityState::kComplete: return "complete";
  }
  return "?";
}

std::vector<ActivityStatus> activity_status(const sched::ScheduleSpace& space,
                                            const meta::Database& db,
                                            sched::ScheduleRunId plan,
                                            cal::WorkInstant as_of) {
  std::vector<ActivityStatus> out;
  for (sched::ScheduleNodeId nid : space.plan(plan).nodes) {
    const sched::ScheduleNode& n = space.node(nid);
    ActivityStatus s;
    s.activity = n.activity;
    s.node = nid;
    s.critical = n.critical;
    s.baseline_start = n.baseline_start;
    s.baseline_finish = n.baseline_finish;
    s.planned_start = n.planned_start;
    s.planned_finish = n.planned_finish;
    s.actual_start = n.actual_start;
    s.actual_finish = n.actual_finish;
    s.est_duration = n.est_duration;
    s.total_slack = n.total_slack;
    s.runs = static_cast<int>(db.runs_of_activity(n.activity).size());
    if (n.completed) {
      s.state = ActivityState::kComplete;
      s.finish_variance = *n.actual_finish - n.baseline_finish;
    } else if (n.actual_start && *n.actual_start <= as_of) {
      s.state = ActivityState::kInProgress;
      s.finish_variance = n.planned_finish - n.baseline_finish;
    } else {
      s.state = ActivityState::kNotStarted;
      s.finish_variance = n.planned_finish - n.baseline_finish;
    }
    out.push_back(std::move(s));
  }
  return out;
}

ProjectStatus project_status(const sched::ScheduleSpace& space,
                             const meta::Database& db, sched::ScheduleRunId plan,
                             cal::WorkInstant as_of) {
  ProjectStatus p;
  p.plan_name = space.plan(plan).name;
  auto rows = activity_status(space, db, plan, as_of);
  p.total_activities = static_cast<int>(rows.size());

  cal::WorkInstant baseline_finish;
  cal::WorkInstant projected_finish;
  for (const auto& r : rows) {
    baseline_finish = std::max(baseline_finish, r.baseline_finish);
    cal::WorkInstant finish = r.actual_finish ? *r.actual_finish : r.planned_finish;
    projected_finish = std::max(projected_finish, finish);

    const double budget = static_cast<double>(r.est_duration.count_minutes());
    switch (r.state) {
      case ActivityState::kComplete:
        ++p.completed;
        p.bcwp += budget;
        break;
      case ActivityState::kInProgress: {
        ++p.in_progress;
        // Earned value of in-progress work: linear fraction of planned
        // duration elapsed since the actual start, capped at the budget.
        double elapsed =
            static_cast<double>((as_of - *r.actual_start).count_minutes());
        p.bcwp += std::min(budget, std::max(0.0, elapsed));
        break;
      }
      case ActivityState::kNotStarted:
        ++p.not_started;
        break;
    }
    // BCWS: portion of the budget that should be done by `as_of` per the
    // baseline dates.
    if (as_of >= r.baseline_finish) {
      p.bcws += budget;
    } else if (as_of > r.baseline_start) {
      p.bcws += budget *
                static_cast<double>((as_of - r.baseline_start).count_minutes()) /
                std::max(1.0, static_cast<double>(
                                  (r.baseline_finish - r.baseline_start).count_minutes()));
    }
  }
  p.baseline_finish = baseline_finish;
  p.projected_finish = projected_finish;
  p.schedule_variance = projected_finish - baseline_finish;
  p.spi = p.bcws > 0 ? p.bcwp / p.bcws : 1.0;
  if (auto deadline = space.plan(plan).deadline) {
    p.deadline = deadline;
    p.deadline_margin = *deadline - projected_finish;
  }
  return p;
}

std::string render_status_report(const sched::ScheduleSpace& space,
                                 const meta::Database& db,
                                 const cal::WorkCalendar& calendar,
                                 sched::ScheduleRunId plan, cal::WorkInstant as_of) {
  using util::pad_right;
  auto rows = activity_status(space, db, plan, as_of);
  auto proj = project_status(space, db, plan, as_of);
  const std::int64_t mpd = calendar.minutes_per_day();

  std::string out;
  out += "Status of " + space.plan(plan).str() + " as of " + calendar.format(as_of) +
         "\n";
  out += pad_right("activity", 14) + pad_right("state", 13) + pad_right("crit", 6) +
         pad_right("baseline finish", 17) + pad_right("projected finish", 18) +
         pad_right("variance", 10) + "runs\n";
  out += util::repeat('-', 82) + "\n";
  for (const auto& r : rows) {
    cal::WorkInstant finish = r.actual_finish ? *r.actual_finish : r.planned_finish;
    out += pad_right(r.activity, 14);
    out += pad_right(activity_state_name(r.state), 13);
    out += pad_right(r.critical ? "yes" : "", 6);
    out += pad_right(calendar.format_date(r.baseline_finish), 17);
    out += pad_right(calendar.format_date(finish), 18);
    out += pad_right(r.finish_variance.count_minutes() == 0
                         ? "-"
                         : r.finish_variance.str(mpd),
                     10);
    out += std::to_string(r.runs) + "\n";
  }
  out += util::repeat('-', 82) + "\n";
  out += "activities: " + std::to_string(proj.completed) + " complete, " +
         std::to_string(proj.in_progress) + " in progress, " +
         std::to_string(proj.not_started) + " not started\n";
  out += "baseline finish: " + calendar.format_date(proj.baseline_finish) +
         "   projected finish: " + calendar.format_date(proj.projected_finish);
  if (proj.schedule_variance.count_minutes() != 0)
    out += "   slip: " + proj.schedule_variance.str(mpd);
  out += "\n";
  if (proj.deadline) {
    out += "deadline: " + calendar.format_date(*proj.deadline);
    out += proj.deadline_margin->count_minutes() >= 0
               ? "   margin: " + proj.deadline_margin->str(mpd)
               : "   MISSING BY " +
                     cal::WorkDuration::minutes(-proj.deadline_margin->count_minutes())
                         .str(mpd);
    out += "\n";
  }
  out += "earned value: BCWP " + util::format_double(proj.bcwp / 60.0, 1) +
         "h of BCWS " + util::format_double(proj.bcws / 60.0, 1) +
         "h scheduled (SPI " + util::format_double(proj.spi, 2) + ")\n";
  return out;
}

}  // namespace herc::track
