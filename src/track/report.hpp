#pragma once
// Self-contained HTML project report.
//
// Composes everything the integrated system knows about one task's plan —
// activity status, earned value, the deadline margin, the embedded SVG Gantt
// chart, resource utilization, Monte Carlo risk, and the plan lineage — into
// one document a project manager can mail around.  This is the batch-report
// counterpart of the paper's interactive status examination (Sec. IV.B).

#include <string>

#include "core/risk.hpp"
#include "core/schedule_space.hpp"
#include "metadata/database.hpp"

namespace herc::track {

struct ReportOptions {
  bool include_risk = true;        ///< run the Monte Carlo section
  sched::RiskOptions risk;         ///< sampling parameters when included
  bool include_utilization = true;
  bool include_lineage = true;
};

/// Renders the report for one plan as of `as_of`.  kInvalid on an empty
/// plan.  The output is a complete standalone HTML document (inline styles,
/// inline SVG, no external references).
[[nodiscard]] util::Result<std::string> render_html_report(
    const sched::ScheduleSpace& space, const meta::Database& db,
    const cal::WorkCalendar& calendar, sched::ScheduleRunId plan,
    cal::WorkInstant as_of, const ReportOptions& options = {});

}  // namespace herc::track
