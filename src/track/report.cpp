#include "track/report.hpp"

#include "gantt/svg.hpp"
#include "track/status.hpp"
#include "track/utilization.hpp"
#include "util/strings.hpp"

namespace herc::track {

namespace {

std::string html_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void table_open(std::string& out, const std::vector<std::string>& headers) {
  out += "<table><tr>";
  for (const auto& h : headers) out += "<th>" + html_escape(h) + "</th>";
  out += "</tr>\n";
}

void table_row(std::string& out, const std::vector<std::string>& cells) {
  out += "<tr>";
  for (const auto& c : cells) out += "<td>" + html_escape(c) + "</td>";
  out += "</tr>\n";
}

}  // namespace

util::Result<std::string> render_html_report(const sched::ScheduleSpace& space,
                                             const meta::Database& db,
                                             const cal::WorkCalendar& calendar,
                                             sched::ScheduleRunId plan,
                                             cal::WorkInstant as_of,
                                             const ReportOptions& options) {
  const auto& p = space.plan(plan);
  if (p.nodes.empty()) return util::invalid("report: plan has no activities");
  const std::int64_t mpd = calendar.minutes_per_day();

  std::string out;
  out += "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n";
  out += "<title>" + html_escape(p.name) + " — schedule report</title>\n";
  out += R"(<style>
body { font-family: sans-serif; margin: 2em; color: #212529; max-width: 70em; }
h1 { font-size: 1.5em; } h2 { font-size: 1.15em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.5em 0; }
th, td { border: 1px solid #dee2e6; padding: 4px 10px; text-align: left;
         font-size: 0.92em; }
th { background: #f1f3f5; }
.ok { color: #2f9e44; } .bad { color: #d6336c; font-weight: bold; }
.meta { color: #868e96; font-size: 0.9em; }
</style></head><body>
)";

  auto project = project_status(space, db, plan, as_of);
  out += "<h1>Schedule report — " + html_escape(p.name) + "</h1>\n";
  out += "<p class=\"meta\">plan " + p.id.str() + ", as of " +
         calendar.format(as_of) + "</p>\n";

  // --- summary ---------------------------------------------------------------
  out += "<h2>Summary</h2>\n";
  table_open(out, {"", ""});
  table_row(out, {"activities", std::to_string(project.completed) + " complete / " +
                                    std::to_string(project.in_progress) +
                                    " in progress / " +
                                    std::to_string(project.not_started) +
                                    " not started"});
  table_row(out, {"baseline finish", calendar.format_date(project.baseline_finish)});
  table_row(out, {"projected finish", calendar.format_date(project.projected_finish)});
  table_row(out, {"schedule variance",
                  project.schedule_variance.count_minutes() == 0
                      ? "on plan"
                      : project.schedule_variance.str(mpd)});
  if (project.deadline) {
    std::string margin =
        project.deadline_margin->count_minutes() >= 0
            ? "margin " + project.deadline_margin->str(mpd)
            : "MISSING BY " + cal::WorkDuration::minutes(
                                  -project.deadline_margin->count_minutes())
                                  .str(mpd);
    table_row(out, {"deadline",
                    calendar.format_date(*project.deadline) + " (" + margin + ")"});
  }
  table_row(out, {"earned value",
                  "BCWP " + util::format_double(project.bcwp / 60.0, 1) +
                      "h of BCWS " + util::format_double(project.bcws / 60.0, 1) +
                      "h (SPI " + util::format_double(project.spi, 2) + ")"});
  out += "</table>\n";

  // --- Gantt -----------------------------------------------------------------
  out += "<h2>Gantt</h2>\n";
  out += gantt::render_gantt_svg(space, calendar, plan, as_of);

  // --- activities ---------------------------------------------------------------
  out += "<h2>Activities</h2>\n";
  table_open(out, {"activity", "state", "critical", "baseline finish",
                   "projected finish", "variance", "runs"});
  for (const auto& row : activity_status(space, db, plan, as_of)) {
    cal::WorkInstant finish = row.actual_finish ? *row.actual_finish : row.planned_finish;
    table_row(out,
              {row.activity, activity_state_name(row.state),
               row.critical ? "yes" : "", calendar.format_date(row.baseline_finish),
               calendar.format_date(finish),
               row.finish_variance.count_minutes() == 0 ? "-"
                                                        : row.finish_variance.str(mpd),
               std::to_string(row.runs)});
  }
  out += "</table>\n";

  // --- utilization --------------------------------------------------------------
  if (options.include_utilization && !db.resources().empty()) {
    auto util_report = utilization(space, db, plan);
    if (util_report.ok()) {
      out += "<h2>Resource utilization</h2>\n";
      table_open(out, {"resource", "capacity", "load", "busy", "utilization",
                       "peak", "overbooked"});
      for (const auto& r : util_report.value().resources) {
        table_row(out, {r.name, std::to_string(r.capacity), r.load.str(mpd),
                        r.busy.str(mpd),
                        util::format_double(100 * r.utilization, 0) + "%",
                        std::to_string(r.peak_concurrency),
                        r.overallocations.empty() ? "" : "YES"});
      }
      out += "</table>\n";
    }
  }

  // --- risk ----------------------------------------------------------------------
  if (options.include_risk) {
    auto risk = sched::analyze_risk(space, db, plan, options.risk);
    if (risk.ok()) {
      const auto& r = risk.value();
      out += "<h2>Schedule risk (" + std::to_string(r.samples) + " samples)</h2>\n";
      table_open(out, {"", ""});
      table_row(out, {"P50 finish", calendar.format_date(r.p50_finish)});
      table_row(out, {"P90 finish", calendar.format_date(r.p90_finish)});
      table_row(out, {"chance of meeting the deterministic projection",
                      util::format_double(100 * r.on_time_probability, 1) + "%"});
      out += "</table>\n";
      table_open(out, {"activity", "criticality", "mean duration"});
      for (const auto& a : r.activities)
        table_row(out, {a.activity, util::format_double(100 * a.criticality, 1) + "%",
                        a.mean_duration.str(mpd)});
      out += "</table>\n";
    }
  }

  // --- lineage ---------------------------------------------------------------------
  if (options.include_lineage) {
    auto ancestry = space.lineage(plan);
    if (ancestry.size() > 1) {
      out += "<h2>Plan evolution</h2>\n<ol>\n";
      for (auto it = ancestry.rbegin(); it != ancestry.rend(); ++it)
        out += "<li>" + html_escape(space.plan(*it).str()) + " (created " +
               calendar.format(space.plan(*it).created_at) + ")</li>\n";
      out += "</ol>\n";
    }
  }

  out += "</body></html>\n";
  return out;
}

}  // namespace herc::track
