#include "track/utilization.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace herc::track {

namespace {

/// Length of the union of (possibly overlapping) intervals.
cal::WorkDuration union_length(std::vector<std::pair<std::int64_t, std::int64_t>> spans) {
  std::sort(spans.begin(), spans.end());
  std::int64_t total = 0;
  std::int64_t cur_start = 0, cur_end = -1;
  bool open = false;
  for (auto [s, e] : spans) {
    if (!open || s > cur_end) {
      if (open) total += cur_end - cur_start;
      cur_start = s;
      cur_end = e;
      open = true;
    } else {
      cur_end = std::max(cur_end, e);
    }
  }
  if (open) total += cur_end - cur_start;
  return cal::WorkDuration::minutes(total);
}

}  // namespace

util::Result<UtilizationReport> utilization(const sched::ScheduleSpace& space,
                                            const meta::Database& db,
                                            sched::ScheduleRunId plan_id) {
  const auto& plan = space.plan(plan_id);

  // Collect dated intervals per node.
  struct Booked {
    std::int64_t start, finish;
    std::string activity;
    std::vector<util::ResourceId> resources;
  };
  std::vector<Booked> booked;
  std::int64_t h0 = 0, h1 = 0;
  bool first = true;
  for (sched::ScheduleNodeId nid : plan.nodes) {
    const auto& n = space.node(nid);
    if (n.deleted) continue;
    Booked b;
    b.start = (n.actual_start ? *n.actual_start : n.planned_start).minutes_since_epoch();
    b.finish =
        (n.actual_finish ? *n.actual_finish : n.planned_finish).minutes_since_epoch();
    if (b.finish < b.start) b.finish = b.start;
    b.activity = n.activity;
    b.resources = n.resources;
    if (first) {
      h0 = b.start;
      h1 = b.finish;
      first = false;
    } else {
      h0 = std::min(h0, b.start);
      h1 = std::max(h1, b.finish);
    }
    booked.push_back(std::move(b));
  }
  if (first) return util::invalid("utilization: plan has no activities");
  if (h1 <= h0) h1 = h0 + 1;

  UtilizationReport report;
  report.horizon_start = cal::WorkInstant(h0);
  report.horizon_finish = cal::WorkInstant(h1);

  for (const auto& res : db.resources()) {
    ResourceUtilization ru;
    ru.resource = res.id;
    ru.name = res.name;
    ru.capacity = res.capacity;

    std::vector<std::pair<std::int64_t, std::int64_t>> spans;
    for (const auto& b : booked) {
      for (util::ResourceId r : b.resources) {
        if (r != res.id) continue;
        ru.intervals.push_back(BusyInterval{cal::WorkInstant(b.start),
                                            cal::WorkInstant(b.finish), b.activity});
        ru.load += cal::WorkDuration::minutes(b.finish - b.start);
        spans.emplace_back(b.start, b.finish);
      }
    }
    ru.busy = union_length(spans);
    ru.utilization = static_cast<double>(ru.busy.count_minutes()) /
                     static_cast<double>(h1 - h0);

    // Sweep for concurrency and overallocation windows.
    std::vector<std::pair<std::int64_t, int>> events;
    for (auto [s, e] : spans) {
      events.emplace_back(s, +1);
      events.emplace_back(e, -1);
    }
    std::sort(events.begin(), events.end());
    int depth = 0;
    std::int64_t over_since = 0;
    for (auto [t, d] : events) {
      int before = depth;
      depth += d;
      ru.peak_concurrency = std::max(ru.peak_concurrency, depth);
      if (before <= ru.capacity && depth > ru.capacity) over_since = t;
      if (before > ru.capacity && depth <= ru.capacity) {
        ru.overallocations.push_back(BusyInterval{cal::WorkInstant(over_since),
                                                  cal::WorkInstant(t), "overbooked"});
      }
    }
    report.resources.push_back(std::move(ru));
  }
  return report;
}

std::string UtilizationReport::render(const cal::WorkCalendar& calendar) const {
  using util::pad_right;
  std::string out = "Resource utilization  [" +
                    calendar.format_date(horizon_start) + " .. " +
                    calendar.format_date(horizon_finish) + "]\n";
  out += pad_right("resource", 16) + pad_right("cap", 5) + pad_right("load", 10) +
         pad_right("busy", 10) + pad_right("util", 7) + pad_right("peak", 6) +
         "profile\n";
  out += util::repeat('-', 84) + "\n";
  const std::int64_t mpd = calendar.minutes_per_day();
  for (const auto& r : resources) {
    out += pad_right(r.name, 16);
    out += pad_right(std::to_string(r.capacity), 5);
    out += pad_right(r.load.str(mpd), 10);
    out += pad_right(r.busy.str(mpd), 10);
    out += pad_right(util::format_double(100 * r.utilization, 0) + "%", 7);
    out += pad_right(std::to_string(r.peak_concurrency), 6);
    // 30-column busy bar across the horizon.
    std::string bar(30, '.');
    std::int64_t h0 = horizon_start.minutes_since_epoch();
    std::int64_t h1 = horizon_finish.minutes_since_epoch();
    for (const auto& iv : r.intervals) {
      auto col = [&](std::int64_t t) {
        return std::clamp<std::int64_t>((t - h0) * 30 / (h1 - h0), 0, 29);
      };
      for (std::int64_t c = col(iv.start.minutes_since_epoch());
           c <= col(iv.finish.minutes_since_epoch() - 1); ++c)
        bar[static_cast<std::size_t>(c)] = bar[static_cast<std::size_t>(c)] == '#'
                                               ? 'X'  // overlap
                                               : '#';
    }
    out += "|" + bar + "|";
    if (!r.overallocations.empty())
      out += "  OVERBOOKED x" + std::to_string(r.overallocations.size());
    out += "\n";
  }
  return out;
}

}  // namespace herc::track
