#pragma once
// Design-status examination: comparing actual execution against the plan.
//
// "At any point in the design process, it is desirable to be able to compare
//  the status of the execution of a task with the schedule plan." — Sec. IV.B
//
// This module computes the per-activity status rows that both the Gantt
// renderer and the status queries consume, plus project-level summary
// metrics.  Variances follow project-management convention: positive
// variance = late/over.  Earned-value metrics (BCWS/BCWP, SPI) are the
// natural quantitative extension of "tracking the performance of a design
// flow against a schedule" and are computed in work-minutes of planned
// effort.

#include <optional>
#include <string>
#include <vector>

#include "core/schedule_space.hpp"
#include "metadata/database.hpp"

namespace herc::track {

enum class ActivityState { kNotStarted, kInProgress, kComplete };

[[nodiscard]] const char* activity_state_name(ActivityState s);

/// One row of a status report: an activity of the tracked plan.
struct ActivityStatus {
  std::string activity;
  sched::ScheduleNodeId node;
  ActivityState state = ActivityState::kNotStarted;
  bool critical = false;

  cal::WorkInstant baseline_start;
  cal::WorkInstant baseline_finish;
  cal::WorkInstant planned_start;   ///< current projection
  cal::WorkInstant planned_finish;
  std::optional<cal::WorkInstant> actual_start;
  std::optional<cal::WorkInstant> actual_finish;

  cal::WorkDuration est_duration;
  cal::WorkDuration total_slack;

  /// (actual or projected finish) - baseline finish; positive = slipping.
  cal::WorkDuration finish_variance;
  /// Iterations so far (number of runs of the activity).
  int runs = 0;
};

/// Project-level roll-up.
struct ProjectStatus {
  std::string plan_name;
  int total_activities = 0;
  int completed = 0;
  int in_progress = 0;
  int not_started = 0;

  cal::WorkInstant baseline_finish;   ///< baseline project completion
  cal::WorkInstant projected_finish;  ///< current projection
  cal::WorkDuration schedule_variance;  ///< projected - baseline; + = late
  /// Committed deadline and the margin against it (deadline - projected;
  /// negative = projected to miss), when the plan carries one.
  std::optional<cal::WorkInstant> deadline;
  std::optional<cal::WorkDuration> deadline_margin;

  // Earned value, in planned work-minutes:
  double bcws = 0;  ///< budgeted cost of work scheduled (by `as_of`)
  double bcwp = 0;  ///< budgeted cost of work performed (earned)
  double spi = 1.0; ///< schedule performance index = BCWP / BCWS
};

/// Per-activity status of a plan as of `as_of`.
[[nodiscard]] std::vector<ActivityStatus> activity_status(
    const sched::ScheduleSpace& space, const meta::Database& db,
    sched::ScheduleRunId plan, cal::WorkInstant as_of);

/// Project roll-up as of `as_of`.
[[nodiscard]] ProjectStatus project_status(const sched::ScheduleSpace& space,
                                           const meta::Database& db,
                                           sched::ScheduleRunId plan,
                                           cal::WorkInstant as_of);

/// Tabular text report (activity rows + roll-up) as the paper's status
/// queries would display it.
[[nodiscard]] std::string render_status_report(const sched::ScheduleSpace& space,
                                               const meta::Database& db,
                                               const cal::WorkCalendar& calendar,
                                               sched::ScheduleRunId plan,
                                               cal::WorkInstant as_of);

}  // namespace herc::track
