#pragma once
// Resource utilization analysis over a plan.
//
// The paper lists resource optimization among the benefits of integrated
// schedule data ("optimize the resources associated with future projects").
// This report answers the manager's resource questions for one plan: how
// loaded is each person/machine across the plan horizon, when, and is
// anything booked beyond its capacity (possible when a plan was computed
// without leveling).

#include <string>
#include <vector>

#include "core/schedule_space.hpp"
#include "metadata/database.hpp"

namespace herc::track {

/// A half-open busy interval of one resource.
struct BusyInterval {
  cal::WorkInstant start;
  cal::WorkInstant finish;
  std::string activity;
};

struct ResourceUtilization {
  util::ResourceId resource;
  std::string name;
  int capacity = 1;
  std::vector<BusyInterval> intervals;    ///< in plan order
  cal::WorkDuration load;                 ///< sum of interval lengths
  cal::WorkDuration busy;                 ///< length of the union of intervals
  double utilization = 0;                 ///< busy / plan horizon
  int peak_concurrency = 0;               ///< max simultaneous bookings
  /// Intervals where concurrent bookings exceed capacity.
  std::vector<BusyInterval> overallocations;
};

struct UtilizationReport {
  cal::WorkInstant horizon_start;
  cal::WorkInstant horizon_finish;
  std::vector<ResourceUtilization> resources;  ///< registry order

  [[nodiscard]] bool has_overallocation() const {
    for (const auto& r : resources)
      if (!r.overallocations.empty()) return true;
    return false;
  }

  /// Text table plus a per-resource load bar.
  [[nodiscard]] std::string render(const cal::WorkCalendar& calendar) const;
};

/// Computes utilization of every registered resource against one plan.
/// Activities use their actual dates when known, otherwise their projection;
/// deleted schedule nodes are ignored.  kInvalid if the plan is empty.
[[nodiscard]] util::Result<UtilizationReport> utilization(
    const sched::ScheduleSpace& space, const meta::Database& db,
    sched::ScheduleRunId plan);

}  // namespace herc::track
