#include "schema/schema.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"
#include "util/topo.hpp"

namespace herc::schema {

const char* entity_kind_name(EntityKind k) {
  return k == EntityKind::kData ? "data" : "tool";
}

util::Result<EntityTypeId> TaskSchema::add_type(const std::string& name,
                                                EntityKind kind) {
  if (!util::is_identifier(name))
    return util::invalid("type name must be an identifier: '" + name + "'");
  if (type_by_name_.count(name))
    return util::conflict("duplicate entity type '" + name + "'");
  EntityTypeId id{types_.size() + 1};
  types_.push_back(EntityType{id, name, kind});
  type_by_name_[name] = id;
  return id;
}

util::Result<RuleId> TaskSchema::add_rule(const std::string& activity,
                                          const std::string& output_type,
                                          const std::string& tool_type,
                                          const std::vector<std::string>& input_types,
                                          const std::string& default_estimate) {
  if (!util::is_identifier(activity))
    return util::invalid("activity name must be an identifier: '" + activity + "'");
  if (rule_by_activity_.count(activity))
    return util::conflict("duplicate activity '" + activity + "'");

  auto resolve = [this](const std::string& n, EntityKind want,
                        const char* role) -> util::Result<EntityTypeId> {
    auto id = find_type(n);
    if (!id) return util::not_found(std::string(role) + " type '" + n + "' not declared");
    if (type(*id).kind != want)
      return util::invalid(std::string(role) + " '" + n + "' is a " +
                           entity_kind_name(type(*id).kind) + " type, expected " +
                           entity_kind_name(want));
    return *id;
  };

  auto out = resolve(output_type, EntityKind::kData, "output");
  if (!out.ok()) return out.error();
  auto tool = resolve(tool_type, EntityKind::kTool, "tool");
  if (!tool.ok()) return tool.error();

  ConstructionRule r;
  r.activity = activity;
  r.output = out.value();
  r.tool = tool.value();
  r.default_estimate = default_estimate;
  for (const auto& in : input_types) {
    auto i = resolve(in, EntityKind::kData, "input");
    if (!i.ok()) return i.error();
    r.inputs.push_back(i.value());
  }

  if (producer_.count(r.output))
    return util::conflict("data type '" + output_type +
                          "' already has a producing rule (activity '" +
                          rule(producer_.at(r.output)).activity + "')");

  r.id = RuleId{rules_.size() + 1};
  producer_[r.output] = r.id;
  rule_by_activity_[activity] = r.id;
  rules_.push_back(std::move(r));
  return rules_.back().id;
}

std::optional<EntityTypeId> TaskSchema::find_type(const std::string& name) const {
  auto it = type_by_name_.find(name);
  if (it == type_by_name_.end()) return std::nullopt;
  return it->second;
}

const EntityType& TaskSchema::type(EntityTypeId id) const {
  if (!id.valid() || id.value() > types_.size())
    throw std::out_of_range("TaskSchema::type: unknown id " + id.str());
  return types_[id.value() - 1];
}

std::optional<RuleId> TaskSchema::find_rule_by_activity(const std::string& a) const {
  auto it = rule_by_activity_.find(a);
  if (it == rule_by_activity_.end()) return std::nullopt;
  return it->second;
}

const ConstructionRule& TaskSchema::rule(RuleId id) const {
  if (!id.valid() || id.value() > rules_.size())
    throw std::out_of_range("TaskSchema::rule: unknown id " + id.str());
  return rules_[id.value() - 1];
}

std::optional<RuleId> TaskSchema::producer_of(EntityTypeId data_type) const {
  auto it = producer_.find(data_type);
  if (it == producer_.end()) return std::nullopt;
  return it->second;
}

std::vector<EntityTypeId> TaskSchema::primary_inputs() const {
  std::vector<EntityTypeId> out;
  for (const auto& t : types_)
    if (t.kind == EntityKind::kData && !producer_.count(t.id)) out.push_back(t.id);
  return out;
}

std::vector<EntityTypeId> TaskSchema::primary_outputs() const {
  std::vector<bool> consumed(types_.size() + 1, false);
  for (const auto& r : rules_)
    for (EntityTypeId in : r.inputs) consumed[in.value()] = true;
  std::vector<EntityTypeId> out;
  for (const auto& t : types_)
    if (t.kind == EntityKind::kData && producer_.count(t.id) && !consumed[t.id.value()])
      out.push_back(t.id);
  return out;
}

util::Status TaskSchema::validate() const {
  // Rule graph: edge from the producer of an input type to the consumer rule.
  util::Digraph g(rules_.size());
  for (const auto& r : rules_) {
    for (EntityTypeId in : r.inputs) {
      auto prod = producer_of(in);
      if (prod) g.add_edge(prod->value() - 1, r.id.value() - 1);
    }
  }
  if (!util::topo_sort(g)) {
    auto cycle = util::find_cycle(g);
    std::vector<std::string> names;
    names.reserve(cycle.size());
    for (std::size_t v : cycle) names.push_back(rules_[v].activity);
    return util::invalid("construction rules form a cycle: " +
                         util::join(names, " -> "));
  }
  return util::Status::ok_status();
}

std::string TaskSchema::to_dsl() const {
  std::string out = "schema " + name_ + " {\n";
  for (const auto& t : types_)
    out += std::string("  ") + entity_kind_name(t.kind) + " " + t.name + ";\n";
  for (const auto& r : rules_) {
    out += "  rule " + r.activity + ": " + type(r.output).name + " <- " +
           type(r.tool).name + "(";
    for (std::size_t i = 0; i < r.inputs.size(); ++i) {
      if (i) out += ", ";
      out += type(r.inputs[i]).name;
    }
    out += ")";
    if (!r.default_estimate.empty()) out += " [est " + r.default_estimate + "]";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

std::vector<std::string> TaskSchema::lint() const {
  std::vector<std::string> warnings;

  std::vector<bool> tool_used(types_.size() + 1, false);
  std::vector<bool> data_touched(types_.size() + 1, false);
  for (const auto& r : rules_) {
    tool_used[r.tool.value()] = true;
    data_touched[r.output.value()] = true;
    for (EntityTypeId in : r.inputs) data_touched[in.value()] = true;
  }
  for (const auto& t : types_) {
    if (t.kind == EntityKind::kTool && !tool_used[t.id.value()])
      warnings.push_back("tool type '" + t.name + "' is used by no rule");
    if (t.kind == EntityKind::kData && !data_touched[t.id.value()])
      warnings.push_back("data type '" + t.name +
                         "' is neither produced nor consumed");
  }
  auto outputs = primary_outputs();
  if (outputs.size() > 1) {
    std::string names;
    for (EntityTypeId id : outputs) names += (names.empty() ? "" : ", ") + type(id).name;
    warnings.push_back("schema has " + std::to_string(outputs.size()) +
                       " primary outputs (" + names +
                       "); flows usually converge on one");
  }
  return warnings;
}

std::string TaskSchema::describe() const {
  std::string out = "Task schema '" + name_ + "'\n";
  out += "  data types:";
  for (const auto& t : types_)
    if (t.kind == EntityKind::kData) out += " " + t.name;
  out += "\n  tool types:";
  for (const auto& t : types_)
    if (t.kind == EntityKind::kTool) out += " " + t.name;
  out += "\n  construction rules:\n";
  for (const auto& r : rules_) {
    out += "    [" + r.activity + "] " + type(r.output).name + " <- " +
           type(r.tool).name + "(";
    for (std::size_t i = 0; i < r.inputs.size(); ++i) {
      if (i) out += ", ";
      out += type(r.inputs[i]).name;
    }
    out += ")\n";
  }
  out += "  primary inputs:";
  for (EntityTypeId id : primary_inputs()) out += " " + type(id).name;
  out += "\n  primary outputs:";
  for (EntityTypeId id : primary_outputs()) out += " " + type(id).name;
  out += "\n";
  return out;
}

}  // namespace herc::schema
