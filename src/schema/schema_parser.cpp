// Parser for the task-schema DSL (see schema.hpp for the grammar sketch).
//
// Grammar:
//   schema     := "schema" IDENT "{" decl* "}"
//   decl       := ("data" | "tool") IDENT ("," IDENT)* ";"
//              |  "rule" IDENT ":" IDENT "<-" IDENT "(" [IDENT ("," IDENT)*] ")" ";"
// Comments: '#' or '//' to end of line.

#include <cctype>
#include <string>
#include <vector>

#include "schema/schema.hpp"
#include "util/strings.hpp"

namespace herc::schema {

namespace {

struct Token {
  enum class Kind { kIdent, kPunct, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  int line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  util::Result<std::vector<Token>> run() {
    std::vector<Token> out;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == '#' || (c == '/' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '/')) {
        while (pos_ < s_.size() && s_[pos_] != '\n') ++pos_;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_'))
          ++pos_;
        out.push_back({Token::Kind::kIdent, std::string(s_.substr(start, pos_ - start)),
                       line_});
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        // Duration tokens inside [est ...], e.g. "2d", "90m".
        std::size_t start = pos_;
        while (pos_ < s_.size() &&
               std::isalnum(static_cast<unsigned char>(s_[pos_])))
          ++pos_;
        out.push_back({Token::Kind::kIdent, std::string(s_.substr(start, pos_ - start)),
                       line_});
      } else if (c == '<' && pos_ + 1 < s_.size() && s_[pos_ + 1] == '-') {
        out.push_back({Token::Kind::kPunct, "<-", line_});
        pos_ += 2;
      } else if (c == '{' || c == '}' || c == '(' || c == ')' || c == ';' || c == ':' ||
                 c == ',' || c == '[' || c == ']') {
        out.push_back({Token::Kind::kPunct, std::string(1, c), line_});
        ++pos_;
      } else {
        return util::parse_error("schema line " + std::to_string(line_) +
                                 ": unexpected character '" + std::string(1, c) + "'");
      }
    }
    out.push_back({Token::Kind::kEnd, "", line_});
    return out;
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

class SchemaParser {
 public:
  explicit SchemaParser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  util::Result<TaskSchema> run() {
    if (!eat_ident("schema")) return err("expected 'schema'");
    const Token& name = peek();
    if (name.kind != Token::Kind::kIdent) return err("expected schema name");
    ++pos_;
    TaskSchema schema(name.text);
    if (!eat_punct("{")) return err("expected '{'");
    while (!at_punct("}")) {
      if (peek().kind == Token::Kind::kEnd) return err("unterminated schema block");
      auto st = decl(schema);
      if (!st.ok()) return st.error();
    }
    eat_punct("}");
    if (peek().kind != Token::Kind::kEnd) return err("trailing tokens after schema");
    auto valid = schema.validate();
    if (!valid.ok()) return valid.error();
    return schema;
  }

 private:
  util::Error err(const std::string& msg) const {
    return util::parse_error("schema line " + std::to_string(peek().line) + ": " + msg +
                             " (got '" + peek().text + "')");
  }

  const Token& peek() const { return toks_[pos_]; }

  bool at_punct(std::string_view p) const {
    return peek().kind == Token::Kind::kPunct && peek().text == p;
  }

  bool eat_punct(std::string_view p) {
    if (at_punct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_ident(std::string_view word) {
    if (peek().kind == Token::Kind::kIdent && peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }

  util::Result<std::string> ident(const char* what) {
    if (peek().kind != Token::Kind::kIdent)
      return err(std::string("expected ") + what);
    return toks_[pos_++].text;
  }

  util::Status decl(TaskSchema& schema) {
    if (eat_ident("data")) return type_decl(schema, EntityKind::kData);
    if (eat_ident("tool")) return type_decl(schema, EntityKind::kTool);
    if (eat_ident("rule")) return rule_decl(schema);
    return err("expected 'data', 'tool' or 'rule'");
  }

  util::Status type_decl(TaskSchema& schema, EntityKind kind) {
    while (true) {
      auto name = ident("type name");
      if (!name.ok()) return name.error();
      auto added = schema.add_type(name.value(), kind);
      if (!added.ok()) return added.error();
      if (eat_punct(",")) continue;
      if (eat_punct(";")) return util::Status::ok_status();
      return err("expected ',' or ';' in type declaration");
    }
  }

  util::Status rule_decl(TaskSchema& schema) {
    auto activity = ident("activity name");
    if (!activity.ok()) return activity.error();
    if (!eat_punct(":")) return err("expected ':' after activity name");
    auto output = ident("output type");
    if (!output.ok()) return output.error();
    if (!eat_punct("<-")) return err("expected '<-'");
    auto tool = ident("tool type");
    if (!tool.ok()) return tool.error();
    if (!eat_punct("(")) return err("expected '('");
    std::vector<std::string> inputs;
    if (!at_punct(")")) {
      while (true) {
        auto in = ident("input type");
        if (!in.ok()) return in.error();
        inputs.push_back(in.value());
        if (eat_punct(",")) continue;
        break;
      }
    }
    if (!eat_punct(")")) return err("expected ')'");
    // Optional attribute block: [est <duration tokens>].
    std::string estimate;
    if (eat_punct("[")) {
      if (!eat_ident("est")) return err("expected 'est' in rule attribute block");
      while (!at_punct("]")) {
        if (peek().kind != Token::Kind::kIdent)
          return err("expected duration token in [est ...]");
        if (!estimate.empty()) estimate += " ";
        estimate += toks_[pos_++].text;
      }
      eat_punct("]");
      if (estimate.empty()) return err("[est] needs a duration");
    }
    if (!eat_punct(";")) return err("expected ';' after rule");
    auto added = schema.add_rule(activity.value(), output.value(), tool.value(), inputs,
                                 estimate);
    if (!added.ok()) return added.error();
    return util::Status::ok_status();
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

util::Result<TaskSchema> parse_schema(std::string_view text) {
  auto toks = Lexer(text).run();
  if (!toks.ok()) return toks.error();
  return SchemaParser(std::move(toks).take()).run();
}

}  // namespace herc::schema
