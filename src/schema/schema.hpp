#pragma once
// Level 1 of the four-level architecture: the task schema.
//
// Following Hercules (Sutton/Brockman/Director, DAC'93), a task schema is a
// set of entity types (data classes and tool classes) plus construction
// rules of the form
//
//     d_i <- f(d_1, ..., d_n)
//
// stating that an instance of data type d_i is created by applying a tool of
// type f to instances of data types d_1..d_n.  Each rule names an *activity*
// ("Create", "Simulate", ...), which is the unit both flow execution and
// schedule planning operate on.
//
// Restriction (documented): each data type has at most one producing rule,
// which makes task-tree extraction deterministic.  Alternatives can still be
// modelled as distinct data types.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/result.hpp"

namespace herc::schema {

using util::EntityTypeId;
using util::RuleId;

enum class EntityKind { kData, kTool };

[[nodiscard]] const char* entity_kind_name(EntityKind k);

/// A Level-1 entity type: a class of data objects or of tools.
struct EntityType {
  EntityTypeId id;
  std::string name;
  EntityKind kind = EntityKind::kData;
};

/// A construction rule `output <- tool(inputs...)`, named by its activity.
struct ConstructionRule {
  RuleId id;
  std::string activity;               ///< e.g. "Simulate"
  EntityTypeId output;                ///< data type produced
  EntityTypeId tool;                  ///< tool type applied
  std::vector<EntityTypeId> inputs;   ///< data types consumed (may be empty)
  /// Optional designer default estimate from the DSL attribute
  /// `[est <duration>]`, kept as written ("2d 4h"); empty if absent.  The
  /// schema layer has no calendar, so the workflow manager parses it when it
  /// seeds the duration estimator.
  std::string default_estimate;
};

/// The task schema: types + rules, with name-based lookup and validation.
class TaskSchema {
 public:
  explicit TaskSchema(std::string name = "schema") : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Registers a type; fails on duplicate names (across both kinds).
  util::Result<EntityTypeId> add_type(const std::string& name, EntityKind kind);

  /// Registers a rule; validates kinds, duplicate activity names, and the
  /// one-producer restriction.  `default_estimate` is the optional raw
  /// duration text from the DSL (not interpreted here).
  util::Result<RuleId> add_rule(const std::string& activity,
                                const std::string& output_type,
                                const std::string& tool_type,
                                const std::vector<std::string>& input_types,
                                const std::string& default_estimate = {});

  // --- lookups -----------------------------------------------------------
  [[nodiscard]] std::optional<EntityTypeId> find_type(const std::string& name) const;
  [[nodiscard]] const EntityType& type(EntityTypeId id) const;
  [[nodiscard]] std::optional<RuleId> find_rule_by_activity(const std::string& a) const;
  [[nodiscard]] const ConstructionRule& rule(RuleId id) const;
  /// Rule producing a data type, if any.
  [[nodiscard]] std::optional<RuleId> producer_of(EntityTypeId data_type) const;

  [[nodiscard]] const std::vector<EntityType>& types() const { return types_; }
  [[nodiscard]] const std::vector<ConstructionRule>& rules() const { return rules_; }

  /// Data types with no producing rule — the primary inputs of the process.
  [[nodiscard]] std::vector<EntityTypeId> primary_inputs() const;

  /// Data types no rule consumes — the primary outputs of the process.
  [[nodiscard]] std::vector<EntityTypeId> primary_outputs() const;

  /// Full semantic validation: every referenced type exists with the right
  /// kind (enforced on insertion) and the rule graph is acyclic.  Returns the
  /// activities on a cycle in the error message if not.
  [[nodiscard]] util::Status validate() const;

  /// Re-emits the schema in the DSL accepted by parse_schema(); parsing the
  /// result reproduces an equivalent schema (round-trip tested).
  [[nodiscard]] std::string to_dsl() const;

  /// Multi-line human dump of the type/rule graph (Fig. 4 reproduction).
  [[nodiscard]] std::string describe() const;

  /// Non-fatal schema smells: tool types no rule uses, data types that are
  /// neither produced nor consumed, and multiple primary outputs (often an
  /// unfinished flow).  Valid schemas may still have warnings.
  [[nodiscard]] std::vector<std::string> lint() const;

 private:
  std::string name_;
  std::vector<EntityType> types_;             // index = id - 1
  std::vector<ConstructionRule> rules_;       // index = id - 1
  std::unordered_map<std::string, EntityTypeId> type_by_name_;
  std::unordered_map<std::string, RuleId> rule_by_activity_;
  std::unordered_map<EntityTypeId, RuleId> producer_;
};

/// Parses the schema DSL:
///
///   schema circuit {
///     data netlist; data stimuli; data performance;
///     tool netlist_editor; tool simulator;
///     rule Create:   netlist     <- netlist_editor();
///     rule Simulate: performance <- simulator(netlist, stimuli);
///   }
///
/// '#' and '//' start line comments.  Validation runs after parsing.
[[nodiscard]] util::Result<TaskSchema> parse_schema(std::string_view text);

}  // namespace herc::schema
