#include "gen/gen.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace herc::gen {

// --- flow graphs -------------------------------------------------------------

std::vector<std::string> FlowGraph::primary_inputs() const {
  std::unordered_set<std::string> produced;
  for (const auto& r : rules) produced.insert(r.output);
  std::vector<std::string> leaves;
  for (const auto& d : data_types)
    if (!produced.count(d)) leaves.push_back(d);
  return leaves;
}

std::string render_schema(const FlowGraph& graph) {
  std::string dsl = "schema " + graph.schema_name + " {\n  data";
  for (std::size_t i = 0; i < graph.data_types.size(); ++i)
    dsl += (i ? ", " : " ") + graph.data_types[i];
  dsl += ";\n  tool t;\n";
  for (const auto& r : graph.rules) {
    dsl += "  rule " + r.name + ": " + r.output + " <- t(";
    for (std::size_t i = 0; i < r.inputs.size(); ++i)
      dsl += (i ? ", " : "") + r.inputs[i];
    dsl += ");\n";
  }
  dsl += "}\n";
  return dsl;
}

// --- shapes ------------------------------------------------------------------

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kChain: return "chain";
    case Shape::kFanin: return "fanin";
    case Shape::kLayered: return "layered";
    case Shape::kRandom: return "random";
  }
  return "random";
}

util::Result<Shape> parse_shape(const std::string& name) {
  if (name == "chain") return Shape::kChain;
  if (name == "fanin") return Shape::kFanin;
  if (name == "layered") return Shape::kLayered;
  if (name == "random") return Shape::kRandom;
  return util::parse_error("unknown shape '" + name + "'");
}

const char* exec_mode_name(ExecMode m) {
  return m == ExecMode::kConcurrent ? "concurrent" : "serial";
}

const char* duration_dist_name(DurationDist d) {
  switch (d) {
    case DurationDist::kUniform: return "uniform";
    case DurationDist::kLognormal: return "lognormal";
    case DurationDist::kPareto: return "pareto";
  }
  return "uniform";
}

util::Result<DurationDist> parse_duration_dist(const std::string& name) {
  if (name == "uniform") return DurationDist::kUniform;
  if (name == "lognormal") return DurationDist::kLognormal;
  if (name == "pareto") return DurationDist::kPareto;
  return util::parse_error("unknown duration distribution '" + name + "'");
}

namespace {

const char* policy_name(exec::FailurePolicy p) {
  switch (p) {
    case exec::FailurePolicy::kAbort: return "abort";
    case exec::FailurePolicy::kRetryThenAbort: return "retry_then_abort";
    case exec::FailurePolicy::kContinueIndependent: return "continue_independent";
  }
  return "abort";
}

util::Result<exec::FailurePolicy> parse_policy(const std::string& name) {
  if (name == "abort") return exec::FailurePolicy::kAbort;
  if (name == "retry_then_abort") return exec::FailurePolicy::kRetryThenAbort;
  if (name == "continue_independent") return exec::FailurePolicy::kContinueIndependent;
  return util::parse_error("unknown failure policy '" + name + "'");
}

util::Result<ExecMode> parse_exec_mode(const std::string& name) {
  if (name == "serial") return ExecMode::kSerial;
  if (name == "concurrent") return ExecMode::kConcurrent;
  return util::parse_error("unknown exec mode '" + name + "'");
}

}  // namespace

// --- legacy workload shapes --------------------------------------------------

FlowGraph chain_graph(std::size_t n) {
  FlowGraph g;
  g.schema_name = "chain";
  for (std::size_t i = 0; i <= n; ++i) g.data_types.push_back("d" + std::to_string(i));
  for (std::size_t i = 1; i <= n; ++i)
    g.rules.push_back({.name = "A" + std::to_string(i),
                       .output = "d" + std::to_string(i),
                       .inputs = {"d" + std::to_string(i - 1)}});
  g.target = "d" + std::to_string(n);
  return g;
}

std::string chain_schema(std::size_t n) { return render_schema(chain_graph(n)); }

FlowGraph fanin_graph(std::size_t width) {
  FlowGraph g;
  g.schema_name = "fanin";
  g.data_types.push_back("out");
  for (std::size_t i = 0; i < width; ++i)
    g.data_types.push_back("s" + std::to_string(i));
  GenRule merge{.name = "Merge", .output = "out", .inputs = {}};
  for (std::size_t i = 0; i < width; ++i) {
    g.rules.push_back({.name = "Make" + std::to_string(i),
                       .output = "s" + std::to_string(i),
                       .inputs = {}});
    merge.inputs.push_back("s" + std::to_string(i));
  }
  g.rules.push_back(std::move(merge));
  g.target = "out";
  return g;
}

std::string fanin_schema(std::size_t width) { return render_schema(fanin_graph(width)); }

FlowGraph layered_graph(std::size_t layers, std::size_t width) {
  auto d = [](std::size_t l, std::size_t w) {
    return "d" + std::to_string(l) + "_" + std::to_string(w);
  };
  FlowGraph g;
  g.schema_name = "layered";
  g.data_types.push_back("root");
  for (std::size_t l = 0; l <= layers; ++l)
    for (std::size_t w = 0; w < width; ++w) g.data_types.push_back(d(l, w));
  for (std::size_t l = 1; l <= layers; ++l)
    for (std::size_t w = 0; w < width; ++w)
      g.rules.push_back({.name = "A" + std::to_string(l) + "_" + std::to_string(w),
                         .output = d(l, w),
                         .inputs = {d(l - 1, w), d(l - 1, (w + 1) % width)}});
  GenRule join{.name = "Join", .output = "root", .inputs = {}};
  for (std::size_t w = 0; w < width; ++w) join.inputs.push_back(d(layers, w));
  g.rules.push_back(std::move(join));
  g.target = "root";
  return g;
}

std::string layered_schema(std::size_t layers, std::size_t width) {
  return render_schema(layered_graph(layers, width));
}

FlowGraph random_graph(util::Rng& rng, std::size_t inputs, std::size_t rules) {
  FlowGraph g;
  g.schema_name = "random";
  std::size_t total = inputs + rules;
  for (std::size_t i = 0; i < total; ++i) g.data_types.push_back("d" + std::to_string(i));
  for (std::size_t r = 0; r < rules; ++r) {
    std::size_t out = inputs + r;
    std::set<std::size_t> chosen;
    // At most `out` distinct earlier types exist; never demand more.  Always
    // consume the immediately previous type so the last rule's output
    // transitively covers everything, then add random extras.  (This draw
    // sequence is the seed property tests' random_schema, verbatim — the
    // historical seeds keep generating the historical flows.)
    auto n_inputs =
        std::min<std::size_t>(static_cast<std::size_t>(rng.uniform_int(1, 3)), out);
    chosen.insert(out - 1);
    while (chosen.size() < n_inputs)
      chosen.insert(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(out) - 1)));
    GenRule rule{.name = "A" + std::to_string(r), .output = "d" + std::to_string(out)};
    for (std::size_t in : chosen) rule.inputs.push_back("d" + std::to_string(in));
    g.rules.push_back(std::move(rule));
  }
  g.target = "d" + std::to_string(total - 1);
  return g;
}

std::unique_ptr<hercules::WorkflowManager> make_bound_manager(const std::string& dsl,
                                                              const std::string& target,
                                                              cal::WorkDuration tool_time) {
  auto m = hercules::WorkflowManager::create(dsl, {}, /*tool_seed=*/1).take();
  m->register_tool({.instance_name = "t1", .tool_type = "t", .nominal = tool_time})
      .expect("gen tool");
  m->extract_task("job", target).expect("gen extract");
  // Bind the leaves actually present in the extracted tree: a random rule
  // set may leave some declared primary inputs unreachable from the target.
  auto& tree = *m->task("job").value();
  for (auto leaf : tree.leaves()) {
    const auto& node = tree.node(leaf);
    std::string instance = node.kind == flow::NodeKind::kToolLeaf
                               ? "t1"
                               : m->schema().type(node.type).name + ".in";
    tree.bind(leaf, instance).expect("gen bind");
  }
  m->estimator().set_fallback(cal::WorkDuration::hours(4));
  return m;
}

std::vector<sched::CpmActivity> random_cpm_network(std::size_t n, double edge_p,
                                                   std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<sched::CpmActivity> acts(n);
  for (std::size_t i = 0; i < n; ++i) {
    acts[i].duration = rng.uniform_int(10, 480);
    // Bound preds per activity so density stays realistic at large n.
    for (std::size_t tries = 0; tries < 4 && i > 0; ++tries)
      if (rng.chance(edge_p))
        acts[i].preds.push_back(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i) - 1)));
  }
  return acts;
}

std::vector<sched::CpmActivity> random_cpm_dag(util::Rng& rng, std::size_t n,
                                               double edge_p) {
  std::vector<sched::CpmActivity> acts(n);
  for (std::size_t i = 0; i < n; ++i) {
    acts[i].duration = rng.uniform_int(0, 500);
    if (rng.chance(0.2)) acts[i].release = rng.uniform_int(0, 300);
    for (std::size_t j = 0; j < i; ++j)
      if (rng.chance(edge_p)) acts[i].preds.push_back(j);
  }
  return acts;
}

std::vector<sched::CpmActivity> chain_cpm_network(std::size_t n) {
  std::vector<sched::CpmActivity> acts(n);
  for (std::size_t i = 0; i < n; ++i) {
    acts[i].duration = 60;
    if (i > 0) acts[i].preds.push_back(i - 1);
  }
  return acts;
}

void stream_mega_cpm(const MegaGraphSpec& spec, const MegaCpmSink& sink) {
  const std::size_t n = spec.activities;
  const std::size_t width = std::max<std::size_t>(1, spec.width);
  const std::size_t max_preds = std::min<std::size_t>(spec.max_preds, 16);
  // A fresh Rng per call keeps the stream pure: compile_stream invokes it
  // twice (count pass + fill pass) and must see identical output.
  util::Rng rng(spec.seed);
  std::uint32_t preds[18];
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t duration = rng.uniform_int(spec.minutes_lo, spec.minutes_hi);
    std::int64_t release = 0;
    if (spec.release_p > 0 && rng.chance(spec.release_p))
      release = rng.uniform_int(0, spec.release_hi);
    std::size_t n_preds = 0;
    if (spec.shape == Shape::kRandom) {
      for (std::size_t tries = 0; tries < max_preds && i > 0; ++tries)
        if (rng.chance(spec.edge_p))
          preds[n_preds++] = static_cast<std::uint32_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    } else {
      // Layered: level l = i / width depends on two slots of level l - 1,
      // which is always a full level, so every pred index is < i.
      const std::size_t level = i / width;
      const std::size_t slot = i % width;
      if (level > 0) {
        const std::size_t base = (level - 1) * width;
        preds[n_preds++] = static_cast<std::uint32_t>(base + slot);
        const std::size_t wrap = base + (slot + 1) % width;
        if (wrap != base + slot) preds[n_preds++] = static_cast<std::uint32_t>(wrap);
      }
    }
    sink(duration, release, preds, n_preds);
  }
}

std::vector<sched::CpmActivity> mega_cpm_network(const MegaGraphSpec& spec) {
  std::vector<sched::CpmActivity> acts;
  acts.reserve(spec.activities);
  stream_mega_cpm(spec, [&](std::int64_t duration, std::int64_t release,
                            const std::uint32_t* preds, std::size_t n_preds) {
    sched::CpmActivity a;
    a.duration = duration;
    a.release = release;
    a.preds.assign(preds, preds + n_preds);
    acts.push_back(std::move(a));
  });
  return acts;
}

// --- generation --------------------------------------------------------------

namespace {

template <typename T>
T clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// One estimate draw.  kUniform reproduces the historical draw sequence
/// exactly (one uniform_int per rule); the heavy-tailed families consume
/// their own draws, so a spec with kUniform stays byte-stable forever.
std::int64_t draw_est_minutes(util::Rng& rng, const ScenarioSpec& spec) {
  const std::int64_t cap = spec.est_minutes_hi * 64;
  switch (spec.duration_dist) {
    case DurationDist::kUniform:
      return rng.uniform_int(spec.est_minutes_lo, spec.est_minutes_hi);
    case DurationDist::kLognormal: {
      // Median at the geometric midpoint of [lo, hi]; sigma widens the tail.
      double mid = std::sqrt(static_cast<double>(spec.est_minutes_lo) *
                             static_cast<double>(spec.est_minutes_hi));
      double v = std::exp(rng.normal(std::log(mid), spec.dist_sigma));
      return clamp<std::int64_t>(static_cast<std::int64_t>(v), 1, cap);
    }
    case DurationDist::kPareto: {
      double alpha = spec.dist_alpha < 0.05 ? 0.05 : spec.dist_alpha;
      double u = 1.0 - rng.uniform();  // (0, 1]
      double v = static_cast<double>(spec.est_minutes_lo) *
                 std::pow(1.0 / u, 1.0 / alpha);
      return clamp<std::int64_t>(static_cast<std::int64_t>(v), 1, cap);
    }
  }
  return spec.est_minutes_lo;
}

}  // namespace

Scenario generate(const ScenarioSpec& spec_in) {
  ScenarioSpec spec = spec_in;
  spec.size = clamp<std::size_t>(spec.size, 1, 64);
  spec.width = clamp<std::size_t>(spec.width, 2, 8);
  spec.inputs = clamp<std::size_t>(spec.inputs, 1, 8);
  spec.resources = clamp(spec.resources, 1, 8);
  if (spec.tool_minutes_lo < 1) spec.tool_minutes_lo = 1;
  if (spec.tool_minutes_hi < spec.tool_minutes_lo)
    spec.tool_minutes_hi = spec.tool_minutes_lo;
  if (spec.est_minutes_lo < 1) spec.est_minutes_lo = 1;
  if (spec.est_minutes_hi < spec.est_minutes_lo) spec.est_minutes_hi = spec.est_minutes_lo;
  if (spec.minutes_per_day < 60) spec.minutes_per_day = 60;
  if (spec.max_attempts < 1) spec.max_attempts = 1;
  if (spec.timeout_minutes < 0) spec.timeout_minutes = 0;
  spec.dist_sigma = clamp(spec.dist_sigma, 0.0, 4.0);
  spec.dist_alpha = clamp(spec.dist_alpha, 0.05, 16.0);
  spec.adversity = clamp(spec.adversity, 0.0, 1.0);
  // Layered shapes explode as layers * width; keep the grid small.
  if (spec.shape == Shape::kLayered) spec.size = clamp<std::size_t>(spec.size, 1, 8);

  util::Rng rng(spec.seed);
  Scenario s;
  switch (spec.shape) {
    case Shape::kChain: s.graph = chain_graph(spec.size); break;
    case Shape::kFanin: s.graph = fanin_graph(spec.size); break;
    case Shape::kLayered: s.graph = layered_graph(spec.size, spec.width); break;
    case Shape::kRandom: s.graph = random_graph(rng, spec.inputs, spec.size); break;
  }
  for (auto& r : s.graph.rules) r.est_minutes = draw_est_minutes(rng, spec);
  s.tool_minutes = rng.uniform_int(spec.tool_minutes_lo, spec.tool_minutes_hi);
  s.fallback_minutes = rng.uniform_int(spec.est_minutes_lo, spec.est_minutes_hi);

  s.minutes_per_day = spec.minutes_per_day;
  s.resources = spec.resources;
  s.fault_seed = spec.fault_seed;
  if (spec.fault_seed != 0) {
    exec::ToolFaults tf;
    tf.fail_prob = spec.fail_prob;
    tf.latency_factor = spec.latency_factor;
    if (spec.fail_on > 0) tf.fail_on.push_back(spec.fail_on);
    s.faults.tools["*"] = std::move(tf);
  }
  s.mode = spec.mode;
  s.policy = spec.policy;
  s.max_attempts = spec.max_attempts;
  s.timeout_minutes = spec.timeout_minutes;

  if (spec.adversity > 0 && !s.graph.rules.empty()) {
    const auto n_rules = static_cast<std::int64_t>(s.graph.rules.size());
    auto count = [&](double per_unit) {
      auto hi = static_cast<std::int64_t>(spec.adversity * per_unit + 0.5);
      return rng.uniform_int(1, hi < 1 ? 1 : hi);
    };
    for (std::int64_t i = 0, n = count(3.0); i < n; ++i)
      s.adversarial.replans.push_back(
          static_cast<int>(rng.uniform_int(1, n_rules)));
    std::sort(s.adversarial.replans.begin(), s.adversarial.replans.end());
    for (std::int64_t i = 0, n = count(4.0); i < n; ++i)
      s.adversarial.edits.push_back(
          {static_cast<std::size_t>(rng.uniform_int(0, n_rules - 1)),
           "designer" + std::to_string(rng.uniform_int(0, 3))});
    if (auto prim = s.graph.primary_inputs(); !prim.empty()) {
      for (std::int64_t i = 0, n = count(2.0); i < n; ++i)
        s.adversarial.input_revisions.push_back(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(prim.size()) - 1)));
    }
  }
  s.spec = spec;
  return s;
}

StructuralFacts facts(const Scenario& scenario) {
  StructuralFacts f;
  f.n_rules = scenario.graph.rules.size();
  f.n_data_types = scenario.graph.data_types.size();
  f.n_primary_inputs = scenario.graph.primary_inputs().size();
  f.target = scenario.graph.target;
  return f;
}

util::Result<std::unique_ptr<hercules::WorkflowManager>> make_manager(
    const Scenario& scenario) {
  cal::WorkCalendar::Config cfg;
  cfg.epoch = cal::Date(1995, 6, 12);  // a Monday; the paper's publication year
  cfg.minutes_per_day = scenario.minutes_per_day;
  auto created = hercules::WorkflowManager::create(
      scenario.dsl(), cfg,
      /*tool_seed=*/scenario.spec.seed ? scenario.spec.seed : 1);
  if (!created.ok()) return created;
  std::unique_ptr<hercules::WorkflowManager> m = std::move(created).take();

  auto st = m->register_tool({.instance_name = "t1", .tool_type = "t",
                              .nominal = cal::WorkDuration::minutes(scenario.tool_minutes)});
  if (!st.ok()) return st.error();
  for (int i = 0; i < scenario.resources; ++i)
    m->add_resource("r" + std::to_string(i));

  st = m->extract_task("job", scenario.graph.target);
  if (!st.ok()) return st.error();
  // Bind exactly the leaves present in the extracted tree (a random rule set
  // may leave some declared primary inputs unreachable from the target).
  auto task = m->task("job");
  if (!task.ok()) return task.error();
  flow::TaskTree& tree = *task.value();
  for (auto leaf : tree.leaves()) {
    const auto& n = tree.node(leaf);
    std::string instance = n.kind == flow::NodeKind::kToolLeaf
                               ? "t1"
                               : m->schema().type(n.type).name + ".in";
    st = tree.bind(leaf, instance);
    if (!st.ok()) return st.error();
  }

  for (const auto& r : scenario.graph.rules)
    m->estimator().set_intuition(r.name, cal::WorkDuration::minutes(r.est_minutes));
  m->estimator().set_fallback(cal::WorkDuration::minutes(scenario.fallback_minutes));

  exec::ExecutionOptions opts;
  opts.on_failure = scenario.policy;
  opts.retry.max_attempts = scenario.max_attempts;
  // Retry backoff advances the clock without being journaled; scenarios must
  // stay replayable from snapshot + journal, so it is always zero here.
  opts.retry.backoff = cal::WorkDuration::minutes(0);
  opts.retry.timeout = cal::WorkDuration::minutes(scenario.timeout_minutes);
  m->set_exec_options(std::move(opts));

  if (scenario.fault_seed != 0) m->set_faults(scenario.fault_seed, scenario.faults);
  return m;
}

std::vector<sched::CpmActivity> cpm_network(const Scenario& scenario) {
  std::unordered_map<std::string, std::size_t> producer;
  for (std::size_t i = 0; i < scenario.graph.rules.size(); ++i)
    producer[scenario.graph.rules[i].output] = i;
  std::vector<sched::CpmActivity> acts(scenario.graph.rules.size());
  for (std::size_t i = 0; i < scenario.graph.rules.size(); ++i) {
    acts[i].duration = scenario.graph.rules[i].est_minutes;
    for (const auto& in : scenario.graph.rules[i].inputs) {
      auto it = producer.find(in);
      if (it != producer.end()) acts[i].preds.push_back(it->second);
    }
  }
  return acts;
}

// --- serialization -----------------------------------------------------------

util::Json scenario_to_json(const Scenario& s) {
  using util::Json;
  using util::JsonArray;
  using util::JsonObject;

  JsonObject spec;
  spec.set("seed", static_cast<std::int64_t>(s.spec.seed));
  spec.set("shape", shape_name(s.spec.shape));
  spec.set("size", static_cast<std::int64_t>(s.spec.size));
  spec.set("width", static_cast<std::int64_t>(s.spec.width));
  spec.set("inputs", static_cast<std::int64_t>(s.spec.inputs));
  spec.set("resources", static_cast<std::int64_t>(s.spec.resources));
  spec.set("tool_minutes_lo", s.spec.tool_minutes_lo);
  spec.set("tool_minutes_hi", s.spec.tool_minutes_hi);
  spec.set("est_minutes_lo", s.spec.est_minutes_lo);
  spec.set("est_minutes_hi", s.spec.est_minutes_hi);
  spec.set("minutes_per_day", s.spec.minutes_per_day);
  spec.set("fault_seed", static_cast<std::int64_t>(s.spec.fault_seed));
  spec.set("fail_prob", s.spec.fail_prob);
  spec.set("fail_on", static_cast<std::int64_t>(s.spec.fail_on));
  spec.set("latency_factor", s.spec.latency_factor);
  spec.set("mode", exec_mode_name(s.spec.mode));
  spec.set("policy", policy_name(s.spec.policy));
  spec.set("max_attempts", static_cast<std::int64_t>(s.spec.max_attempts));
  spec.set("timeout_minutes", s.spec.timeout_minutes);
  spec.set("duration_dist", duration_dist_name(s.spec.duration_dist));
  spec.set("dist_sigma", s.spec.dist_sigma);
  spec.set("dist_alpha", s.spec.dist_alpha);
  spec.set("adversity", s.spec.adversity);

  JsonObject graph;
  graph.set("schema_name", s.graph.schema_name);
  JsonArray data;
  for (const auto& d : s.graph.data_types) data.emplace_back(d);
  graph.set("data_types", std::move(data));
  JsonArray rules;
  for (const auto& r : s.graph.rules) {
    JsonObject rule;
    rule.set("name", r.name);
    rule.set("output", r.output);
    JsonArray inputs;
    for (const auto& in : r.inputs) inputs.emplace_back(in);
    rule.set("inputs", std::move(inputs));
    rule.set("est_minutes", r.est_minutes);
    rules.push_back(Json(std::move(rule)));
  }
  graph.set("rules", std::move(rules));
  graph.set("target", s.graph.target);

  JsonObject doc;
  doc.set("spec", std::move(spec));
  doc.set("graph", std::move(graph));
  doc.set("minutes_per_day", s.minutes_per_day);
  doc.set("tool_minutes", s.tool_minutes);
  doc.set("fallback_minutes", s.fallback_minutes);
  doc.set("resources", static_cast<std::int64_t>(s.resources));
  doc.set("fault_seed", static_cast<std::int64_t>(s.fault_seed));
  doc.set("faults", exec::fault_plan_to_json(s.faults));
  doc.set("mode", exec_mode_name(s.mode));
  doc.set("policy", policy_name(s.policy));
  doc.set("max_attempts", static_cast<std::int64_t>(s.max_attempts));
  doc.set("timeout_minutes", s.timeout_minutes);

  JsonObject adv;
  JsonArray replans;
  for (int k : s.adversarial.replans)
    replans.emplace_back(static_cast<std::int64_t>(k));
  adv.set("replans", std::move(replans));
  JsonArray edits;
  for (const auto& e : s.adversarial.edits) {
    JsonObject edit;
    edit.set("rule", static_cast<std::int64_t>(e.rule));
    edit.set("designer", e.designer);
    edits.push_back(Json(std::move(edit)));
  }
  adv.set("edits", std::move(edits));
  JsonArray revisions;
  for (std::size_t i : s.adversarial.input_revisions)
    revisions.emplace_back(static_cast<std::int64_t>(i));
  adv.set("input_revisions", std::move(revisions));
  doc.set("adversarial", std::move(adv));
  return doc;
}

util::Result<Scenario> scenario_from_json(const util::Json& json) {
  if (!json.is_object()) return util::parse_error("scenario: not an object");
  const auto& doc = json.as_object();
  Scenario s;
  try {
    const auto& spec = doc.at("spec").as_object();
    s.spec.seed = static_cast<std::uint64_t>(spec.at("seed").as_int());
    auto shape = parse_shape(spec.at("shape").as_string());
    if (!shape.ok()) return shape.error();
    s.spec.shape = shape.value();
    s.spec.size = static_cast<std::size_t>(spec.at("size").as_int());
    s.spec.width = static_cast<std::size_t>(spec.at("width").as_int());
    s.spec.inputs = static_cast<std::size_t>(spec.at("inputs").as_int());
    s.spec.resources = static_cast<int>(spec.at("resources").as_int());
    s.spec.tool_minutes_lo = spec.at("tool_minutes_lo").as_int();
    s.spec.tool_minutes_hi = spec.at("tool_minutes_hi").as_int();
    s.spec.est_minutes_lo = spec.at("est_minutes_lo").as_int();
    s.spec.est_minutes_hi = spec.at("est_minutes_hi").as_int();
    s.spec.minutes_per_day = spec.at("minutes_per_day").as_int();
    s.spec.fault_seed = static_cast<std::uint64_t>(spec.at("fault_seed").as_int());
    s.spec.fail_prob = spec.at("fail_prob").as_double();
    s.spec.fail_on = static_cast<int>(spec.at("fail_on").as_int());
    s.spec.latency_factor = spec.at("latency_factor").as_double();
    auto mode = parse_exec_mode(spec.at("mode").as_string());
    if (!mode.ok()) return mode.error();
    s.spec.mode = mode.value();
    auto policy = parse_policy(spec.at("policy").as_string());
    if (!policy.ok()) return policy.error();
    s.spec.policy = policy.value();
    s.spec.max_attempts = static_cast<int>(spec.at("max_attempts").as_int());
    s.spec.timeout_minutes = spec.at("timeout_minutes").as_int();
    // Newer fields parse optionally: corpus files from before they existed
    // must keep replaying (defaults match the historical behavior).
    if (spec.contains("duration_dist")) {
      auto dist = parse_duration_dist(spec.at("duration_dist").as_string());
      if (!dist.ok()) return dist.error();
      s.spec.duration_dist = dist.value();
    }
    if (spec.contains("dist_sigma")) s.spec.dist_sigma = spec.at("dist_sigma").as_double();
    if (spec.contains("dist_alpha")) s.spec.dist_alpha = spec.at("dist_alpha").as_double();
    if (spec.contains("adversity")) s.spec.adversity = spec.at("adversity").as_double();

    const auto& graph = doc.at("graph").as_object();
    s.graph.schema_name = graph.at("schema_name").as_string();
    s.graph.data_types.clear();
    for (const auto& d : graph.at("data_types").as_array())
      s.graph.data_types.push_back(d.as_string());
    for (const auto& rj : graph.at("rules").as_array()) {
      const auto& ro = rj.as_object();
      GenRule r;
      r.name = ro.at("name").as_string();
      r.output = ro.at("output").as_string();
      for (const auto& in : ro.at("inputs").as_array())
        r.inputs.push_back(in.as_string());
      r.est_minutes = ro.at("est_minutes").as_int();
      s.graph.rules.push_back(std::move(r));
    }
    s.graph.target = graph.at("target").as_string();

    s.minutes_per_day = doc.at("minutes_per_day").as_int();
    s.tool_minutes = doc.at("tool_minutes").as_int();
    s.fallback_minutes = doc.at("fallback_minutes").as_int();
    s.resources = static_cast<int>(doc.at("resources").as_int());
    s.fault_seed = static_cast<std::uint64_t>(doc.at("fault_seed").as_int());
    auto faults = exec::fault_plan_from_json(doc.at("faults"));
    if (!faults.ok()) return faults.error();
    s.faults = std::move(faults).take();
    auto mode2 = parse_exec_mode(doc.at("mode").as_string());
    if (!mode2.ok()) return mode2.error();
    s.mode = mode2.value();
    auto policy2 = parse_policy(doc.at("policy").as_string());
    if (!policy2.ok()) return policy2.error();
    s.policy = policy2.value();
    s.max_attempts = static_cast<int>(doc.at("max_attempts").as_int());
    s.timeout_minutes = doc.at("timeout_minutes").as_int();
    if (doc.contains("adversarial")) {
      const auto& adv = doc.at("adversarial").as_object();
      for (const auto& k : adv.at("replans").as_array())
        s.adversarial.replans.push_back(static_cast<int>(k.as_int()));
      for (const auto& ej : adv.at("edits").as_array()) {
        const auto& eo = ej.as_object();
        s.adversarial.edits.push_back(
            {static_cast<std::size_t>(eo.at("rule").as_int()),
             eo.at("designer").as_string()});
      }
      for (const auto& i : adv.at("input_revisions").as_array())
        s.adversarial.input_revisions.push_back(
            static_cast<std::size_t>(i.as_int()));
    }
  } catch (const std::out_of_range& e) {
    return util::parse_error(std::string("scenario: missing field: ") + e.what());
  } catch (const std::bad_variant_access&) {
    return util::parse_error("scenario: field has wrong JSON type");
  }
  return s;
}

// --- server request streams --------------------------------------------------

std::vector<GenRequest> request_stream(const RequestStreamSpec& spec) {
  util::Rng rng(spec.seed);
  const int designers = spec.designers < 1 ? 1 : spec.designers;
  double read_f = spec.read_fraction < 0 ? 0 : spec.read_fraction;
  double advance_f = spec.advance_fraction < 0 ? 0 : spec.advance_fraction;
  if (read_f + advance_f > 1.0) {
    double scale = 1.0 / (read_f + advance_f);
    read_f *= scale;
    advance_f *= scale;
  }

  std::vector<GenRequest> out;
  out.reserve(spec.count);
  // Streams open with a plan: status reads against an unplanned task are
  // errors, and real sessions plan before they track anyway.
  if (spec.count > 0) {
    GenRequest plan;
    plan.op = "plan";
    plan.args.set("name", "plan");
    out.push_back(std::move(plan));
  }
  bool status_next = true;  // reads alternate status / stats
  for (std::size_t i = 1; i < spec.count && out.size() < spec.count; ++i) {
    // Bursty arrivals: an execute storm round-robined over every designer
    // lands back-to-back (guarded so burst_prob == 0 draws nothing and the
    // historical streams stay byte-identical).
    if (spec.burst_prob > 0 && rng.chance(spec.burst_prob)) {
      std::int64_t lo = spec.burst_len_lo < 1 ? 1 : spec.burst_len_lo;
      std::int64_t hi = spec.burst_len_hi < lo ? lo : spec.burst_len_hi;
      std::int64_t len = rng.uniform_int(lo, hi);
      for (std::int64_t b = 0; b < len && out.size() < spec.count; ++b) {
        GenRequest burst;
        burst.op = "execute";
        burst.args.set("designer",
                       "designer" + std::to_string(b % static_cast<std::int64_t>(
                                                           designers)));
        out.push_back(std::move(burst));
      }
      continue;
    }
    GenRequest r;
    const double roll = rng.uniform();
    if (roll < advance_f) {
      r.op = "advance";
      r.args.set("minutes", util::Json(rng.uniform_int(spec.advance_minutes_lo,
                                                       spec.advance_minutes_hi)));
    } else if (roll < advance_f + read_f) {
      r.op = status_next ? "status" : "stats";
      status_next = !status_next;
    } else {
      r.op = "execute";
      r.args.set("designer",
                 "designer" + std::to_string(rng.uniform_int(0, designers - 1)));
    }
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace herc::gen
