#pragma once
// herc::gen — the unified, seeded scenario generator.
//
// Every synthetic flow in the repository comes from here: the benchmark
// workload shapes (chain / fanin / layered), the property tests' random
// acyclic schemas, the CPM kernel's random activity networks, and the fuzz
// harness's end-to-end scenarios.  One ScenarioSpec — seed, shape, size,
// duration distributions, fault plan, execution mode — deterministically
// produces one Scenario: an explicit flow graph, the schema DSL rendered
// from it, per-activity estimates, and everything needed to build a
// ready-to-run WorkflowManager.  The same spec yields a byte-identical
// scenario on every platform (all randomness flows through util::Rng).
//
// A Scenario is *materialized*: it carries the graph and durations
// explicitly rather than re-deriving them from the spec, so the fuzz
// shrinker can delta-debug it (drop rules, shrink durations, drop faults)
// and the result still serializes to a self-contained corpus file
// (scenario_to_json / scenario_from_json) that replays forever.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cpm.hpp"
#include "exec/executor.hpp"
#include "exec/fault.hpp"
#include "hercules/workflow_manager.hpp"
#include "util/json.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace herc::gen {

// --- flow graphs -------------------------------------------------------------

/// One construction rule of a generated flow.  The estimate rides along so
/// shrinking a rule away removes its duration with it.
struct GenRule {
  std::string name;                ///< activity name, unique in the graph
  std::string output;              ///< data type produced
  std::vector<std::string> inputs; ///< data types consumed (may be empty)
  std::int64_t est_minutes = 240;  ///< designer intuition estimate
};

/// An explicit acyclic flow: data types in declaration order plus rules.
/// All generated schemas use a single tool type "t" (instance "t1"), which
/// matches every workload the benches and tests historically used.
struct FlowGraph {
  std::string schema_name = "scenario";
  std::vector<std::string> data_types;  ///< DSL declaration order
  std::vector<GenRule> rules;           ///< DSL declaration order
  std::string target;                   ///< data type the task tree extracts

  /// Data types no rule produces — bound as "<type>.in" by make_manager.
  [[nodiscard]] std::vector<std::string> primary_inputs() const;
};

/// Renders the graph in the schema DSL accepted by schema::parse_schema.
/// Byte-stable: the same graph always renders to the same text, and the
/// legacy shapes below render exactly the strings the seed benchmarks used
/// (so BENCH_BASELINE.json keeps measuring identical workloads).
[[nodiscard]] std::string render_schema(const FlowGraph& graph);

// --- scenario specification --------------------------------------------------

enum class Shape { kChain, kFanin, kLayered, kRandom };
[[nodiscard]] const char* shape_name(Shape s);
[[nodiscard]] util::Result<Shape> parse_shape(const std::string& name);

enum class ExecMode { kSerial, kConcurrent };
[[nodiscard]] const char* exec_mode_name(ExecMode m);

/// Distribution family for the per-activity estimate draws.  kUniform is
/// the historical inclusive-range draw (identical seeds keep producing
/// identical scenarios); the heavy-tailed families model production
/// workloads where a few activities dominate the makespan.
enum class DurationDist { kUniform, kLognormal, kPareto };
[[nodiscard]] const char* duration_dist_name(DurationDist d);
[[nodiscard]] util::Result<DurationDist> parse_duration_dist(const std::string& name);

/// Production-shaped events layered over a scenario's execution by the
/// adversarial driver in the fuzz harness: mid-flight replans, conflicting
/// multi-designer edits after the base execution, and primary-input
/// revisions that force selective re-execution.  Indices are resolved
/// modulo the current graph, so shrinking rules away never invalidates a
/// plan.
struct AdversarialPlan {
  /// Replan the task after the k-th completed activity (1-based).
  std::vector<int> replans;
  struct Edit {
    std::size_t rule = 0;  ///< rule index (mod rules.size())
    std::string designer;  ///< conflicting designer re-running it
  };
  std::vector<Edit> edits;
  /// Primary inputs (mod primary_inputs().size()) re-imported as new
  /// versions before the edit wave — the stale-propagation trigger.
  std::vector<std::size_t> input_revisions;

  [[nodiscard]] bool empty() const {
    return replans.empty() && edits.empty() && input_revisions.empty();
  }
};

/// Seeded recipe for one scenario.  `size` is the shape's primary scale:
/// chain length, fanin width, layered layer count, or random rule count.
struct ScenarioSpec {
  std::uint64_t seed = 1;
  Shape shape = Shape::kRandom;
  std::size_t size = 8;
  std::size_t width = 4;    ///< layered shapes only: activities per layer
  std::size_t inputs = 2;   ///< random shapes only: primary input count
  int resources = 1;        ///< people registered as r0..rN-1

  // Duration distributions (uniform work minutes, inclusive).
  std::int64_t tool_minutes_lo = 30, tool_minutes_hi = 600;
  std::int64_t est_minutes_lo = 60, est_minutes_hi = 960;
  std::int64_t minutes_per_day = 480;

  // Heavy-tail shape for the estimate draws.  kLognormal draws
  // exp(N(ln(geometric mid of lo..hi), sigma)); kPareto draws
  // lo / U^(1/alpha).  Both clamp into [1, 64 * est_minutes_hi].
  DurationDist duration_dist = DurationDist::kUniform;
  double dist_sigma = 1.0;  ///< lognormal shape parameter
  double dist_alpha = 1.3;  ///< pareto tail index (lower = heavier tail)

  /// 0 = no adversarial plan; (0, 1] scales how many replans, conflicting
  /// edits and input revisions generate() draws into Scenario::adversarial.
  double adversity = 0.0;

  // Fault plan knobs (materialized into Scenario::faults).
  std::uint64_t fault_seed = 0;  ///< 0 = no injector installed
  double fail_prob = 0.0;        ///< wildcard injected failure probability
  int fail_on = 0;               ///< if > 0: this invocation index always fails
  double latency_factor = 1.0;   ///< wildcard duration multiplier

  // Execution semantics.
  ExecMode mode = ExecMode::kSerial;
  exec::FailurePolicy policy = exec::FailurePolicy::kAbort;
  int max_attempts = 1;
  std::int64_t timeout_minutes = 0;  ///< per-attempt budget; 0 = unlimited
};

/// A fully materialized scenario: spec provenance + explicit graph +
/// durations + faults + execution knobs.  Self-contained and serializable.
struct Scenario {
  ScenarioSpec spec;  ///< provenance; stale after shrinking (graph wins)
  FlowGraph graph;
  std::int64_t minutes_per_day = 480;
  std::int64_t tool_minutes = 120;      ///< nominal run time of tool "t1"
  std::int64_t fallback_minutes = 240;  ///< estimator fallback
  int resources = 1;
  std::uint64_t fault_seed = 0;
  exec::FaultPlan faults;
  ExecMode mode = ExecMode::kSerial;
  exec::FailurePolicy policy = exec::FailurePolicy::kAbort;
  int max_attempts = 1;
  std::int64_t timeout_minutes = 0;
  AdversarialPlan adversarial;

  [[nodiscard]] std::string dsl() const { return render_schema(graph); }
};

/// Structural facts generation promises about a scenario; gen_test checks
/// them, the fuzz harness re-checks them against the parsed schema.
struct StructuralFacts {
  std::size_t n_rules = 0;
  std::size_t n_data_types = 0;
  std::size_t n_primary_inputs = 0;
  std::string target;
};
[[nodiscard]] StructuralFacts facts(const Scenario& scenario);

/// Deterministically expands a spec into a scenario.  Sizes are clamped to
/// sane bounds (>= 1 activity, <= 64 per dimension); the clamped values are
/// reflected in the returned scenario's spec.
[[nodiscard]] Scenario generate(const ScenarioSpec& spec);

/// Builds a ready-to-run manager: schema parsed, tool "t1" registered with
/// the scenario's nominal, resources added, task "job" extracted for the
/// target, every leaf bound (data leaves to "<type>.in"), per-activity
/// intuition estimates plus fallback set, execution options applied, and
/// the fault injector installed when fault_seed != 0.
[[nodiscard]] util::Result<std::unique_ptr<hercules::WorkflowManager>> make_manager(
    const Scenario& scenario);

/// The scenario's activity network for the CPM oracles: one activity per
/// rule (graph order), finish-to-start edges from producing rules, durations
/// from the estimates.
[[nodiscard]] std::vector<sched::CpmActivity> cpm_network(const Scenario& scenario);

// --- serialization -----------------------------------------------------------

/// Self-contained corpus form.  scenario_to_json(from_json(j)) reproduces
/// `j`'s dump byte-identically (round-trip tested).
[[nodiscard]] util::Json scenario_to_json(const Scenario& scenario);
[[nodiscard]] util::Result<Scenario> scenario_from_json(const util::Json& json);

// --- server request streams --------------------------------------------------
//
// Seeded op sequences for driving one hosted project over the herc::srv wire
// protocol.  Kept abstract (op name + args document) so gen does not depend
// on the wire layer; srv tests and the load driver wrap them in frames.

/// One abstract project request.
struct GenRequest {
  std::string op;         ///< "execute" | "status" | "stats" | "advance"
  util::JsonObject args;  ///< op-specific payload (designer, minutes, ...)
};

/// Recipe for a request mix: mostly mutations (execute), a read share
/// (status/stats alternating) and an occasional clock advance.  Fractions
/// are clamped so they sum to at most 1; the remainder is executes.
struct RequestStreamSpec {
  std::uint64_t seed = 1;
  std::size_t count = 100;
  int designers = 4;             ///< designer0..designerN-1 round-robin pool
  double read_fraction = 0.2;
  double advance_fraction = 0.05;
  std::int64_t advance_minutes_lo = 30;
  std::int64_t advance_minutes_hi = 480;

  // Bursty arrivals: with probability `burst_prob` per drawn op, a
  // back-to-back run of executes lands instead, round-robined across the
  // whole designer pool — the multi-designer contention shape production
  // traffic shows.  0 keeps the historical smooth mix byte-identical.
  double burst_prob = 0.0;
  std::int64_t burst_len_lo = 4, burst_len_hi = 12;
};

/// Deterministically expands the spec: identical specs yield identical
/// streams on every platform.
[[nodiscard]] std::vector<GenRequest> request_stream(const RequestStreamSpec& spec);

// --- legacy workload shapes --------------------------------------------------
//
// Exact replacements for the generators that used to live in
// bench/workloads.hpp and tests/property_test.cpp.  The schema strings are
// byte-identical to the seed versions: identical seeds (and sizes) produce
// identical workloads, keeping BENCH_BASELINE.json comparable.

/// Serial chain: d0 -> A1 -> d1 -> ... -> dn.
[[nodiscard]] std::string chain_schema(std::size_t n);
[[nodiscard]] FlowGraph chain_graph(std::size_t n);

/// `width` independent producers feeding one merge activity.
[[nodiscard]] std::string fanin_schema(std::size_t width);
[[nodiscard]] FlowGraph fanin_graph(std::size_t width);

/// `layers` x `width` activities; (l, w) consumes (l-1, w) and
/// (l-1, (w+1) % width); a final Join merges the last layer.
[[nodiscard]] std::string layered_schema(std::size_t layers, std::size_t width);
[[nodiscard]] FlowGraph layered_graph(std::size_t layers, std::size_t width);

/// Random acyclic schema: `inputs` primary inputs, `rules` rules each
/// consuming 1-3 earlier types (always including the immediately previous
/// one, so the last rule's output transitively covers every rule).
[[nodiscard]] FlowGraph random_graph(util::Rng& rng, std::size_t inputs,
                                     std::size_t rules);

/// Ready-to-run manager over a schema DSL: one "t1" instance for tool type
/// "t", every primary input bound, fallback estimate set, task "job"
/// extracted for `target`.  (The bench workloads' make_manager.)
[[nodiscard]] std::unique_ptr<hercules::WorkflowManager> make_bound_manager(
    const std::string& dsl, const std::string& target,
    cal::WorkDuration tool_time = cal::WorkDuration::hours(2));

/// Random CPM activity network (the scheduling benches' distribution:
/// durations 10..480, up to 4 bounded-probability predecessors).
[[nodiscard]] std::vector<sched::CpmActivity> random_cpm_network(std::size_t n,
                                                                 double edge_p,
                                                                 std::uint64_t seed);

/// Random DAG with releases (the CPM solver tests' distribution: durations
/// 0..500, 20% release chance, every earlier activity an edge candidate).
[[nodiscard]] std::vector<sched::CpmActivity> random_cpm_dag(util::Rng& rng,
                                                             std::size_t n,
                                                             double edge_p);

/// Chain-shaped CPM network (60-minute activities).
[[nodiscard]] std::vector<sched::CpmActivity> chain_cpm_network(std::size_t n);

// --- mega-graphs -------------------------------------------------------------
//
// Million-activity networks are generated as a *stream*, never materialized
// as vector-of-vectors: stream_mega_cpm emits each activity once, in index
// order, through a sink whose signature matches
// sched::CpmSolver::ActivitySink, so CpmSolver::compile_stream can build its
// flat CSR directly and the only O(n)-sized allocations are the solver's
// own arrays.  Emission is pure (a fresh seeded Rng per call), so invoking
// the stream twice — as compile_stream's two-pass build does — yields
// byte-identical output.

/// Recipe for a streamed CPM mega-graph.  Only kLayered and kRandom apply;
/// every pred of activity i has index < i (forward-indexed), which is what
/// keeps the graphs cycle-free by construction at any scale.
struct MegaGraphSpec {
  std::uint64_t seed = 1;
  Shape shape = Shape::kLayered;
  std::size_t activities = 1u << 20;
  /// kLayered: activities per level; (l, w) depends on (l-1, w) and
  /// (l-1, (w+1) % width) — the layered_graph wiring at mega scale.
  std::size_t width = 1024;
  /// kRandom: up to this many bounded-probability preds per activity
  /// (random_cpm_network's density rule).
  std::size_t max_preds = 4;
  double edge_p = 0.9;
  std::int64_t minutes_lo = 10, minutes_hi = 480;
  double release_p = 0.0;        ///< chance of a nonzero release
  std::int64_t release_hi = 300; ///< release ~ uniform[0, release_hi]
};

/// Sink signature (identical to sched::CpmSolver::ActivitySink, duplicated
/// so gen stays independent of the solver): called once per activity in
/// index order with its duration, release, and predecessor indices.
using MegaCpmSink = std::function<void(
    std::int64_t duration, std::int64_t release, const std::uint32_t* preds,
    std::size_t n_preds)>;

/// Streams the spec's network through `sink` with O(max_preds) working
/// memory.  Deterministic: identical specs emit identical streams on every
/// call and platform.
void stream_mega_cpm(const MegaGraphSpec& spec, const MegaCpmSink& sink);

/// Materialized form of the same network (byte-identical durations /
/// releases / preds to the stream) — for small-scale oracles that compare
/// compile_stream against the classic compile path.
[[nodiscard]] std::vector<sched::CpmActivity> mega_cpm_network(
    const MegaGraphSpec& spec);

}  // namespace herc::gen
