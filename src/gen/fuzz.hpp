#pragma once
// Differential / metamorphic fuzz harness over herc::gen scenarios.
//
// run_scenario drives one generated scenario through the full pipeline —
// parse -> plan -> risk -> execute (with injected faults) -> link/track ->
// persist + journal -> crash -> recover -> query — and checks seven oracle
// families on the way:
//
//   cpm          full compute_cpm, an incrementally re-solved CpmSolver, and
//                an independent naive fixpoint reference agree exactly;
//   mirror       the planner's schedule instances are node-for-node
//                isomorphic to the executor's run metadata (the paper's
//                schedule-space mirror), under every failure policy;
//   recovery     snapshot + journal replay reproduces an uninterrupted save
//                byte-identically, composes across every journal prefix,
//                tolerates a torn tail, and a real injected crash recovers
//                to exactly the journaled prefix;
//   risk         Monte Carlo risk analysis is bit-identical across thread
//                counts;
//   metamorphic  relabeling + rule permutation leaves the planned makespan
//                invariant; slack-covered duration growth never moves the
//                critical path's completion;
//   query        differential check over the query fast path: every
//                statement returns byte-identical rows via the index path,
//                the full-scan path, and cached re-execution, before and
//                after interleaved mutations (imports, failed runs,
//                replans) that must invalidate the result cache;
//   adapter      cross-adapter conformance: the same scenario materialized
//                through the native executor, a timed Petri firing replay,
//                a VOV trace replay and concurrent dispatch lands on
//                equivalent Level-3 metadata (byte-identical canonical
//                snapshots, identical query rows, identical symbol sets);
//                scenarios carrying an AdversarialPlan additionally run the
//                replan/edit/revision storm with recovery byte-identity.
//
// Planted mutations (Mutation) inject one known bug into the system under
// test so the harness can prove each oracle actually catches its failure
// class — fuzzers that cannot fail their oracles test nothing.
//
// On a real failure, shrink() delta-debugs the scenario to a minimal
// reproducer: drop rules (repairing the graph so every candidate still
// parses), clear faults, simplify execution semantics, shrink durations.
// The result serializes to a self-contained corpus file replayable with
// `herc_fuzz --repro <file>`.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "gen/gen.hpp"

namespace herc::gen {

// --- oracle families (bitmask) -----------------------------------------------

inline constexpr unsigned kOracleCpm = 1u << 0;
inline constexpr unsigned kOracleMirror = 1u << 1;
inline constexpr unsigned kOracleRecovery = 1u << 2;
inline constexpr unsigned kOracleRisk = 1u << 3;
inline constexpr unsigned kOracleMetamorphic = 1u << 4;
/// Always-on structural checks (DSL parses, facts match); not maskable.
inline constexpr unsigned kOracleStructure = 1u << 5;
inline constexpr unsigned kOracleQuery = 1u << 6;
/// Cross-adapter conformance (see gen/conformance.hpp): native vs Petri
/// firing replay vs VOV trace replay vs concurrent dispatch must agree on
/// Level-3 metadata; scenarios with an AdversarialPlan also run the
/// replan/edit/fault storm driver.
inline constexpr unsigned kOracleAdapter = 1u << 7;
inline constexpr unsigned kOracleAll = ((1u << 5) - 1) | kOracleQuery | kOracleAdapter;

[[nodiscard]] const char* oracle_name(unsigned family);
/// "cpm,mirror,risk" -> mask; "all" -> kOracleAll.  kParse on unknown names.
[[nodiscard]] util::Result<unsigned> parse_oracles(const std::string& csv);

// --- planted mutations -------------------------------------------------------

/// One deliberate bug injected into the system under test, used to verify
/// the corresponding oracle family detects its failure class.
enum class Mutation {
  kNone,
  kMirrorDropRun,     ///< executor "loses" its last completed run
  kCpmOffByOne,       ///< solver network gets one duration off by one
  kRecoveryDropLine,  ///< journal "loses" its final line before replay
  kRiskSeedSkew,      ///< second risk run silently uses a different seed
  kMetamorphicScale,  ///< relabeled flow gets all durations doubled
  kQueryStaleCache,   ///< result cache serves entries without validation
  kAdapterDropFiring, ///< Petri replay silently drops its final firing
};
[[nodiscard]] const char* mutation_name(Mutation m);
[[nodiscard]] util::Result<Mutation> parse_mutation(const std::string& name);

// --- single-scenario harness -------------------------------------------------

struct OracleFailure {
  unsigned family = 0;  ///< which kOracle* bit tripped
  std::string check;    ///< dotted id, e.g. "cpm.incremental"
  std::string detail;   ///< human-readable explanation
};

struct RunOptions {
  unsigned oracles = kOracleAll;
  Mutation mutation = Mutation::kNone;
  /// Directory for scratch journal files (unique names, removed afterwards).
  std::string scratch_dir = "/tmp";
};

/// Runs every enabled oracle family over one scenario.  Empty result = all
/// checks passed.  Never throws: injected crashes are caught internally.
[[nodiscard]] std::vector<OracleFailure> run_scenario(const Scenario& scenario,
                                                      const RunOptions& options = {});

/// Independent naive CPM: iterative relaxation to fixpoint, O(n * edges)
/// passes.  Deliberately shares no code with compute_cpm/CpmSolver — it is
/// the differential reference.  kInvalid on a cycle (no fixpoint within n
/// passes).
[[nodiscard]] util::Result<sched::CpmResult> reference_cpm(
    const std::vector<sched::CpmActivity>& activities);

/// Draws one random scenario spec (shape, size, faults, execution mode) and
/// materializes it.  Sizes are capped so a scenario stays ~milliseconds.
[[nodiscard]] Scenario sample_scenario(util::Rng& rng);

// --- shrinking ---------------------------------------------------------------

struct ShrinkOptions {
  unsigned oracles = kOracleAll;
  Mutation mutation = Mutation::kNone;
  std::size_t max_candidates = 400;  ///< hard bound on scenario evaluations
  /// Observes every candidate tried (tests assert each one parses).
  std::function<void(const Scenario&)> on_candidate;
  std::string scratch_dir = "/tmp";
};

struct ShrinkResult {
  Scenario scenario;               ///< smallest still-failing reproducer
  std::size_t candidates = 0;      ///< scenarios evaluated
  std::size_t improvements = 0;    ///< accepted reductions
  std::vector<OracleFailure> failures;  ///< the reproducer's failures
};

/// Delta-debugs a failing scenario to a minimal reproducer.  Every candidate
/// is repaired to a parseable graph with >= 1 rule before evaluation;
/// candidates are accepted only if they still fail a non-structural oracle.
[[nodiscard]] ShrinkResult shrink(const Scenario& failing,
                                  const ShrinkOptions& options = {});

// --- fuzz loop ---------------------------------------------------------------

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::size_t max_scenarios = 0;  ///< 0 = no count bound
  std::int64_t budget_ms = 0;     ///< 0 = no time bound
  unsigned oracles = kOracleAll;
  Mutation mutation = Mutation::kNone;
  bool shrink_failures = true;
  std::string scratch_dir = "/tmp";
  /// Progress callback, called after every scenario (may be empty).
  std::function<void(std::size_t scenarios)> on_progress;
};

struct FuzzReport {
  std::size_t scenarios = 0;
  std::int64_t elapsed_ms = 0;
  double scenarios_per_sec = 0;
  std::vector<OracleFailure> failures;  ///< empty = clean run
  std::optional<Scenario> failing;      ///< first failing scenario, as drawn
  std::optional<Scenario> shrunk;       ///< its minimal reproducer
  std::size_t shrink_candidates = 0;
};

/// Samples scenarios until a bound is hit or one fails; with neither bound
/// set, runs 100 scenarios.  On failure, optionally shrinks.
[[nodiscard]] FuzzReport fuzz(const FuzzOptions& options = {});

// --- corpus ------------------------------------------------------------------

/// Writes a scenario as a pretty-printed, self-contained corpus file.
[[nodiscard]] util::Status write_corpus_file(const Scenario& scenario,
                                             const std::string& path);
[[nodiscard]] util::Result<Scenario> read_corpus_file(const std::string& path);

}  // namespace herc::gen
