#pragma once
// Cross-adapter conformance driver — the paper's Table-I generality claim
// as an executable differential.
//
// A flow manager fitting the four-level architecture can host the schedule
// model no matter how it represents flows: Hercules task trees, Hilda Petri
// nets, VOV traces.  check_conformance makes that claim falsifiable per
// scenario: the same generated flow is materialized through three execution
// paths —
//
//   native   plan -> execute_task (the serial executor's post-order sweep),
//   petri    plan -> timed Petri token game -> replay the firing sequence
//            activity by activity (a genuinely different, duration-driven
//            linearization of the same partial order),
//   trace    plan -> replay the captured VOV trace transaction by
//            transaction on a fresh manager,
//
// plus a concurrent-executor leg, and every path must land on equivalent
// Level-3 metadata: byte-identical canonical snapshots (runs, instances,
// plans — ids and wall timestamps normalized away), identical rendered
// results for time-free queries, and the identical interned symbol set.
// On top of the replays the driver checks the timed net's marking
// invariants, that the unshared-tool timed makespan equals the CPM
// makespan, that the derived flow recovers the generator's graph, and that
// VOV's retrace prediction matches what refresh_task actually re-runs
// after an input revision.
//
// run_adversarial drives the production-shaped half of the workload space:
// a scenario's AdversarialPlan (mid-flight replans, conflicting
// multi-designer edits, primary-input revisions) over the scenario's fault
// plan, checking plan lineage, journal-recovery byte-identity, the query
// fast path, and trace-edge soundness under the storm.

#include <string>
#include <vector>

#include "gen/gen.hpp"
#include "hercules/workflow_manager.hpp"

namespace herc::gen {

struct ConformanceFailure {
  std::string check;   ///< dotted id, e.g. "adapter.petri_replay"
  std::string detail;  ///< human-readable explanation
};

struct ConformanceOptions {
  /// Planted bug for oracle self-validation: the Petri replay silently
  /// drops its final firing, so one run is missing from that leg.
  bool mutate_drop_firing = false;
};

/// Order/id/time-independent rendering of a manager's Level-3 state: the
/// "job" plan (activities, planned minutes, deps, completion flags), every
/// run (rule, tool, designer, status, inputs and output as type:name:version
/// triples) and every entity instance (with its producing activity), all
/// canonically sorted.  Two managers that executed the same flow by
/// different linearizations render byte-identically.
[[nodiscard]] std::string canonical_level3(const hercules::WorkflowManager& m);

/// Runs the three-path differential on a fault-free serial projection of
/// `scenario`.  Empty result = all paths conform.
[[nodiscard]] std::vector<ConformanceFailure> check_conformance(
    const Scenario& scenario, const ConformanceOptions& options = {});

/// Applies the scenario's AdversarialPlan (with its fault plan active).
/// `scratch_dir` hosts the recovery check's temporary journal.
[[nodiscard]] std::vector<ConformanceFailure> run_adversarial(
    const Scenario& scenario, const std::string& scratch_dir);

}  // namespace herc::gen
