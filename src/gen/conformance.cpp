#include "gen/conformance.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "adapters/petri.hpp"
#include "adapters/trace.hpp"
#include "core/cpm.hpp"
#include "hercules/journal.hpp"
#include "hercules/persist.hpp"
#include "query/query.hpp"
#include "util/fsio.hpp"

namespace herc::gen {

namespace {

using hercules::WorkflowManager;

std::string scratch_journal_path(const std::string& dir) {
  static std::atomic<std::uint64_t> counter{0};
  return dir + "/herc_conf_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".journal";
}

struct Fails {
  std::vector<ConformanceFailure>* out;
  void add(std::string check, std::string detail) {
    out->push_back({std::move(check), std::move(detail)});
  }
};

/// The rules reachable from the graph's target by following producer edges —
/// exactly the activities a task tree extracted for the target covers.  A
/// shrunk graph may keep rules outside this closure; they never execute, so
/// every cross-path check restricts itself to the closure.  Indices are in
/// graph (declaration) order.
std::vector<std::size_t> reachable_rules(const FlowGraph& graph) {
  std::unordered_map<std::string, std::size_t> producer;
  for (std::size_t i = 0; i < graph.rules.size(); ++i)
    producer[graph.rules[i].output] = i;
  std::unordered_set<std::size_t> seen;
  std::vector<std::string> frontier{graph.target};
  while (!frontier.empty()) {
    std::string type = std::move(frontier.back());
    frontier.pop_back();
    auto it = producer.find(type);
    if (it == producer.end() || !seen.insert(it->second).second) continue;
    for (const auto& in : graph.rules[it->second].inputs) frontier.push_back(in);
  }
  std::vector<std::size_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// Producer activity names per reachable rule: rule name -> the names of the
/// reachable rules producing its inputs (the static partial order every
/// execution path must respect).
std::unordered_map<std::string, std::set<std::string>> producer_sets(
    const FlowGraph& graph, const std::vector<std::size_t>& reachable) {
  std::unordered_map<std::string, std::size_t> producer;
  std::unordered_set<std::size_t> in_closure(reachable.begin(), reachable.end());
  for (std::size_t i : reachable) producer[graph.rules[i].output] = i;
  std::unordered_map<std::string, std::set<std::string>> out;
  for (std::size_t i : reachable) {
    auto& preds = out[graph.rules[i].name];
    for (const auto& in : graph.rules[i].inputs) {
      auto it = producer.find(in);
      if (it != producer.end() && in_closure.count(it->second))
        preds.insert(graph.rules[it->second].name);
    }
  }
  return out;
}

/// Fault-free serial projection: the three replay paths necessarily invoke
/// tools in different orders, and fault decisions hash the invocation index,
/// so equivalence is only defined with the injector off and retries,
/// timeouts and concurrency normalized away.
Scenario conformance_projection(const Scenario& scenario) {
  Scenario p = scenario;
  p.fault_seed = 0;
  p.faults = {};
  p.mode = ExecMode::kSerial;
  p.policy = exec::FailurePolicy::kAbort;
  p.max_attempts = 1;
  p.timeout_minutes = 0;
  return p;
}

std::string triple(const meta::Database& db, meta::EntityInstanceId id) {
  const auto& inst = db.instance(id);
  return inst.type_name + ":" + inst.name + ":" + std::to_string(inst.version);
}

util::Result<std::unique_ptr<WorkflowManager>> planned_manager(
    const Scenario& scenario) {
  auto made = make_manager(scenario);
  if (!made.ok()) return made;
  auto plan = made.value()->plan_task("job", {.anchor = made.value()->clock().now()});
  if (!plan.ok()) return plan.error();
  return made;
}

/// Sorted interned-string population of the execution space.
std::vector<std::string> symbol_set(const WorkflowManager& m) {
  const auto& pool = m.db().symbols();
  std::vector<std::string> out;
  out.reserve(pool.size());
  for (std::size_t i = 1; i <= pool.size(); ++i)
    out.push_back(pool.str(util::SymbolId{i}));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string canonical_level3(const WorkflowManager& m) {
  // Plans.  Baselines are the comparable dates: they are fixed when the plan
  // is first computed (identical across paths planning the same flow at the
  // same anchor), whereas planned_* get re-projected from actuals after every
  // run and therefore depend on the execution order.
  const auto& space = m.schedule_space();
  std::vector<std::string> plans;
  for (const auto& plan : space.plans()) {
    std::string line = "plan " + plan.name + " status=" +
                       (plan.status == sched::PlanStatus::kActive ? "active"
                                                                  : "superseded");
    std::vector<std::string> nodes, deps;
    for (auto nid : plan.nodes) {
      const auto& n = space.node(nid);
      nodes.push_back(n.activity + "@" +
                      std::to_string(n.baseline_start.minutes_since_epoch()) + "-" +
                      std::to_string(n.baseline_finish.minutes_since_epoch()) +
                      (n.completed ? "*" : ""));
    }
    for (const auto& d : plan.deps)
      deps.push_back(space.node(d.from).activity + "->" + space.node(d.to).activity);
    std::sort(nodes.begin(), nodes.end());
    std::sort(deps.begin(), deps.end());
    for (const auto& n : nodes) line += " n:" + n;
    for (const auto& d : deps) line += " d:" + d;
    plans.push_back(std::move(line));
  }
  std::sort(plans.begin(), plans.end());

  // Runs: identity by content, never by id or wall time.
  const auto& db = m.db();
  std::vector<std::string> runs;
  for (const auto& run : db.runs()) {
    std::string line = "run " + run.activity + " rule=" + run.rule.str() +
                       " tool=" + run.tool_binding + " designer=" + run.designer +
                       " status=" + meta::run_status_name(run.status);
    std::vector<std::string> ins;
    for (auto in : run.inputs) ins.push_back(triple(db, in));
    std::sort(ins.begin(), ins.end());
    for (const auto& in : ins) line += " in:" + in;
    line += " out:" + (run.output.valid() ? triple(db, run.output) : "(failed)");
    runs.push_back(std::move(line));
  }
  std::sort(runs.begin(), runs.end());

  std::vector<std::string> instances;
  for (const auto& inst : db.instances()) {
    std::string by = inst.produced_by.valid()
                         ? db.run(inst.produced_by).activity
                         : std::string("import");
    instances.push_back("instance " + inst.type_name + ":" + inst.name + ":" +
                        std::to_string(inst.version) + " by=" + by);
  }
  std::sort(instances.begin(), instances.end());

  std::string out = "schema " + m.schema().name() + "\n";
  for (const auto& p : plans) out += p + "\n";
  for (const auto& r : runs) out += r + "\n";
  for (const auto& i : instances) out += i + "\n";
  return out;
}

std::vector<ConformanceFailure> check_conformance(const Scenario& scenario,
                                                  const ConformanceOptions& options) {
  std::vector<ConformanceFailure> failures;
  Fails fail{&failures};
  if (scenario.graph.rules.empty()) return failures;

  Scenario proj = conformance_projection(scenario);
  auto reachable = reachable_rules(proj.graph);
  if (reachable.empty()) return failures;
  auto preds = producer_sets(proj.graph, reachable);
  std::unordered_map<std::string, std::int64_t> durations;
  for (std::size_t i : reachable)
    durations[proj.graph.rules[i].name] = proj.graph.rules[i].est_minutes;

  // --- leg 1: native serial execution ---------------------------------------
  auto made = planned_manager(proj);
  if (!made.ok()) {
    fail.add("adapter.setup", made.error().message);
    return failures;
  }
  std::unique_ptr<WorkflowManager> native = std::move(made).take();
  auto exec = native->execute_task("job", "conform");
  if (!exec.ok() || !exec.value().success) {
    fail.add("adapter.native",
             "fault-free native execution failed: " +
                 (exec.ok() ? "unsuccessful run" : exec.error().message));
    return failures;
  }
  std::string want = canonical_level3(*native);

  // --- leg 2: timed Petri token game, then replay the firing sequence -------
  auto made2 = planned_manager(proj);
  if (!made2.ok()) {
    fail.add("adapter.setup", made2.error().message);
    return failures;
  }
  std::unique_ptr<WorkflowManager> petri_m = std::move(made2).take();
  auto tree = petri_m->task("job");
  if (!tree.ok()) {
    fail.add("adapter.setup", tree.error().message);
    return failures;
  }
  adapters::PetriBuildOptions build;
  build.durations = &durations;
  auto conv = adapters::petri_from_task_tree(*tree.value(), build);
  if (!conv.ok()) {
    fail.add("adapter.petri_build", conv.error().message);
    return failures;
  }
  adapters::PetriConversion pc = std::move(conv).take();
  auto firings = pc.net.run_timed_to_quiescence();

  // Structural validity of the firing log: every reachable activity fires
  // exactly once, no firing precedes its producers (neither in sequence nor
  // in time), and the final marking is the expected one (ready places
  // drained, tools returned, target produced).
  std::unordered_map<std::string, std::int64_t> finish_of;
  bool petri_ok = true;
  if (firings.size() != reachable.size()) {
    fail.add("adapter.petri_firings",
             "timed run fired " + std::to_string(firings.size()) + " of " +
                 std::to_string(reachable.size()) + " reachable activities");
    petri_ok = false;
  }
  for (const auto& f : firings) {
    const std::string& act = pc.activity_of_transition[f.transition];
    if (!finish_of.emplace(act, f.finish).second) {
      fail.add("adapter.petri_once", "activity '" + act + "' fired twice");
      petri_ok = false;
      break;
    }
    auto it = preds.find(act);
    if (it == preds.end()) {
      fail.add("adapter.petri_unknown", "fired unknown activity '" + act + "'");
      petri_ok = false;
      break;
    }
    for (const auto& p : it->second) {
      auto done = finish_of.find(p);
      if (done == finish_of.end()) {
        fail.add("adapter.petri_order",
                 "'" + act + "' fired before its producer '" + p + "'");
        petri_ok = false;
      } else if (f.start < done->second) {
        fail.add("adapter.petri_time",
                 "'" + act + "' started before its producer '" + p + "' finished");
        petri_ok = false;
      }
    }
    if (!petri_ok) break;
  }
  if (petri_ok) {
    for (auto p : pc.ready_places)
      if (pc.net.marking(p) != 0) {
        fail.add("adapter.petri_marking",
                 "ready place '" + pc.net.place_name(p) + "' not drained");
        petri_ok = false;
      }
    for (auto p : pc.tool_places)
      if (pc.net.marking(p) != 1) {
        fail.add("adapter.petri_marking",
                 "tool place '" + pc.net.place_name(p) + "' not returned");
        petri_ok = false;
      }
    if (pc.net.marking(pc.target_place) < 1) {
      fail.add("adapter.petri_marking", "target place empty after quiescence");
      petri_ok = false;
    }
  }

  if (petri_ok) {
    // The planted divergence: the replay silently skips the last firing, so
    // one run is missing from this leg's metadata.
    auto replay = firings;
    if (options.mutate_drop_firing && !replay.empty()) replay.pop_back();
    for (const auto& f : replay) {
      const std::string& act = pc.activity_of_transition[f.transition];
      auto r = petri_m->run_activity("job", act, "conform");
      if (!r.ok() || !r.value().success) {
        fail.add("adapter.petri_replay",
                 "replaying '" + act + "' failed: " +
                     (r.ok() ? "unsuccessful run" : r.error().message));
        petri_ok = false;
        break;
      }
    }
    if (petri_ok && canonical_level3(*petri_m) != want)
      fail.add("adapter.petri_replay",
               "Petri firing replay produced different Level-3 metadata than "
               "native execution");
  }

  // --- timed-makespan differential: unshared tools == CPM --------------------
  adapters::PetriBuildOptions unshared;
  unshared.shared_tools = false;
  unshared.durations = &durations;
  auto conv2 = adapters::petri_from_task_tree(*tree.value(), unshared);
  if (!conv2.ok()) {
    fail.add("adapter.petri_build", conv2.error().message);
  } else {
    auto timed = conv2.value().net.run_timed_to_quiescence();
    std::int64_t petri_makespan = 0;
    for (const auto& f : timed) petri_makespan = std::max(petri_makespan, f.finish);
    std::vector<sched::CpmActivity> net(reachable.size());
    std::unordered_map<std::string, std::size_t> dense;
    for (std::size_t i = 0; i < reachable.size(); ++i)
      dense[proj.graph.rules[reachable[i]].name] = i;
    for (std::size_t i = 0; i < reachable.size(); ++i) {
      net[i].duration = proj.graph.rules[reachable[i]].est_minutes;
      for (const auto& p : preds[proj.graph.rules[reachable[i]].name])
        net[i].preds.push_back(dense[p]);
    }
    auto cpm = sched::compute_cpm(net);
    if (!cpm.ok()) {
      fail.add("adapter.petri_makespan", cpm.error().message);
    } else if (timed.size() != reachable.size() ||
               petri_makespan != cpm.value().makespan) {
      fail.add("adapter.petri_makespan",
               "unshared-tool timed Petri makespan " +
                   std::to_string(petri_makespan) + " != CPM makespan " +
                   std::to_string(cpm.value().makespan));
    }
  }

  // --- leg 3: VOV trace replay ----------------------------------------------
  auto trace = adapters::TraceGraph::capture(native->db());
  if (trace.transaction_count() != reachable.size())
    fail.add("adapter.trace_count",
             "trace captured " + std::to_string(trace.transaction_count()) +
                 " transactions for " + std::to_string(reachable.size()) +
                 " reachable activities");
  for (const auto& derived : trace.derive_flow()) {
    std::set<std::string> observed(derived.predecessors.begin(),
                                   derived.predecessors.end());
    auto it = preds.find(derived.activity);
    if (it == preds.end() || observed != it->second) {
      fail.add("adapter.trace_flow",
               "derived flow for '" + derived.activity +
                   "' disagrees with the generator graph");
      break;
    }
  }
  auto made3 = planned_manager(proj);
  if (!made3.ok()) {
    fail.add("adapter.setup", made3.error().message);
    return failures;
  }
  std::unique_ptr<WorkflowManager> trace_m = std::move(made3).take();
  bool trace_ok = true;
  for (const auto& act : trace.replay_order()) {
    auto r = trace_m->run_activity("job", act, "conform");
    if (!r.ok() || !r.value().success) {
      fail.add("adapter.trace_replay",
               "replaying '" + act + "' failed: " +
                   (r.ok() ? "unsuccessful run" : r.error().message));
      trace_ok = false;
      break;
    }
  }
  if (trace_ok && canonical_level3(*trace_m) != want)
    fail.add("adapter.trace_replay",
             "VOV trace replay produced different Level-3 metadata than native "
             "execution");

  // --- leg 4: concurrent dispatch -------------------------------------------
  auto made4 = planned_manager(proj);
  if (!made4.ok()) {
    fail.add("adapter.setup", made4.error().message);
    return failures;
  }
  std::unique_ptr<WorkflowManager> conc_m = std::move(made4).take();
  auto cexec = conc_m->execute_task_concurrent("job", "conform");
  if (!cexec.ok() || !cexec.value().success) {
    fail.add("adapter.concurrent",
             "fault-free concurrent execution failed: " +
                 (cexec.ok() ? "unsuccessful run" : cexec.error().message));
  } else if (canonical_level3(*conc_m) != want) {
    fail.add("adapter.concurrent",
             "concurrent execution produced different Level-3 metadata than "
             "serial execution");
  }

  // --- cross-path query + symbol differential --------------------------------
  const std::vector<std::string> statements = {
      "select count from runs group by activity",
      "select count from instances group by type",
      "select count from runs group by designer",
  };
  const WorkflowManager* legs[] = {petri_m.get(), trace_m.get(), conc_m.get()};
  const char* leg_names[] = {"petri", "trace", "concurrent"};
  for (const auto& s : statements) {
    auto base = native->query(s);
    std::string want_rows = base.ok() ? base.value() : "error";
    for (std::size_t i = 0; i < 3; ++i) {
      auto got = legs[i]->query(s);
      if ((got.ok() ? got.value() : "error") != want_rows) {
        fail.add("adapter.query", std::string(leg_names[i]) +
                                      " leg renders different rows for '" + s + "'");
      }
    }
  }
  auto want_symbols = symbol_set(*native);
  for (std::size_t i = 0; i < 3; ++i)
    if (symbol_set(*legs[i]) != want_symbols)
      fail.add("adapter.symbols", std::string(leg_names[i]) +
                                      " leg interned a different symbol set");

  // --- retrace: VOV's prediction vs refresh_task (mutates `native`; last) ----
  std::set<std::string> primary;
  for (std::size_t i : reachable)
    for (const auto& in : proj.graph.rules[i].inputs) {
      bool produced = false;
      for (std::size_t j : reachable) produced |= proj.graph.rules[j].output == in;
      if (!produced) primary.insert(in);  // imported as "<in>.in"
    }
  if (!primary.empty()) {
    const std::string& type = *primary.begin();
    auto inst = native->db().latest_named(type, type + ".in");
    if (!inst) {
      fail.add("adapter.retrace", "imported input '" + type + ".in' not found");
    } else {
      auto predicted = trace.retrace_activities({*inst});
      (void)native->db().create_instance(type, type + ".in", meta::RunId{},
                                         util::DataObjectId{},
                                         native->clock().now());
      auto refreshed = native->refresh_task("job", "conform");
      if (!refreshed.ok()) {
        fail.add("adapter.retrace", refreshed.error().message);
      } else {
        std::set<std::string> want_set(predicted.begin(), predicted.end());
        std::set<std::string> got_set;
        for (const auto& r : refreshed.value())
          got_set.insert(native->db().run(r.run).activity);
        if (want_set != got_set)
          fail.add("adapter.retrace",
                   "trace retrace prediction (" + std::to_string(want_set.size()) +
                       " activities) != refresh_task re-runs (" +
                       std::to_string(got_set.size()) + ")");
      }
    }
  }
  return failures;
}

std::vector<ConformanceFailure> run_adversarial(const Scenario& scenario,
                                                const std::string& scratch_dir) {
  std::vector<ConformanceFailure> failures;
  Fails fail{&failures};
  if (scenario.graph.rules.empty()) return failures;
  const AdversarialPlan& plan = scenario.adversarial;
  auto reachable = reachable_rules(scenario.graph);
  if (reachable.empty()) return failures;
  std::unordered_set<std::string> in_tree;
  for (std::size_t i : reachable) in_tree.insert(scenario.graph.rules[i].name);
  auto preds = producer_sets(scenario.graph, reachable);

  std::vector<std::string> post_order;
  for (std::size_t i : reachable) post_order.push_back(scenario.graph.rules[i].name);
  // Declaration order is a valid topological order (generators only consume
  // earlier types), so driving in graph order is a legal post-order sweep.

  // --- (a) planned manager: mid-flight replans under the fault plan ---------
  auto made = planned_manager(scenario);
  if (!made.ok()) {
    fail.add("adversarial.setup", made.error().message);
    return failures;
  }
  std::unique_ptr<WorkflowManager> m1 = std::move(made).take();
  std::vector<int> replans = plan.replans;
  std::sort(replans.begin(), replans.end());
  std::size_t next_replan = 0, replans_done = 0;
  sched::ScheduleRunId current_plan = m1->plan_of("job").value();
  int completed = 0;
  bool crashed1 = false;
  for (const auto& act : post_order) {
    try {
      auto r = m1->run_activity("job", act, "adv");
      if (!r.ok()) break;  // abort semantics: stop at the first structural error
      if (!r.value().success) break;
    } catch (const exec::InjectedCrash&) {
      crashed1 = true;
      break;
    }
    ++completed;
    while (next_replan < replans.size() && replans[next_replan] <= completed) {
      ++next_replan;
      auto rp = m1->replan_task("job", {.anchor = m1->clock().now()});
      if (!rp.ok()) {
        fail.add("adversarial.replan", rp.error().message);
        continue;
      }
      const auto& p = m1->schedule_space().plan(rp.value());
      if (p.derived_from != current_plan)
        fail.add("adversarial.replan",
                 "replanned plan does not derive from the previous plan");
      if (m1->plan_of("job") != std::optional<sched::ScheduleRunId>(rp.value()))
        fail.add("adversarial.replan", "replan did not become the tracked plan");
      current_plan = rp.value();
      ++replans_done;
    }
  }
  if (!crashed1) {
    // Plan lineage after the storm: one ancestor per successful replan, the
    // head active and every ancestor superseded.
    auto lineage = m1->schedule_space().lineage(current_plan);
    if (lineage.size() != replans_done + 1) {
      fail.add("adversarial.lineage",
               "plan lineage depth " + std::to_string(lineage.size()) + " != " +
                   std::to_string(replans_done + 1));
    } else {
      const auto& space = m1->schedule_space();
      for (std::size_t i = 0; i < lineage.size(); ++i) {
        auto status = space.plan(lineage[i]).status;
        if ((i == 0) != (status == sched::PlanStatus::kActive)) {
          fail.add("adversarial.lineage",
                   "plan lineage statuses are not head-active/rest-superseded");
          break;
        }
      }
    }
  }

  // --- (b) journaled, UNPLANNED manager: edit storm + recovery ---------------
  // The journal records execution space only, so this manager never plans
  // (a plan would appear in the final save but not in the recovered one).
  auto made2 = make_manager(scenario);
  if (!made2.ok()) {
    fail.add("adversarial.setup", made2.error().message);
    return failures;
  }
  std::unique_ptr<WorkflowManager> m2 = std::move(made2).take();
  std::string path = scratch_journal_path(scratch_dir);
  std::string snapshot = hercules::save_to_json(*m2);
  if (!m2->enable_journal(path).ok()) {
    fail.add("adversarial.journal", "cannot open scratch journal");
    return failures;
  }

  bool crashed = false;
  auto drive = [&](const std::string& act, const std::string& designer) {
    try {
      auto r = m2->run_activity("job", act, designer);
      return r.ok() && r.value().success;
    } catch (const exec::InjectedCrash&) {
      crashed = true;
      return false;
    }
  };
  for (const auto& act : post_order) {
    if (!drive(act, "adv") ) break;
  }
  if (!crashed) {
    // Input revisions first, conflicting edits and the refresh after: the
    // journal captures bare imports with the NEXT recorded run, so a run
    // must always follow the revisions for the recovery identity to hold.
    auto primaries = scenario.graph.primary_inputs();
    for (std::size_t idx : plan.input_revisions) {
      if (primaries.empty()) break;
      const std::string& type = primaries[idx % primaries.size()];
      (void)m2->db().create_instance(type, type + ".in", meta::RunId{},
                                     util::DataObjectId{}, m2->clock().now());
    }
    for (const auto& edit : plan.edits) {
      if (crashed) break;
      const auto& rule =
          scenario.graph.rules[edit.rule % scenario.graph.rules.size()];
      if (!in_tree.count(rule.name)) continue;
      (void)drive(rule.name, edit.designer);
    }
    if (!crashed) {
      auto refreshed = ([&]() -> util::Result<std::vector<exec::ActivityRunResult>> {
        try {
          return m2->refresh_task("job", "adv");
        } catch (const exec::InjectedCrash&) {
          crashed = true;
          return std::vector<exec::ActivityRunResult>{};
        }
      })();
      if (!crashed && !refreshed.ok()) {
        fail.add("adversarial.refresh", refreshed.error().message);
        std::remove(path.c_str());
        return failures;
      }
    }
  }

  std::string journal;
  if (auto read = util::read_file(path); read.ok()) journal = std::move(read).take();
  std::remove(path.c_str());

  if (crashed) {
    auto rec = hercules::recover_from_json(snapshot, journal);
    if (!rec.ok())
      fail.add("adversarial.recover_crash", rec.error().message);
    else if (rec.value()->db().run_count() != hercules::journal_lines(journal).size())
      fail.add("adversarial.recover_crash",
               "recovered run count != journal line count after a crash storm");
  } else {
    std::string final_save = hercules::save_to_json(*m2);
    auto rec = hercules::recover_from_json(snapshot, journal);
    if (!rec.ok()) {
      fail.add("adversarial.recover_identity", rec.error().message);
    } else if (hercules::save_to_json(*rec.value()) != final_save) {
      fail.add("adversarial.recover_identity",
               "snapshot+journal replay differs from the post-storm save");
    }
  }

  // Query fast path stays coherent over the stormed state.
  query::QueryEngine fast(m2->db(), m2->schedule_space());
  query::QueryEngine slow(m2->db(), m2->schedule_space());
  slow.set_options({.use_index = false, .use_cache = false});
  for (const char* s : {"select count from runs group by activity",
                        "select count from runs group by designer",
                        "select count from instances group by type"}) {
    auto a = fast.execute(s);
    auto b = slow.execute(s);
    std::string fa = a.ok() ? a.value().render() : "error: " + a.error().message;
    std::string fb = b.ok() ? b.value().render() : "error: " + b.error().message;
    if (fa != fb)
      fail.add("adversarial.query",
               std::string("index path differs from scan path for '") + s + "'");
  }

  // Trace edges stay sound under multi-designer edits and revisions: every
  // observed predecessor must be a static producer of that activity.
  auto trace = adapters::TraceGraph::capture(m2->db());
  for (const auto& derived : trace.derive_flow()) {
    auto it = preds.find(derived.activity);
    if (it == preds.end()) {
      fail.add("adversarial.trace_edges",
               "trace observed unknown activity '" + derived.activity + "'");
      break;
    }
    for (const auto& p : derived.predecessors)
      if (!it->second.count(p)) {
        fail.add("adversarial.trace_edges",
                 "trace edge " + p + " -> " + derived.activity +
                     " is not in the generator graph");
        break;
      }
  }
  return failures;
}

}  // namespace herc::gen
