#include "gen/fuzz.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/cpm_solver.hpp"
#include "core/risk.hpp"
#include "core/worker_pool.hpp"
#include "gen/conformance.hpp"
#include "hercules/journal.hpp"
#include "hercules/persist.hpp"
#include "query/query.hpp"
#include "schema/schema.hpp"
#include "util/fsio.hpp"

namespace herc::gen {

namespace {

using hercules::WorkflowManager;

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Unique scratch path for a journal file; parallel test processes are
/// disambiguated by pid, in-process callers by an atomic counter.
std::string scratch_journal_path(const std::string& dir) {
  static std::atomic<std::uint64_t> counter{0};
  return dir + "/herc_fuzz_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".journal";
}

struct Failures {
  std::vector<OracleFailure>* out;
  void add(unsigned family, std::string check, std::string detail) {
    out->push_back({family, std::move(check), std::move(detail)});
  }
};

bool has_crash_faults(const exec::FaultPlan& plan) {
  if (plan.crash_after_total > 0) return true;
  for (const auto& [name, f] : plan.tools)
    if (!f.crash_on.empty()) return true;
  return false;
}

// --- cpm oracle --------------------------------------------------------------

bool same_cpm(const sched::CpmResult& a, const sched::CpmResult& b) {
  return a.early_start == b.early_start && a.early_finish == b.early_finish &&
         a.late_start == b.late_start && a.late_finish == b.late_finish &&
         a.total_slack == b.total_slack && a.free_slack == b.free_slack &&
         a.critical == b.critical && a.makespan == b.makespan;
}

/// A critical path must be a connected chain of critical activities ending
/// at the makespan; the reference cannot predict which of several longest
/// paths the solver reports, so the path is checked structurally.
bool valid_critical_path(const std::vector<sched::CpmActivity>& net,
                         const sched::CpmResult& r) {
  if (net.empty()) return r.critical_path.empty();
  if (r.critical_path.empty()) return r.makespan == 0;
  for (std::size_t i = 0; i < r.critical_path.size(); ++i) {
    std::size_t a = r.critical_path[i];
    if (a >= net.size() || !r.critical[a]) return false;
    if (i == 0) continue;
    std::size_t prev = r.critical_path[i - 1];
    const auto& preds = net[a].preds;
    if (std::find(preds.begin(), preds.end(), prev) == preds.end()) return false;
  }
  return r.early_finish[r.critical_path.back()] == r.makespan;
}

void check_cpm(const Scenario& scenario, Mutation mutation, Failures& fail) {
  auto net = cpm_network(scenario);
  // The planted bug: the network handed to the system under test is off by
  // one minute on its first activity; the reference sees the true network.
  auto buggy = net;
  if (mutation == Mutation::kCpmOffByOne && !buggy.empty()) buggy[0].duration += 1;

  auto full = sched::compute_cpm(buggy);
  auto ref = reference_cpm(net);
  if (!full.ok() || !ref.ok()) {
    if (full.ok() != ref.ok())
      fail.add(kOracleCpm, "cpm.validity",
               "compute_cpm and reference disagree on network validity");
    return;
  }
  if (!same_cpm(full.value(), ref.value()))
    fail.add(kOracleCpm, "cpm.reference",
             "compute_cpm disagrees with naive fixpoint reference");
  if (!valid_critical_path(buggy, full.value()))
    fail.add(kOracleCpm, "cpm.path", "reported critical path is not a valid chain");

  // Incremental: compile once, perturb every duration and restore it, then
  // re-solve; the final incremental solution must match the one-shot solve.
  auto compiled = sched::CpmSolver::compile(buggy);
  if (!compiled.ok()) {
    fail.add(kOracleCpm, "cpm.compile", compiled.error().message);
    return;
  }
  sched::CpmSolver solver = std::move(compiled).take();
  sched::CpmResult incremental;
  solver.solve(incremental);
  for (std::size_t i = 0; i < buggy.size(); ++i) {
    solver.set_duration(i, buggy[i].duration + 17);
    (void)solver.solve_makespan();
    solver.set_duration(i, buggy[i].duration);
  }
  solver.solve(incremental);
  if (!same_cpm(incremental, full.value()) ||
      incremental.critical_path != full.value().critical_path)
    fail.add(kOracleCpm, "cpm.incremental",
             "incrementally re-solved CpmSolver diverged from compute_cpm");

  // Level-parallel leg: the blocked passes over a multi-thread pool must be
  // byte-identical to the serial solve (threshold forced to 0 so even the
  // fuzzer's small networks take the parallel path, with a tiny chunk so
  // every level actually splits).
  {
    static sched::WorkerPool pool(4);
    sched::CpmResult par;
    solver.solve(par, {.pool = &pool, .serial_threshold = 0, .chunk = 3});
    if (!same_cpm(par, full.value()) ||
        par.critical_path != full.value().critical_path)
      fail.add(kOracleCpm, "cpm.parallel",
               "level-parallel solve diverged from the serial solver");
  }

  // Batched leg: identical durations in every lane must reproduce the
  // serial makespan and criticality per lane.
  if (const std::size_t n = buggy.size(); n > 0) {
    constexpr std::size_t kLanes = 3;
    std::vector<std::int64_t> durs(n * kLanes);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t l = 0; l < kLanes; ++l)
        durs[i * kLanes + l] = buggy[i].duration;
    std::vector<std::int64_t> makespans(kLanes);
    std::vector<std::uint8_t> crit(n * kLanes);
    solver.solve_batch(durs.data(), kLanes, makespans.data(), crit.data());
    bool ok = true;
    for (std::size_t l = 0; l < kLanes; ++l) {
      ok = ok && makespans[l] == full.value().makespan;
      for (std::size_t i = 0; i < n; ++i)
        ok = ok && crit[i * kLanes + l] == full.value().critical[i];
    }
    if (!ok)
      fail.add(kOracleCpm, "cpm.batch",
               "batched lanes diverged from the serial solver");
  }
}

// --- mirror oracle -----------------------------------------------------------

/// First completed run of each activity, in completion-record order.
std::vector<const meta::Run*> completed_in_order(const WorkflowManager& m) {
  std::vector<const meta::Run*> done;
  std::unordered_set<std::string> seen;
  for (const auto& run : m.db().runs())
    if (run.status == meta::RunStatus::kCompleted && seen.insert(run.activity).second)
      done.push_back(&run);
  return done;
}

void check_mirror(const Scenario& scenario, WorkflowManager& m,
                  sched::ScheduleRunId plan_id, Mutation mutation, Failures& fail) {
  const auto& space = m.schedule_space();
  const auto& plan = space.plan(plan_id);
  std::vector<std::string> planned;
  std::unordered_map<std::string, schema::RuleId> planned_rule;
  for (auto nid : plan.nodes) {
    planned.push_back(space.node(nid).activity);
    planned_rule[space.node(nid).activity] = space.node(nid).rule;
  }

  bool crashed = false, success = false;
  try {
    util::Result<exec::ExecutionResult> result =
        scenario.mode == ExecMode::kConcurrent ? m.execute_task_concurrent("job", "fuzz")
                                               : m.execute_task("job", "fuzz");
    if (!result.ok()) {
      fail.add(kOracleMirror, "mirror.execute", result.error().message);
      return;
    }
    success = result.value().success;
  } catch (const exec::InjectedCrash&) {
    crashed = true;  // state up to the crash is still checkable
  }

  auto done = completed_in_order(m);
  if (mutation == Mutation::kMirrorDropRun && !done.empty()) done.pop_back();

  // Every completed activity was planned, with the same construction rule —
  // the node-for-node isomorphism between the two Level-3 spaces.
  for (const auto* run : done) {
    auto it = planned_rule.find(run->activity);
    if (it == planned_rule.end()) {
      fail.add(kOracleMirror, "mirror.unplanned",
               "executed activity '" + run->activity + "' has no schedule node");
      return;
    }
    if (it->second != run->rule)
      fail.add(kOracleMirror, "mirror.rule",
               "rule mismatch between plan and run for '" + run->activity + "'");
  }

  if (scenario.mode == ExecMode::kSerial) {
    // Completion order must be an order-preserving subsequence of the plan
    // (a strict prefix under abort policies; kContinueIndependent may skip).
    std::size_t pi = 0;
    for (const auto* run : done) {
      while (pi < planned.size() && planned[pi] != run->activity) ++pi;
      if (pi == planned.size()) {
        fail.add(kOracleMirror, "mirror.order",
                 "completion order is not a subsequence of the planned order");
        break;
      }
      ++pi;
    }
  }

  // Dependency edges are temporal facts: a completed successor can only
  // start after its completed predecessor finished.
  std::unordered_map<std::string, const meta::Run*> first_run;
  for (const auto* run : done) first_run[run->activity] = run;
  for (const auto& dep : plan.deps) {
    auto from = first_run.find(space.node(dep.from).activity);
    auto to = first_run.find(space.node(dep.to).activity);
    if (from == first_run.end() || to == first_run.end()) continue;
    if (to->second->started_at < from->second->finished_at)
      fail.add(kOracleMirror, "mirror.deps",
               "'" + to->second->activity + "' started before its predecessor '" +
                   from->second->activity + "' finished");
  }

  if (!crashed && success) {
    if (done.size() != planned.size())
      fail.add(kOracleMirror, "mirror.complete",
               "successful execution completed " + std::to_string(done.size()) +
                   " of " + std::to_string(planned.size()) + " planned activities");
    // Link the target's completion and confirm the tracker mirrors it back
    // into schedule space.
    if (!planned.empty() && done.size() == planned.size()) {
      const std::string& last = planned.back();
      auto st = m.link_completion("job", last);
      if (!st.ok()) {
        fail.add(kOracleMirror, "mirror.link", st.error().message);
      } else {
        auto node = space.node_in_plan(plan_id, last);
        if (!node || !space.node(*node).completed)
          fail.add(kOracleMirror, "mirror.track",
                   "linked activity '" + last + "' not marked completed in plan");
      }
      if (!m.query("select runs").ok())
        fail.add(kOracleMirror, "mirror.query", "'select runs' failed after execution");
    }
  }
}

// --- recovery oracle ---------------------------------------------------------

std::string join_lines(const std::vector<std::string_view>& lines, std::size_t begin,
                       std::size_t end) {
  std::string text;
  for (std::size_t i = begin; i < end && i < lines.size(); ++i) {
    text.append(lines[i]);
    text.push_back('\n');
  }
  return text;
}

/// Executes the scenario on a journaled manager (no plan: the journal does
/// not capture schedule space) and returns false if setup failed.
bool journaled_execute(const Scenario& scenario, WorkflowManager& m, bool* crashed) {
  *crashed = false;
  try {
    util::Result<exec::ExecutionResult> result =
        scenario.mode == ExecMode::kConcurrent ? m.execute_task_concurrent("job", "fuzz")
                                               : m.execute_task("job", "fuzz");
    return result.ok();
  } catch (const exec::InjectedCrash&) {
    *crashed = true;
    return true;
  }
}

void check_recovery(const Scenario& scenario, Mutation mutation,
                    const std::string& scratch_dir, Failures& fail) {
  auto made = make_manager(scenario);
  if (!made.ok()) {
    fail.add(kOracleRecovery, "recovery.setup", made.error().message);
    return;
  }
  std::unique_ptr<WorkflowManager> m = std::move(made).take();
  std::string path = scratch_journal_path(scratch_dir);
  std::string snapshot = hercules::save_to_json(*m);
  if (!m->enable_journal(path).ok()) {
    fail.add(kOracleRecovery, "recovery.journal", "cannot open scratch journal");
    return;
  }

  bool crashed = false;
  if (!journaled_execute(scenario, *m, &crashed)) {
    fail.add(kOracleRecovery, "recovery.execute", "execution errored structurally");
    std::remove(path.c_str());
    return;
  }
  std::string journal;
  if (auto read = util::read_file(path); read.ok()) journal = std::move(read).take();
  std::remove(path.c_str());

  auto lines = hercules::journal_lines(journal);
  if (mutation == Mutation::kRecoveryDropLine && !lines.empty()) {
    journal = join_lines(lines, 0, lines.size() - 1);
    lines = hercules::journal_lines(journal);
  }

  auto recover_save = [&](std::string_view snap,
                          std::string_view log) -> std::optional<std::string> {
    auto rec = hercules::recover_from_json(snap, log);
    if (!rec.ok()) {
      fail.add(kOracleRecovery, "recovery.replay", rec.error().message);
      return std::nullopt;
    }
    return hercules::save_to_json(*rec.value());
  };

  if (crashed || has_crash_faults(scenario.faults)) {
    // The in-memory post-crash state includes un-journaled imports, so the
    // only ground truth is the journal itself: recovery must succeed and
    // contain exactly the journaled runs.
    auto rec = hercules::recover_from_json(snapshot, journal);
    if (!rec.ok()) {
      fail.add(kOracleRecovery, "recovery.crash_replay", rec.error().message);
      return;
    }
    if (rec.value()->db().run_count() != lines.size())
      fail.add(kOracleRecovery, "recovery.crash_runs",
               "recovered run count != journal line count");
    return;
  }

  // (c1) Uninterrupted: snapshot + full journal == the final save, bytes.
  std::string final_save = hercules::save_to_json(*m);
  auto recovered = recover_save(snapshot, journal);
  if (!recovered) return;
  if (*recovered != final_save) {
    fail.add(kOracleRecovery, "recovery.identity",
             "snapshot+journal replay differs from uninterrupted save");
    return;
  }

  // (c2) Composition across crash points: recovering a prefix, snapshotting,
  // then replaying the remainder lands on the same final state; a torn tail
  // after the prefix changes nothing.
  for (std::size_t p : {std::size_t{0}, lines.size() / 2, lines.size()}) {
    std::string prefix = join_lines(lines, 0, p);
    auto at_p = recover_save(snapshot, prefix);
    if (!at_p) return;
    auto torn = recover_save(snapshot, prefix + "{\"clock\": 1");
    if (!torn) return;
    if (*torn != *at_p) {
      fail.add(kOracleRecovery, "recovery.torn",
               "torn trailing line changed the recovered state");
      return;
    }
    auto resumed = recover_save(*at_p, join_lines(lines, p, lines.size()));
    if (!resumed) return;
    if (*resumed != final_save) {
      fail.add(kOracleRecovery, "recovery.compose",
               "prefix recovery at line " + std::to_string(p) +
                   " does not compose to the final state");
      return;
    }
  }

  // (c3) A real injected crash: same scenario with crash_after_total = k.
  // The run sequence up to the crash is identical (fault decisions are pure
  // hashes), so the crashed journal must be a byte-prefix of the full one.
  std::uint64_t total = m->tools().total_invocations();
  if (total == 0) return;
  util::Rng pick(scenario.spec.seed ^ 0xC4A5C4A5ull);
  std::uint64_t k = static_cast<std::uint64_t>(
      pick.uniform_int(1, static_cast<std::int64_t>(total)));

  auto crash_scenario = scenario;
  crash_scenario.fault_seed = scenario.fault_seed ? scenario.fault_seed : 1;
  crash_scenario.faults.crash_after_total = k;
  auto made3 = make_manager(crash_scenario);
  if (!made3.ok()) {
    fail.add(kOracleRecovery, "recovery.crash_setup", made3.error().message);
    return;
  }
  std::unique_ptr<WorkflowManager> m3 = std::move(made3).take();
  std::string path3 = scratch_journal_path(scratch_dir);
  std::string snapshot3 = hercules::save_to_json(*m3);
  if (snapshot3 != snapshot)
    fail.add(kOracleRecovery, "recovery.crash_snapshot",
             "pre-execution snapshot not reproducible");
  if (!m3->enable_journal(path3).ok()) {
    fail.add(kOracleRecovery, "recovery.journal", "cannot open scratch journal");
    return;
  }
  bool crashed3 = false;
  (void)journaled_execute(crash_scenario, *m3, &crashed3);
  if (!crashed3)
    fail.add(kOracleRecovery, "recovery.crash_missing",
             "crash_after_total=" + std::to_string(k) + " did not crash");
  std::string journal3;
  if (auto read = util::read_file(path3); read.ok()) journal3 = std::move(read).take();
  std::remove(path3.c_str());

  if (journal.compare(0, journal3.size(), journal3) != 0) {
    fail.add(kOracleRecovery, "recovery.crash_prefix",
             "crashed journal is not a prefix of the uninterrupted journal");
    return;
  }
  auto rec3 = hercules::recover_from_json(snapshot, journal3);
  if (!rec3.ok()) {
    fail.add(kOracleRecovery, "recovery.crash_replay", rec3.error().message);
    return;
  }
  if (rec3.value()->db().run_count() != hercules::journal_lines(journal3).size())
    fail.add(kOracleRecovery, "recovery.crash_runs",
             "recovered run count != crashed journal line count");
}

// --- risk oracle -------------------------------------------------------------

bool same_risk(const sched::RiskReport& a, const sched::RiskReport& b) {
  if (a.samples != b.samples || a.deterministic_finish != b.deterministic_finish ||
      a.mean_finish != b.mean_finish || a.p50_finish != b.p50_finish ||
      a.p90_finish != b.p90_finish || a.on_time_probability != b.on_time_probability ||
      a.activities.size() != b.activities.size())
    return false;
  for (std::size_t i = 0; i < a.activities.size(); ++i) {
    if (a.activities[i].activity != b.activities[i].activity ||
        a.activities[i].criticality != b.activities[i].criticality ||
        a.activities[i].mean_duration != b.activities[i].mean_duration)
      return false;
  }
  return true;
}

void check_risk(const Scenario& scenario, WorkflowManager& m,
                sched::ScheduleRunId plan_id, Mutation mutation, Failures& fail) {
  sched::RiskOptions base{.samples = 200,
                          .seed = scenario.spec.seed ? scenario.spec.seed : 1,
                          .threads = 1};
  auto one = sched::analyze_risk(m.schedule_space(), m.db(), plan_id, base);
  if (!one.ok()) {
    fail.add(kOracleRisk, "risk.analyze", one.error().message);
    return;
  }
  for (int threads : {2, 5}) {
    sched::RiskOptions opts = base;
    opts.threads = threads;
    if (mutation == Mutation::kRiskSeedSkew) opts.seed = base.seed + 1;
    auto many = sched::analyze_risk(m.schedule_space(), m.db(), plan_id, opts);
    if (!many.ok()) {
      fail.add(kOracleRisk, "risk.analyze", many.error().message);
      return;
    }
    if (!same_risk(one.value(), many.value())) {
      fail.add(kOracleRisk, "risk.threads",
               "risk report differs between 1 and " + std::to_string(threads) +
                   " threads");
      return;
    }
  }
}

// --- metamorphic oracle ------------------------------------------------------

/// Rule-permuted, renamed copy of the flow: every name prefixed with "x_"
/// and the rule list reversed.  Semantically the identical network.
Scenario relabeled(const Scenario& scenario) {
  Scenario t = scenario;
  t.graph.schema_name = "x_" + t.graph.schema_name;
  for (auto& d : t.graph.data_types) d = "x_" + d;
  for (auto& r : t.graph.rules) {
    r.name = "x_" + r.name;
    r.output = "x_" + r.output;
    for (auto& in : r.inputs) in = "x_" + in;
  }
  t.graph.target = "x_" + t.graph.target;
  std::reverse(t.graph.rules.begin(), t.graph.rules.end());
  return t;
}

std::optional<std::int64_t> planned_makespan(const Scenario& scenario, Failures& fail) {
  auto made = make_manager(scenario);
  if (!made.ok()) {
    fail.add(kOracleMetamorphic, "metamorphic.setup", made.error().message);
    return std::nullopt;
  }
  auto& m = *made.value();
  auto plan = m.plan_task("job", {.anchor = m.clock().now()});
  if (!plan.ok()) {
    fail.add(kOracleMetamorphic, "metamorphic.plan", plan.error().message);
    return std::nullopt;
  }
  std::int64_t finish = 0;
  const auto& space = m.schedule_space();
  for (auto nid : space.plan(plan.value()).nodes)
    finish = std::max(finish, space.node(nid).planned_finish.minutes_since_epoch());
  return finish;
}

void check_metamorphic(const Scenario& scenario, std::int64_t base_planned_finish,
                       Mutation mutation, Failures& fail) {
  // (a) Relabeling + rule permutation is a no-op on the network, so both the
  // raw CPM makespan and the planner's makespan are invariant.
  Scenario t = relabeled(scenario);
  if (mutation == Mutation::kMetamorphicScale)
    for (auto& r : t.graph.rules) r.est_minutes *= 2;

  auto base = sched::compute_cpm(cpm_network(scenario));
  auto perm = sched::compute_cpm(cpm_network(t));
  if (!base.ok() || !perm.ok()) {
    fail.add(kOracleMetamorphic, "metamorphic.cpm", "CPM failed on a valid network");
    return;
  }
  if (base.value().makespan != perm.value().makespan) {
    fail.add(kOracleMetamorphic, "metamorphic.relabel",
             "relabeled network changed CPM makespan");
    return;
  }
  auto relabeled_finish = planned_makespan(t, fail);
  if (!relabeled_finish) return;
  if (*relabeled_finish != base_planned_finish)
    fail.add(kOracleMetamorphic, "metamorphic.plan_relabel",
             "relabeled flow changed the planned completion date");

  // (b) Growing a duration by no more than its total slack cannot move the
  // completion date; growing any duration can never shrink it.
  const auto& r = base.value();
  std::size_t victim = scenario.graph.rules.size();
  for (std::size_t i = 0; i < scenario.graph.rules.size(); ++i)
    if (r.total_slack[i] > 0) victim = i;
  Scenario grown = scenario;
  std::int64_t delta;
  bool slack_only = victim < scenario.graph.rules.size();
  if (slack_only) {
    delta = r.total_slack[victim];
  } else {
    victim = scenario.graph.rules.size() - 1;
    delta = 90;
  }
  grown.graph.rules[victim].est_minutes += delta;
  auto after = sched::compute_cpm(cpm_network(grown));
  if (!after.ok()) {
    fail.add(kOracleMetamorphic, "metamorphic.cpm", "CPM failed on grown network");
    return;
  }
  if (slack_only && after.value().makespan != r.makespan)
    fail.add(kOracleMetamorphic, "metamorphic.slack",
             "slack-covered duration growth moved the makespan");
  if (after.value().makespan < r.makespan)
    fail.add(kOracleMetamorphic, "metamorphic.monotone",
             "adding duration shrank the makespan");
  if (after.value().makespan > r.makespan + delta)
    fail.add(kOracleMetamorphic, "metamorphic.bound",
             "makespan grew by more than the added duration");
}

// --- query oracle ------------------------------------------------------------

/// A result and its error render to the same bytes on every path, so the
/// differential compares failures exactly like row sets.
std::string query_bytes(util::Result<query::QueryResult> r) {
  if (!r.ok()) return "error: " + r.error().message;
  return r.value().render();
}

/// Differential check over the query fast path.  One manager is planned and
/// executed, then every statement is run three ways — full scan (reference),
/// index path, and cached re-execution — and the rendered bytes must agree.
/// Interleaved mutations (an import, a failed run, a replan) must invalidate
/// the cache; the planted kQueryStaleCache mutation disables cache
/// validation on the fast engine, so the post-mutation re-execution serves
/// the stale entry and the oracle must notice.
void check_query(const Scenario& scenario, Mutation mutation, Failures& fail) {
  auto made = make_manager(scenario);
  if (!made.ok()) {
    fail.add(kOracleQuery, "query.setup", made.error().message);
    return;
  }
  std::unique_ptr<WorkflowManager> m = std::move(made).take();
  auto plan = m->plan_task("job", {.anchor = m->clock().now()});
  if (!plan.ok()) {
    fail.add(kOracleQuery, "query.plan", plan.error().message);
    return;
  }
  try {
    util::Result<exec::ExecutionResult> result =
        scenario.mode == ExecMode::kConcurrent ? m->execute_task_concurrent("job", "fuzz")
                                               : m->execute_task("job", "fuzz");
    (void)result;  // failed executions still leave queryable state
  } catch (const exec::InjectedCrash&) {
    // State up to the crash is still queryable.
  }

  // Fast engine: indexes + cache (the system under test).  The planted
  // mutation is the deliberate bug: serve cached entries without checking
  // the spaces' version counters.
  query::QueryEngine fast(m->db(), m->schedule_space());
  query::EngineOptions fast_options;
  fast_options.validate_cache = mutation != Mutation::kQueryStaleCache;
  fast.set_options(fast_options);
  // Slow engine: always full scan, never cached (the reference).
  query::QueryEngine slow(m->db(), m->schedule_space());
  slow.set_options({.use_index = false, .use_cache = false});

  const std::string& act = scenario.graph.rules.front().name;
  const std::vector<std::string> statements = {
      "select runs",
      "select runs where activity = \"" + act + "\"",
      "select runs where designer = \"fuzz\" and duration >= 0",
      "select runs where status = \"failed\" order by started desc",
      "select count from runs group by activity",
      "select instances",
      "select instances where type = \"" + scenario.graph.target + "\" limit 5",
      "select schedule where critical = true",
      "select plans",
      "select links",
  };

  auto compare_all = [&](const char* stage) {
    for (const auto& s : statements) {
      std::string scan = query_bytes(slow.execute(s));
      std::string indexed = query_bytes(fast.execute(s));
      std::string cached = query_bytes(fast.execute(s));
      if (indexed != scan) {
        fail.add(kOracleQuery, "query.path",
                 std::string(stage) + ": index path differs from scan path for '" +
                     s + "'");
        return false;
      }
      if (cached != scan) {
        fail.add(kOracleQuery, "query.cache",
                 std::string(stage) + ": cached re-execution differs from scan for '" +
                     s + "'");
        return false;
      }
    }
    return true;
  };

  if (!compare_all("initial")) return;

  // Invalid statements must fail identically on both paths.
  if (query_bytes(fast.execute("select runs where nonsense = 1")) !=
      query_bytes(slow.execute("select runs where nonsense = 1"))) {
    fail.add(kOracleQuery, "query.error",
             "index and scan paths disagree on an invalid statement");
    return;
  }

  // Mutation 1: an imported primary input appears in the instance container.
  (void)m->db().create_instance(scenario.graph.target, "planted.in", meta::RunId{},
                                util::DataObjectId{}, m->clock().now());
  if (!compare_all("after-import")) return;

  // Mutation 2: a failed run lands in every run index.
  meta::Run r;
  r.activity = act;
  r.tool_binding = "t1";
  r.designer = "fuzz";
  r.status = meta::RunStatus::kFailed;
  r.started_at = m->clock().now();
  r.finished_at = m->clock().now();
  (void)m->db().record_run(std::move(r));
  if (!compare_all("after-failed-run")) return;

  // Mutation 3: a replan mutates schedule space (new plan + nodes + links).
  (void)m->replan_task("job", {.anchor = m->clock().now()});
  if (!compare_all("after-replan")) return;

  // The repeats above must actually exercise the cache, not just match.
  if (fast.stats().cache_hits == 0)
    fail.add(kOracleQuery, "query.stats", "fast engine never served a cache hit");

  // --- threaded phase: a real mutator racing real readers -------------------
  //
  // The single-threaded checks above prove the paths agree on quiescent
  // state.  This phase proves the MVCC contract: while one thread mutates
  // the manager and publishes epoch snapshots (the shard's write lane),
  // reader threads pin whatever view is current and re-run the differential
  // per epoch — scan, index, and cached/memoized paths must render
  // byte-identical results AGAINST THE PINNED EPOCH no matter what the
  // mutator is doing meanwhile.  Epochs observed by one reader must be
  // monotonic.  Run under TSan this also proves the lanes share no
  // unsynchronized state (COW snapshots, internally locked engine cache).
  hercules::ViewSlot published;
  published.store(m->read_view());
  std::atomic<bool> mutating{true};
  const std::vector<std::string> hot = {
      "select runs where status = \"failed\" order by started desc",
      "select instances where type = \"" + scenario.graph.target + "\" limit 5",
      "select schedule where critical = true",
      "select plans",
  };

  auto reader = [&](std::vector<std::string>& errors) {
    query::QueryEngine scan_engine(m->db(), m->schedule_space());
    scan_engine.set_options({.use_index = false, .use_cache = false});
    query::QueryEngine index_engine(m->db(), m->schedule_space());
    index_engine.set_options({.use_cache = false});
    std::uint64_t last_epoch = 0;
    do {
      std::shared_ptr<const hercules::ReadView> view = published.load();
      if (!view) continue;
      if (view->epoch() < last_epoch) {
        errors.push_back("epoch went backwards: " +
                         std::to_string(view->epoch()) + " after " +
                         std::to_string(last_epoch));
        return;
      }
      last_epoch = view->epoch();
      for (const auto& s : hot) {
        auto scan = scan_engine.execute(s, view->db(), view->space());
        auto indexed = index_engine.execute(s, view->db(), view->space());
        auto memo1 = view->query(s);
        auto memo2 = view->query(s);  // memo hit must replay the same bytes
        std::string want = query_bytes(scan);
        std::string cached1 =
            memo1.ok() ? memo1.value() : "error: " + memo1.error().message;
        std::string cached2 =
            memo2.ok() ? memo2.value() : "error: " + memo2.error().message;
        std::string rendered = want;
        if (scan.ok()) rendered = scan.value().render(&m->calendar());
        if (query_bytes(indexed) != want) {
          errors.push_back("epoch " + std::to_string(view->epoch()) +
                           ": index differs from scan for '" + s + "'");
          return;
        }
        if (cached1 != rendered || cached2 != rendered) {
          errors.push_back("epoch " + std::to_string(view->epoch()) +
                           ": view memo differs from scan for '" + s + "'");
          return;
        }
      }
    } while (mutating.load(std::memory_order_acquire));
  };

  std::vector<std::string> errors_a, errors_b;
  std::thread reader_a([&] { reader(errors_a); });
  std::thread reader_b([&] { reader(errors_b); });

  // The mutator: the same mutation kinds the single-threaded phase used,
  // applied in a burst, each followed by an epoch publish (write-lane shape).
  for (int i = 0; i < 24; ++i) {
    switch (i % 3) {
      case 0: {
        meta::Run burst;
        burst.activity = act;
        burst.tool_binding = "t1";
        burst.designer = "fuzz";
        burst.status = meta::RunStatus::kFailed;
        burst.started_at = m->clock().now();
        burst.finished_at = m->clock().now();
        (void)m->db().record_run(std::move(burst));
        break;
      }
      case 1:
        (void)m->db().create_instance(scenario.graph.target,
                                      "burst.in" + std::to_string(i),
                                      meta::RunId{}, util::DataObjectId{},
                                      m->clock().now());
        break;
      default:
        (void)m->replan_task("job", {.anchor = m->clock().now()});
        break;
    }
    published.store(m->read_view());
  }
  mutating.store(false, std::memory_order_release);
  reader_a.join();
  reader_b.join();
  for (const auto& e : errors_a)
    fail.add(kOracleQuery, "query.threaded", e);
  for (const auto& e : errors_b)
    fail.add(kOracleQuery, "query.threaded", e);
}

// --- adapter oracle ----------------------------------------------------------

/// Cross-adapter conformance plus, when the scenario carries an adversarial
/// plan, the production-shaped storm driver.  Both report through the
/// conformance module's own check ids ("adapter.*" / "adversarial.*").
void check_adapter(const Scenario& scenario, Mutation mutation,
                   const std::string& scratch_dir, Failures& fail) {
  ConformanceOptions options;
  options.mutate_drop_firing = mutation == Mutation::kAdapterDropFiring;
  for (auto& f : check_conformance(scenario, options))
    fail.add(kOracleAdapter, std::move(f.check), std::move(f.detail));
  if (!scenario.adversarial.empty())
    for (auto& f : run_adversarial(scenario, scratch_dir))
      fail.add(kOracleAdapter, std::move(f.check), std::move(f.detail));
}

}  // namespace

// --- public: names and parsing -----------------------------------------------

const char* oracle_name(unsigned family) {
  switch (family) {
    case kOracleCpm: return "cpm";
    case kOracleMirror: return "mirror";
    case kOracleRecovery: return "recovery";
    case kOracleRisk: return "risk";
    case kOracleMetamorphic: return "metamorphic";
    case kOracleStructure: return "structure";
    case kOracleQuery: return "query";
    case kOracleAdapter: return "adapter";
  }
  return "unknown";
}

util::Result<unsigned> parse_oracles(const std::string& csv) {
  if (csv == "all" || csv.empty()) return kOracleAll;
  unsigned mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    std::string name = csv.substr(pos, comma - pos);
    if (name == "cpm") mask |= kOracleCpm;
    else if (name == "mirror") mask |= kOracleMirror;
    else if (name == "recovery") mask |= kOracleRecovery;
    else if (name == "risk") mask |= kOracleRisk;
    else if (name == "metamorphic") mask |= kOracleMetamorphic;
    else if (name == "query") mask |= kOracleQuery;
    else if (name == "adapter") mask |= kOracleAdapter;
    else if (name == "all") mask |= kOracleAll;
    else return util::parse_error("unknown oracle family '" + name + "'");
    pos = comma + 1;
  }
  return mask;
}

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kMirrorDropRun: return "mirror-drop-run";
    case Mutation::kCpmOffByOne: return "cpm-off-by-one";
    case Mutation::kRecoveryDropLine: return "recovery-drop-line";
    case Mutation::kRiskSeedSkew: return "risk-seed-skew";
    case Mutation::kMetamorphicScale: return "metamorphic-scale";
    case Mutation::kQueryStaleCache: return "query-stale-cache";
    case Mutation::kAdapterDropFiring: return "adapter-drop-firing";
  }
  return "none";
}

util::Result<Mutation> parse_mutation(const std::string& name) {
  for (Mutation m : {Mutation::kNone, Mutation::kMirrorDropRun, Mutation::kCpmOffByOne,
                     Mutation::kRecoveryDropLine, Mutation::kRiskSeedSkew,
                     Mutation::kMetamorphicScale, Mutation::kQueryStaleCache,
                     Mutation::kAdapterDropFiring})
    if (name == mutation_name(m)) return m;
  return util::parse_error("unknown mutation '" + name + "'");
}

// --- public: reference CPM ---------------------------------------------------

util::Result<sched::CpmResult> reference_cpm(
    const std::vector<sched::CpmActivity>& activities) {
  const std::size_t n = activities.size();
  for (const auto& a : activities) {
    if (a.duration < 0 || a.release < 0)
      return util::invalid("reference: negative duration or release");
    for (auto p : a.preds)
      if (p >= n) return util::invalid("reference: predecessor out of range");
  }
  sched::CpmResult r;
  r.early_start.assign(n, 0);
  r.early_finish.assign(n, 0);
  r.late_start.assign(n, 0);
  r.late_finish.assign(n, 0);
  r.total_slack.assign(n, 0);
  r.free_slack.assign(n, 0);
  r.critical.assign(n, false);
  r.makespan = 0;
  r.critical_path.clear();
  if (n == 0) return r;

  // Forward fixpoint: relax until stable; more than n passes means a cycle.
  for (std::size_t i = 0; i < n; ++i) r.early_start[i] = activities[i].release;
  bool changed = true;
  std::size_t passes = 0;
  while (changed) {
    if (++passes > n + 1) return util::invalid("reference: precedence cycle");
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t es = activities[i].release;
      for (auto p : activities[i].preds)
        es = std::max(es, r.early_start[p] + activities[p].duration);
      if (es != r.early_start[i]) {
        r.early_start[i] = es;
        changed = true;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    r.early_finish[i] = r.early_start[i] + activities[i].duration;
    r.makespan = std::max(r.makespan, r.early_finish[i]);
  }

  // Backward fixpoint from the makespan.
  for (std::size_t i = 0; i < n; ++i) r.late_finish[i] = r.makespan;
  changed = true;
  passes = 0;
  while (changed) {
    if (++passes > n + 1) return util::invalid("reference: precedence cycle");
    changed = false;
    for (std::size_t i = 0; i < n; ++i)
      for (auto p : activities[i].preds) {
        std::int64_t lf = r.late_finish[i] - activities[i].duration;
        if (lf < r.late_finish[p]) {
          r.late_finish[p] = lf;
          changed = true;
        }
      }
  }
  for (std::size_t i = 0; i < n; ++i) {
    r.late_start[i] = r.late_finish[i] - activities[i].duration;
    r.total_slack[i] = r.late_start[i] - r.early_start[i];
    r.critical[i] = r.total_slack[i] == 0;
  }

  // Free slack: min successor ES - EF; sinks measure against the makespan.
  std::vector<std::int64_t> min_succ_es(n, -1);
  for (std::size_t i = 0; i < n; ++i)
    for (auto p : activities[i].preds)
      min_succ_es[p] = min_succ_es[p] < 0 ? r.early_start[i]
                                          : std::min(min_succ_es[p], r.early_start[i]);
  for (std::size_t i = 0; i < n; ++i)
    r.free_slack[i] =
        (min_succ_es[i] < 0 ? r.makespan : min_succ_es[i]) - r.early_finish[i];
  return r;
}

// --- public: scenario sampling -----------------------------------------------

Scenario sample_scenario(util::Rng& rng) {
  ScenarioSpec spec;
  spec.seed = rng.next_u64();
  std::int64_t roll = rng.uniform_int(0, 9);
  if (roll < 2) {
    spec.shape = Shape::kChain;
    spec.size = static_cast<std::size_t>(rng.uniform_int(1, 20));
  } else if (roll < 4) {
    spec.shape = Shape::kFanin;
    spec.size = static_cast<std::size_t>(rng.uniform_int(1, 12));
  } else if (roll < 6) {
    spec.shape = Shape::kLayered;
    spec.size = static_cast<std::size_t>(rng.uniform_int(1, 4));
    spec.width = static_cast<std::size_t>(rng.uniform_int(2, 4));
  } else {
    spec.shape = Shape::kRandom;
    spec.inputs = static_cast<std::size_t>(rng.uniform_int(1, 3));
    spec.size = static_cast<std::size_t>(rng.uniform_int(2, 16));
  }
  spec.resources = static_cast<int>(rng.uniform_int(1, 3));
  if (rng.chance(0.3)) spec.mode = ExecMode::kConcurrent;
  if (rng.chance(0.4)) {
    spec.fault_seed = rng.next_u64() | 1;
    spec.fail_prob = rng.uniform(0.0, 0.35);
    if (rng.chance(0.3)) spec.fail_on = static_cast<int>(rng.uniform_int(1, 5));
    if (rng.chance(0.3)) spec.latency_factor = rng.uniform(1.0, 3.0);
    std::int64_t policy = rng.uniform_int(0, 2);
    spec.policy = policy == 0   ? exec::FailurePolicy::kAbort
                  : policy == 1 ? exec::FailurePolicy::kRetryThenAbort
                                : exec::FailurePolicy::kContinueIndependent;
    if (spec.policy != exec::FailurePolicy::kAbort)
      spec.max_attempts = static_cast<int>(rng.uniform_int(1, 3));
    if (rng.chance(0.2)) spec.timeout_minutes = rng.uniform_int(30, 600);
    if (rng.chance(0.15)) {
      // Fault storm: near-certain failures with heavy latency inflation, the
      // worst production day the recovery and adversarial drivers must ride.
      spec.fail_prob = rng.uniform(0.5, 0.95);
      spec.latency_factor = rng.uniform(2.0, 8.0);
      spec.policy = exec::FailurePolicy::kRetryThenAbort;
      spec.max_attempts = static_cast<int>(rng.uniform_int(2, 4));
    }
  }
  // Heavy-tailed duration draws: a lognormal or Pareto minority models the
  // few activities that dominate real makespans.
  if (rng.chance(0.2)) {
    if (rng.chance(0.5)) {
      spec.duration_dist = DurationDist::kLognormal;
      spec.dist_sigma = rng.uniform(0.5, 2.0);
    } else {
      spec.duration_dist = DurationDist::kPareto;
      spec.dist_alpha = rng.uniform(0.8, 2.5);
    }
  }
  // Adversarial plans: mid-flight replans, conflicting edits and input
  // revisions ride along on a quarter of the scenarios.
  if (rng.chance(0.25)) spec.adversity = rng.uniform(0.2, 1.0);
  return generate(spec);
}

// --- public: single-scenario harness -----------------------------------------

std::vector<OracleFailure> run_scenario(const Scenario& scenario,
                                        const RunOptions& options) {
  std::vector<OracleFailure> failures;
  Failures fail{&failures};

  // Structural oracle (always on): the DSL parses, the parsed schema is
  // acyclic, and the generator's promised facts hold.
  auto parsed = schema::parse_schema(scenario.dsl());
  if (!parsed.ok()) {
    fail.add(kOracleStructure, "structure.parse", parsed.error().message);
    return failures;
  }
  StructuralFacts f = facts(scenario);
  if (parsed.value().rules().size() != f.n_rules ||
      parsed.value().primary_inputs().size() != f.n_primary_inputs ||
      !parsed.value().find_type(f.target)) {
    fail.add(kOracleStructure, "structure.facts",
             "parsed schema disagrees with generator facts");
    return failures;
  }
  if (scenario.graph.rules.empty()) {
    fail.add(kOracleStructure, "structure.empty", "scenario has no rules");
    return failures;
  }

  if (options.oracles & kOracleCpm) check_cpm(scenario, options.mutation, fail);

  // Mirror / risk / metamorphic share one planned manager.
  std::unique_ptr<WorkflowManager> m1;
  sched::ScheduleRunId plan_id{};
  std::int64_t base_planned_finish = 0;
  if (options.oracles & (kOracleMirror | kOracleRisk | kOracleMetamorphic)) {
    auto made = make_manager(scenario);
    if (!made.ok()) {
      fail.add(kOracleMirror, "mirror.setup", made.error().message);
      return failures;
    }
    m1 = std::move(made).take();
    auto plan = m1->plan_task("job", {.anchor = m1->clock().now()});
    if (!plan.ok()) {
      fail.add(kOracleMirror, "mirror.plan", plan.error().message);
      return failures;
    }
    plan_id = plan.value();
    const auto& space = m1->schedule_space();
    for (auto nid : space.plan(plan_id).nodes)
      base_planned_finish = std::max(
          base_planned_finish, space.node(nid).planned_finish.minutes_since_epoch());
  }

  // Risk and metamorphic run on the un-executed plan (completed activities
  // would be fixed at their actuals, degenerating both oracles).
  if (options.oracles & kOracleRisk)
    check_risk(scenario, *m1, plan_id, options.mutation, fail);
  if (options.oracles & kOracleMetamorphic)
    check_metamorphic(scenario, base_planned_finish, options.mutation, fail);
  if (options.oracles & kOracleMirror)
    check_mirror(scenario, *m1, plan_id, options.mutation, fail);
  if (options.oracles & kOracleRecovery)
    check_recovery(scenario, options.mutation, options.scratch_dir, fail);
  if (options.oracles & kOracleQuery)
    check_query(scenario, options.mutation, fail);
  if (options.oracles & kOracleAdapter)
    check_adapter(scenario, options.mutation, options.scratch_dir, fail);
  return failures;
}

// --- public: shrinking -------------------------------------------------------

namespace {

/// Drops unreferenced data types and re-targets after rules were removed,
/// keeping the graph parseable by construction.
FlowGraph repaired(FlowGraph g) {
  bool produced = false;
  for (const auto& r : g.rules) produced |= r.output == g.target;
  if (!produced && !g.rules.empty()) g.target = g.rules.back().output;
  std::unordered_set<std::string> keep{g.target};
  for (const auto& r : g.rules) {
    keep.insert(r.output);
    for (const auto& in : r.inputs) keep.insert(in);
  }
  std::vector<std::string> data;
  for (auto& d : g.data_types)
    if (keep.count(d)) data.push_back(std::move(d));
  g.data_types = std::move(data);
  return g;
}

}  // namespace

ShrinkResult shrink(const Scenario& failing, const ShrinkOptions& options) {
  ShrinkResult result;
  result.scenario = failing;

  RunOptions run{.oracles = options.oracles,
                 .mutation = options.mutation,
                 .scratch_dir = options.scratch_dir};
  auto still_fails = [&](const Scenario& candidate) {
    if (result.candidates >= options.max_candidates) return false;
    ++result.candidates;
    if (options.on_candidate) options.on_candidate(candidate);
    if (!schema::parse_schema(candidate.dsl()).ok()) return false;
    auto failures = run_scenario(candidate, run);
    for (const auto& f : failures)
      if (f.family != kOracleStructure) return true;
    return false;
  };
  auto accept = [&](Scenario candidate) {
    result.scenario = std::move(candidate);
    ++result.improvements;
  };

  bool progress = true;
  while (progress && result.candidates < options.max_candidates) {
    progress = false;

    // 1. Faults and the adversarial plan gone entirely, then execution
    // semantics to their simplest.
    if (result.scenario.fault_seed != 0 || !result.scenario.faults.empty()) {
      Scenario c = result.scenario;
      c.fault_seed = 0;
      c.faults = {};
      if (still_fails(c)) {
        accept(std::move(c));
        progress = true;
      }
    }
    if (!result.scenario.adversarial.empty()) {
      Scenario c = result.scenario;
      c.adversarial = {};
      if (still_fails(c)) {
        accept(std::move(c));
        progress = true;
      }
    }
    if (result.scenario.mode != ExecMode::kSerial ||
        result.scenario.policy != exec::FailurePolicy::kAbort ||
        result.scenario.max_attempts != 1 || result.scenario.timeout_minutes != 0) {
      Scenario c = result.scenario;
      c.mode = ExecMode::kSerial;
      c.policy = exec::FailurePolicy::kAbort;
      c.max_attempts = 1;
      c.timeout_minutes = 0;
      if (still_fails(c)) {
        accept(std::move(c));
        progress = true;
      }
    }

    // 2. ddmin over rules: remove windows, halving the window size.
    for (std::size_t window = std::max<std::size_t>(result.scenario.graph.rules.size() / 2, 1);
         window >= 1; window /= 2) {
      bool removed = true;
      while (removed && result.scenario.graph.rules.size() > 1) {
        removed = false;
        const std::size_t n = result.scenario.graph.rules.size();
        if (window >= n) break;
        for (std::size_t start = 0; start + window <= n; ++start) {
          Scenario c = result.scenario;
          c.graph.rules.erase(c.graph.rules.begin() + static_cast<std::ptrdiff_t>(start),
                              c.graph.rules.begin() +
                                  static_cast<std::ptrdiff_t>(start + window));
          c.graph = repaired(std::move(c.graph));
          if (still_fails(c)) {
            accept(std::move(c));
            progress = removed = true;
            break;
          }
        }
      }
      if (window == 1) break;
    }

    // 3. Durations: each estimate straight to 1, else halved; then the tool
    // nominal and the estimator fallback.
    for (std::size_t i = 0; i < result.scenario.graph.rules.size(); ++i) {
      while (result.scenario.graph.rules[i].est_minutes > 1) {
        Scenario c = result.scenario;
        std::int64_t cur = c.graph.rules[i].est_minutes;
        c.graph.rules[i].est_minutes = cur > 2 ? cur / 2 : 1;
        if (!still_fails(c)) break;
        accept(std::move(c));
        progress = true;
      }
    }
    for (auto field : {&Scenario::tool_minutes, &Scenario::fallback_minutes}) {
      while (result.scenario.*field > 1) {
        Scenario c = result.scenario;
        std::int64_t cur = c.*field;
        c.*field = cur > 2 ? cur / 2 : 1;
        if (!still_fails(c)) break;
        accept(std::move(c));
        progress = true;
      }
    }
    if (result.scenario.resources > 1) {
      Scenario c = result.scenario;
      c.resources = 1;
      if (still_fails(c)) {
        accept(std::move(c));
        progress = true;
      }
    }
  }

  result.failures = run_scenario(result.scenario, run);
  return result;
}

// --- public: fuzz loop -------------------------------------------------------

FuzzReport fuzz(const FuzzOptions& options) {
  FuzzReport report;
  util::Rng rng(options.seed);
  RunOptions run{.oracles = options.oracles,
                 .mutation = options.mutation,
                 .scratch_dir = options.scratch_dir};
  const std::int64_t start = now_ms();
  const std::size_t default_cap =
      options.max_scenarios == 0 && options.budget_ms == 0 ? 100 : 0;

  while (true) {
    if (options.max_scenarios && report.scenarios >= options.max_scenarios) break;
    if (default_cap && report.scenarios >= default_cap) break;
    if (options.budget_ms && now_ms() - start >= options.budget_ms) break;

    Scenario scenario = sample_scenario(rng);
    auto failures = run_scenario(scenario, run);
    ++report.scenarios;
    if (options.on_progress) options.on_progress(report.scenarios);
    if (!failures.empty()) {
      report.failures = std::move(failures);
      report.failing = scenario;
      if (options.shrink_failures) {
        auto shrunk = shrink(scenario, {.oracles = options.oracles,
                                        .mutation = options.mutation,
                                        .scratch_dir = options.scratch_dir});
        report.shrunk = std::move(shrunk.scenario);
        report.shrink_candidates = shrunk.candidates;
      }
      break;
    }
  }
  report.elapsed_ms = std::max<std::int64_t>(now_ms() - start, 1);
  report.scenarios_per_sec =
      static_cast<double>(report.scenarios) * 1000.0 /
      static_cast<double>(report.elapsed_ms);
  return report;
}

// --- public: corpus ----------------------------------------------------------

util::Status write_corpus_file(const Scenario& scenario, const std::string& path) {
  return util::write_file(path, scenario_to_json(scenario).dump(2) + "\n");
}

util::Result<Scenario> read_corpus_file(const std::string& path) {
  auto text = util::read_file(path);
  if (!text.ok()) return text.error();
  auto json = util::Json::parse(text.value());
  if (!json.ok()) return json.error();
  return scenario_from_json(json.value());
}

}  // namespace herc::gen
