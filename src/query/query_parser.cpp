// Lexer + recursive-descent parser for the query language (see query.hpp).

#include <cctype>

#include "query/query.hpp"
#include "util/strings.hpp"

namespace herc::query {

const char* target_name(Target t) {
  switch (t) {
    case Target::kRuns: return "runs";
    case Target::kInstances: return "instances";
    case Target::kSchedule: return "schedule";
    case Target::kPlans: return "plans";
    case Target::kLinks: return "links";
  }
  return "?";
}

namespace {

const char* op_name(Op op) {
  switch (op) {
    case Op::kEq: return "=";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
    case Op::kContains: return "contains";
  }
  return "?";
}

struct Token {
  enum class Kind { kWord, kString, kNumber, kOp, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  util::Result<std::vector<Token>> run() {
    std::vector<Token> out;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = pos_;
        while (pos_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '_'))
          ++pos_;
        out.push_back({Token::Kind::kWord, std::string(s_.substr(start, pos_ - start))});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < s_.size() &&
                  std::isdigit(static_cast<unsigned char>(s_[pos_ + 1])))) {
        std::size_t start = pos_;
        if (c == '-') ++pos_;
        while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
          ++pos_;
        out.push_back({Token::Kind::kNumber, std::string(s_.substr(start, pos_ - start))});
      } else if (c == '"') {
        ++pos_;
        std::string text;
        while (pos_ < s_.size() && s_[pos_] != '"') text.push_back(s_[pos_++]);
        if (pos_ >= s_.size()) return util::parse_error("query: unterminated string");
        ++pos_;
        out.push_back({Token::Kind::kString, std::move(text)});
      } else if (c == '(' || c == ')' || c == '*') {
        out.push_back({Token::Kind::kOp, std::string(1, c)});
        ++pos_;
      } else if (c == '=' || c == '<' || c == '>' || c == '!') {
        std::string op(1, c);
        ++pos_;
        if (pos_ < s_.size() && s_[pos_] == '=' && c != '=') {
          op.push_back('=');
          ++pos_;
        }
        if (op == "!") return util::parse_error("query: lone '!' (use !=)");
        out.push_back({Token::Kind::kOp, std::move(op)});
      } else {
        return util::parse_error("query: unexpected character '" + std::string(1, c) +
                                 "'");
      }
    }
    out.push_back({Token::Kind::kEnd, ""});
    return out;
  }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
};

class QueryParser {
 public:
  explicit QueryParser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  util::Result<Query> run() {
    if (!eat_word("select")) return err("expected 'select'");
    Query q;

    // New form: `select * from ...` / `select count from ...` /
    // `select avg(field) from ...`.  Legacy sugar: `select <target> ...`.
    if (eat_op("*")) {
      if (!eat_word("from")) return err("expected 'from' after '*'");
    } else if (peek_is_aggregate()) {
      Aggregate agg;
      const std::string fn = util::to_lower(toks_[pos_++].text);
      if (fn == "count") agg.fn = AggregateFn::kCount;
      else if (fn == "avg") agg.fn = AggregateFn::kAvg;
      else if (fn == "sum") agg.fn = AggregateFn::kSum;
      else if (fn == "min") agg.fn = AggregateFn::kMin;
      else agg.fn = AggregateFn::kMax;
      if (agg.fn != AggregateFn::kCount) {
        if (!eat_op("(")) return err("expected '(' after aggregate function");
        auto f = word("aggregate field");
        if (!f.ok()) return f.error();
        agg.field = f.value();
        if (!eat_op(")")) return err("expected ')' after aggregate field");
      }
      q.aggregate = std::move(agg);
      if (!eat_word("from")) return err("expected 'from' after aggregate");
    }

    auto target = word("target");
    if (!target.ok()) return target.error();
    const std::string& t = target.value();
    if (t == "runs") q.target = Target::kRuns;
    else if (t == "instances") q.target = Target::kInstances;
    else if (t == "schedule" || t == "schedule_nodes") q.target = Target::kSchedule;
    else if (t == "plans") q.target = Target::kPlans;
    else if (t == "links") q.target = Target::kLinks;
    else return err("unknown target '" + t + "'");

    if (eat_word("where")) {
      auto e = expr();
      if (!e.ok()) return e.error();
      q.where = std::move(e).take();
    }
    if (eat_word("group")) {
      if (!eat_word("by")) return err("expected 'by' after 'group'");
      if (!q.aggregate) return err("'group by' requires an aggregate select");
      auto f = word("group-by field");
      if (!f.ok()) return f.error();
      q.group_by = f.value();
    }
    if (eat_word("order")) {
      if (!eat_word("by")) return err("expected 'by' after 'order'");
      if (q.aggregate) return err("'order by' is not supported with aggregates");
      auto f = word("order-by field");
      if (!f.ok()) return f.error();
      q.order_by = f.value();
      if (eat_word("desc")) q.descending = true;
      else eat_word("asc");
    }
    if (eat_word("limit")) {
      if (peek().kind != Token::Kind::kNumber) return err("expected limit count");
      q.limit = std::stoll(toks_[pos_++].text);
      if (*q.limit < 0) return err("negative limit");
    }
    if (peek().kind != Token::Kind::kEnd) return err("trailing tokens");
    return q;
  }

 private:
  util::Error err(const std::string& msg) const {
    return util::parse_error("query: " + msg + " (got '" + peek().text + "')");
  }

  const Token& peek() const { return toks_[pos_]; }

  bool eat_word(std::string_view w) {
    if (peek().kind == Token::Kind::kWord && util::to_lower(peek().text) == w) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool eat_op(std::string_view op) {
    if (peek().kind == Token::Kind::kOp && peek().text == op) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// True if the current token is an aggregate keyword introducing the
  /// `select <agg> from` form (disambiguated from a legacy target name by
  /// what follows: 'from' for count, '(' for the field aggregates).
  [[nodiscard]] bool peek_is_aggregate() const {
    if (peek().kind != Token::Kind::kWord) return false;
    std::string w = util::to_lower(peek().text);
    const Token& next = toks_[pos_ + 1];
    if (w == "count")
      return next.kind == Token::Kind::kWord && util::to_lower(next.text) == "from";
    if (w == "avg" || w == "sum" || w == "min" || w == "max")
      return next.kind == Token::Kind::kOp && next.text == "(";
    return false;
  }

  util::Result<std::string> word(const char* what) {
    if (peek().kind != Token::Kind::kWord)
      return err(std::string("expected ") + what);
    return toks_[pos_++].text;
  }

  // expr := and_expr (or and_expr)*
  util::Result<std::unique_ptr<Expr>> expr() {
    auto first = and_expr();
    if (!first.ok()) return first;
    if (!at_word("or")) return first;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kOr;
    node->children.push_back(std::move(first).take());
    while (eat_word("or")) {
      auto next = and_expr();
      if (!next.ok()) return next;
      node->children.push_back(std::move(next).take());
    }
    return node;
  }

  // and_expr := unary (and unary)*
  util::Result<std::unique_ptr<Expr>> and_expr() {
    auto first = unary();
    if (!first.ok()) return first;
    if (!at_word("and")) return first;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kAnd;
    node->children.push_back(std::move(first).take());
    while (eat_word("and")) {
      auto next = unary();
      if (!next.ok()) return next;
      node->children.push_back(std::move(next).take());
    }
    return node;
  }

  // unary := not unary | ( expr ) | condition
  util::Result<std::unique_ptr<Expr>> unary() {
    if (++depth_ > 100) {
      --depth_;
      return err("filter expression nested deeper than 100 levels");
    }
    struct Guard {
      int& d;
      ~Guard() { --d; }
    } guard{depth_};
    if (eat_word("not")) {
      auto inner = unary();
      if (!inner.ok()) return inner;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->children.push_back(std::move(inner).take());
      return node;
    }
    if (eat_op("(")) {
      auto inner = expr();
      if (!inner.ok()) return inner;
      if (!eat_op(")")) return err("expected ')' in filter expression");
      return inner;
    }
    auto c = condition();
    if (!c.ok()) return c.error();
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kCondition;
    node->condition = std::move(c).take();
    return node;
  }

  [[nodiscard]] bool at_word(std::string_view w) const {
    return peek().kind == Token::Kind::kWord && util::to_lower(peek().text) == w;
  }

  util::Result<Condition> condition() {
    Condition c;
    auto f = word("field name");
    if (!f.ok()) return f.error();
    c.field = f.value();

    if (peek().kind == Token::Kind::kOp) {
      const std::string& op = toks_[pos_++].text;
      if (op == "=") c.op = Op::kEq;
      else if (op == "!=") c.op = Op::kNe;
      else if (op == "<") c.op = Op::kLt;
      else if (op == "<=") c.op = Op::kLe;
      else if (op == ">") c.op = Op::kGt;
      else if (op == ">=") c.op = Op::kGe;
      else return err("unknown operator '" + op + "'");
    } else if (eat_word("contains")) {
      c.op = Op::kContains;
    } else {
      return err("expected comparison operator");
    }

    const Token& lit = peek();
    switch (lit.kind) {
      case Token::Kind::kString:
        c.literal = lit.text;
        ++pos_;
        break;
      case Token::Kind::kNumber:
        c.literal = static_cast<std::int64_t>(std::stoll(lit.text));
        ++pos_;
        break;
      case Token::Kind::kWord:
        if (util::to_lower(lit.text) == "true") c.literal = true;
        else if (util::to_lower(lit.text) == "false") c.literal = false;
        else c.literal = lit.text;  // bare word = string
        ++pos_;
        break;
      default:
        return err("expected literal");
    }
    return c;
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const char* aggregate_fn_name(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount: return "count";
    case AggregateFn::kAvg: return "avg";
    case AggregateFn::kSum: return "sum";
    case AggregateFn::kMin: return "min";
    case AggregateFn::kMax: return "max";
  }
  return "?";
}

void Expr::collect_conditions(std::vector<const Condition*>& out) const {
  if (kind == Kind::kCondition) {
    out.push_back(&condition);
    return;
  }
  for (const auto& child : children) child->collect_conditions(out);
}

std::string Expr::str() const {
  auto wrap = [](const Expr& e) {
    // Leaves and not-expressions read unambiguously; and/or groups need
    // parentheses when nested, which also makes emit->parse->emit a fixed
    // point.
    bool group = e.kind == Kind::kAnd || e.kind == Kind::kOr;
    return group ? "(" + e.str() + ")" : e.str();
  };
  switch (kind) {
    case Kind::kCondition: {
      std::string out = condition.field + " " + op_name(condition.op) + " ";
      if (std::holds_alternative<std::string>(condition.literal))
        out += "\"" + std::get<std::string>(condition.literal) + "\"";
      else
        out += value_str(condition.literal);
      return out;
    }
    case Kind::kNot:
      return "not " + wrap(*children[0]);
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out;
      const char* sep = kind == Kind::kAnd ? " and " : " or ";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i) out += sep;
        out += wrap(*children[i]);
      }
      return out;
    }
  }
  return {};
}

std::string Query::str() const {
  std::string out = "select ";
  if (aggregate) {
    out += aggregate_fn_name(aggregate->fn);
    if (aggregate->fn != AggregateFn::kCount) out += "(" + aggregate->field + ")";
    out += " from ";
  }
  out += std::string(target_name(target));
  if (where) out += " where " + where->str();
  if (group_by) out += " group by " + *group_by;
  if (order_by) {
    out += " order by " + *order_by;
    if (descending) out += " desc";
  }
  if (limit) out += " limit " + std::to_string(*limit);
  return out;
}

util::Result<Query> parse_query(std::string_view text) {
  auto toks = Lexer(text).run();
  if (!toks.ok()) return toks.error();
  return QueryParser(std::move(toks).take()).run();
}

}  // namespace herc::query
