#pragma once
// The query fast path: row sources, compiled predicates, the access-path
// planner, and the mutation-invalidated result cache.
//
// The seed engine materialized every row of the target space as a
// std::vector<Value> (string copies included), then re-dispatched each
// condition through the Value variant per row.  The fast path splits that
// into:
//
//   RowSource           a zero-copy cursor over one target space; cells are
//                       produced on demand, and interned string columns
//                       (activity, designer, tool, type, name) expose their
//                       SymbolId so equality never touches the string.
//   CompiledPredicate   the parsed Condition tree flattened once into a
//                       postfix program; each leaf carries its pre-resolved
//                       column index and, for =/!= on an interned column,
//                       the literal's SymbolId (one integer compare per row).
//   plan_access         picks index-seek + residual-filter over full scan
//                       when a top-level conjunctive equality leaf hits one
//                       of the database's secondary indexes.
//   QueryCache          canonical-text -> result map validated against the
//                       queried target's *per-table* version stamp, so a
//                       mutation only evicts results whose underlying table
//                       (or a derived index) actually moved — a run append
//                       leaves cached plan/instance results servable.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/query.hpp"

namespace herc::query {

// --- row sources -------------------------------------------------------------

/// Cursor over one target space.  Row indexes are dense [0, count()) in id
/// order, so scanning in row order reproduces the seed engine's output order.
class RowSource {
 public:
  virtual ~RowSource() = default;
  [[nodiscard]] virtual std::size_t count() const = 0;
  /// Materializes one cell (same values the seed engine produced).
  [[nodiscard]] virtual Value cell(std::size_t row, std::size_t col) const = 0;
  /// True when the column is backed by an interned symbol.
  [[nodiscard]] virtual bool symbol_col(std::size_t) const { return false; }
  /// The row's symbol for a symbol-backed column (invalid otherwise).
  [[nodiscard]] virtual util::SymbolId sym(std::size_t, std::size_t) const {
    return {};
  }
  /// Probes the owning pool for a literal; invalid when never interned,
  /// which lets =/!= decide without looking at any row.
  [[nodiscard]] virtual util::SymbolId probe(std::size_t, const std::string&) const {
    return {};
  }
};

[[nodiscard]] std::unique_ptr<RowSource> make_row_source(
    Target target, const meta::Database& db, const sched::ScheduleSpace& space);

// --- compiled predicates -----------------------------------------------------

struct CompiledLeaf {
  std::size_t col = 0;
  Op op = Op::kEq;
  Value literal;
  bool sym_compare = false;  ///< =/!= on a symbol column with a string literal
  util::SymbolId sym;        ///< resolved literal; invalid = not in the pool
};

/// The Condition tree flattened to postfix.  Evaluation walks the program
/// with a caller-provided bool stack — no recursion, no per-row name lookup,
/// no variant dispatch on the symbol fast path.
class CompiledPredicate {
 public:
  enum class OpCode : std::uint8_t { kLeaf, kAnd, kOr, kNot };
  struct Instr {
    OpCode op;
    std::uint32_t arg;  ///< kLeaf: leaf index; kAnd/kOr: child count
  };

  [[nodiscard]] bool empty() const { return code_.empty(); }
  [[nodiscard]] std::size_t leaf_count() const { return leaves_.size(); }

  /// True when the row passes.  `stack` is reused scratch (resized inside).
  [[nodiscard]] bool eval(const RowSource& src, std::size_t row,
                          std::vector<char>& stack) const;

 private:
  friend util::Result<CompiledPredicate> compile_predicate(
      const Expr* where, Target target, const std::vector<std::string>& columns,
      const RowSource& src);
  std::vector<Instr> code_;
  std::vector<CompiledLeaf> leaves_;
};

/// Compiles `where` (null = always-true) against the target's columns.
/// Unknown fields produce the same kNotFound message as the seed engine,
/// first offender in depth-first order.
[[nodiscard]] util::Result<CompiledPredicate> compile_predicate(
    const Expr* where, Target target, const std::vector<std::string>& columns,
    const RowSource& src);

// --- access-path planning ----------------------------------------------------

struct AccessPath {
  bool index = false;             ///< false = full scan
  std::string column;             ///< seek column, e.g. "designer"
  std::string key;                ///< seek literal
  std::vector<std::size_t> rows;  ///< candidate row indexes, ascending
};

/// Considers every equality leaf in the top-level conjunction; if one (or
/// more) hits a maintained secondary index, returns the most selective seek.
/// The full predicate still runs as the residual filter over the candidates,
/// so the planner can never change results, only skip rows.
[[nodiscard]] AccessPath plan_access(const Expr& where, Target target,
                                     const meta::Database& db,
                                     const sched::ScheduleSpace& space);

// --- result cache ------------------------------------------------------------

/// Fine-grained validity fingerprint of one query target: the version
/// counters of exactly the tables its rows read.  Two stamps being equal
/// means every table the target touches is unchanged, so a cached result is
/// still byte-correct — regardless of what else mutated.
struct VersionStamp {
  std::uint64_t primary = 0;
  std::uint64_t secondary = 0;
  [[nodiscard]] bool operator==(const VersionStamp&) const = default;
};

/// The stamp covering `target` right now.  Dependency sets:
///   runs      -> db.runs_version            (run fields + run indexes)
///   instances -> db.instances_version       (covers the produced_by patch)
///   schedule  -> space nodes + links        (the `linked` column reads links)
///   plans     -> space plans_version        (plan fields + node membership)
///   links     -> space links_version        (node activity is immutable)
[[nodiscard]] VersionStamp target_stamp(Target target, const meta::Database& db,
                                        const sched::ScheduleSpace& space);

/// Canonical statement text -> finished QueryResult, validated against the
/// target's VersionStamp.  Entries go stale only when a table the target
/// reads mutates; stale entries are evicted lazily on lookup/insert.
class QueryCache {
 public:
  /// The cached result, or nullptr.  With `validate` false (a testing
  /// backdoor the fuzz harness uses to plant a stale-cache bug) version
  /// stamps are ignored.
  [[nodiscard]] const QueryResult* find(const std::string& key,
                                        const VersionStamp& stamp,
                                        bool validate) const;
  void put(const std::string& key, const VersionStamp& stamp, QueryResult result);
  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    VersionStamp stamp;
    QueryResult result;
  };
  static constexpr std::size_t kMaxEntries = 128;
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace herc::query
