// Evaluation of parsed queries against the database + schedule space.
//
// Execution pipeline (see query_plan.hpp for the moving parts):
//   canonical text -> result-cache probe -> compile predicate -> plan access
//   path (index seek vs full scan) -> residual filter -> aggregate/order/
//   limit -> cache fill.  Every path produces byte-identical results; the
//   fast path only changes how few rows are touched.

#include <algorithm>
#include <map>
#include <numeric>

#include "query/query.hpp"
#include "query/query_plan.hpp"
#include "util/strings.hpp"

namespace herc::query {

std::string value_str(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return "-";
  if (std::holds_alternative<std::int64_t>(v))
    return std::to_string(std::get<std::int64_t>(v));
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v) ? "true" : "false";
  return std::get<std::string>(v);
}

int compare_values(const Value& a, const Value& b) {
  if (a.index() != b.index())
    return a.index() < b.index() ? -1 : 1;  // null < int < bool < string
  if (std::holds_alternative<std::monostate>(a)) return 0;
  if (std::holds_alternative<std::int64_t>(a)) {
    auto x = std::get<std::int64_t>(a), y = std::get<std::int64_t>(b);
    return x < y ? -1 : x > y ? 1 : 0;
  }
  if (std::holds_alternative<bool>(a)) {
    int x = std::get<bool>(a), y = std::get<bool>(b);
    return x - y;
  }
  const auto& x = std::get<std::string>(a);
  const auto& y = std::get<std::string>(b);
  return x < y ? -1 : x > y ? 1 : 0;
}

namespace {

/// True if the column holds a work instant (formatted as a date on render).
bool is_time_column(const std::string& name) {
  return name == "started" || name == "finished" || name == "created" ||
         name == "linked_at" || util::ends_with(name, "_start") ||
         util::ends_with(name, "_finish");
}

}  // namespace

std::vector<std::string> QueryEngine::columns_for(Target t) {
  switch (t) {
    case Target::kRuns:
      return {"id",      "activity", "tool",     "designer", "status",
              "started", "finished", "duration", "output"};
    case Target::kInstances:
      return {"id", "type", "name", "version", "created", "produced_by"};
    case Target::kSchedule:
      return {"id",           "activity",       "plan",          "version",
              "est_duration", "planned_start",  "planned_finish", "baseline_start",
              "baseline_finish", "slack",       "critical",      "completed",
              "actual_start", "actual_finish",  "linked"};
    case Target::kPlans:
      return {"id", "name", "created", "derived_from", "status", "activities"};
    case Target::kLinks:
      return {"id", "node", "activity", "instance", "linked_at"};
  }
  return {};
}

QueryEngine::QueryEngine(const meta::Database& db, const sched::ScheduleSpace& space,
                         obs::EventBus* bus)
    : db_(&db), space_(&space), bus_(bus), cache_(std::make_unique<QueryCache>()) {}

QueryEngine::~QueryEngine() = default;

EngineStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void QueryEngine::clear_cache() const {
  std::lock_guard<std::mutex> lock(mu_);
  cache_->clear();
}

/// Per-execution bookkeeping run() reports back to execute()/explain().
struct QueryEngine::ExecInfo {
  std::uint64_t rows_scanned = 0;
  bool index_seek = false;
  std::string seek_column, seek_key;
  std::size_t candidates = 0;
  std::size_t total_rows = 0;
  std::size_t leaf_count = 0;
};

util::Result<QueryResult> QueryEngine::run(const Query& q, ExecInfo& info,
                                           const meta::Database& db,
                                           const sched::ScheduleSpace& space) const {
  QueryResult result;
  result.columns = columns_for(q.target);
  const std::size_t ncols = result.columns.size();

  auto col_index = [&](const std::string& name) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < ncols; ++i)
      if (result.columns[i] == name) return i;
    return std::nullopt;
  };

  auto src = make_row_source(q.target, db, space);

  // Validate + compile the filter once (unknown fields error exactly like
  // the seed engine, first offender in depth-first order).
  auto compiled = compile_predicate(q.where.get(), q.target, result.columns, *src);
  if (!compiled.ok()) return compiled.error();
  const CompiledPredicate& pred = compiled.value();

  std::optional<std::size_t> order_col;
  if (q.order_by) {
    order_col = col_index(*q.order_by);
    if (!order_col)
      return util::not_found("query: target '" + std::string(target_name(q.target)) +
                             "' has no field '" + *q.order_by + "'");
  }
  std::optional<std::size_t> agg_col;
  if (q.aggregate && q.aggregate->fn != AggregateFn::kCount) {
    agg_col = col_index(q.aggregate->field);
    if (!agg_col)
      return util::not_found("query: target '" + std::string(target_name(q.target)) +
                             "' has no field '" + q.aggregate->field + "'");
  }
  std::optional<std::size_t> group_col;
  if (q.group_by) {
    group_col = col_index(*q.group_by);
    if (!group_col)
      return util::not_found("query: target '" + std::string(target_name(q.target)) +
                             "' has no field '" + *q.group_by + "'");
  }

  info.total_rows = src->count();
  info.leaf_count = pred.leaf_count();

  // Access path: index seek + residual filter when a conjunctive equality
  // leaf hits a secondary index; full scan otherwise.  Candidate rows are
  // ascending, so both paths emit rows in the same (id) order.
  AccessPath path;
  if (options_.use_index && q.where) path = plan_access(*q.where, q.target, db, space);

  std::vector<std::vector<Value>> kept;
  std::vector<char> scratch;
  auto emit = [&](std::size_t row) {
    std::vector<Value> cells;
    cells.reserve(ncols);
    for (std::size_t c = 0; c < ncols; ++c) cells.push_back(src->cell(row, c));
    kept.push_back(std::move(cells));
  };
  if (path.index) {
    info.index_seek = true;
    info.seek_column = path.column;
    info.seek_key = path.key;
    info.candidates = path.rows.size();
    for (std::size_t row : path.rows) {
      ++info.rows_scanned;
      if (pred.eval(*src, row, scratch)) emit(row);
    }
  } else {
    const std::size_t n = src->count();
    for (std::size_t row = 0; row < n; ++row) {
      ++info.rows_scanned;
      if (pred.eval(*src, row, scratch)) emit(row);
    }
  }

  // Aggregate: reduce to one row (or one per group).
  if (q.aggregate) {
    struct Acc {
      std::int64_t count = 0;
      std::int64_t sum = 0;
      std::optional<std::int64_t> min, max;
      std::int64_t numeric = 0;  // cells that participated
    };
    // std::map keeps groups sorted by value for deterministic output.
    std::map<std::string, Acc> groups;
    std::map<std::string, Value> group_values;
    for (const auto& row : kept) {
      Value key_value = group_col ? row[*group_col] : Value{std::monostate{}};
      std::string key = group_col ? value_str(key_value) : "";
      Acc& acc = groups[key];
      group_values.emplace(key, key_value);
      ++acc.count;
      if (agg_col && std::holds_alternative<std::int64_t>(row[*agg_col])) {
        std::int64_t v = std::get<std::int64_t>(row[*agg_col]);
        acc.sum += v;
        acc.min = acc.min ? std::min(*acc.min, v) : v;
        acc.max = acc.max ? std::max(*acc.max, v) : v;
        ++acc.numeric;
      }
    }
    if (groups.empty() && !group_col) groups[""];  // empty input: one row

    QueryResult agg_result;
    std::string agg_name = aggregate_fn_name(q.aggregate->fn);
    if (q.aggregate->fn != AggregateFn::kCount)
      agg_name += "(" + q.aggregate->field + ")";
    if (group_col) agg_result.columns.push_back(*q.group_by);
    agg_result.columns.push_back(agg_name);

    for (const auto& [key, acc] : groups) {
      std::vector<Value> row;
      if (group_col) row.push_back(group_values.at(key));
      switch (q.aggregate->fn) {
        case AggregateFn::kCount: row.emplace_back(acc.count); break;
        case AggregateFn::kSum: row.emplace_back(acc.sum); break;
        case AggregateFn::kAvg:
          row.push_back(acc.numeric ? Value{acc.sum / acc.numeric}
                                    : Value{std::monostate{}});
          break;
        case AggregateFn::kMin:
          row.push_back(acc.min ? Value{*acc.min} : Value{std::monostate{}});
          break;
        case AggregateFn::kMax:
          row.push_back(acc.max ? Value{*acc.max} : Value{std::monostate{}});
          break;
      }
      agg_result.rows.push_back(std::move(row));
    }
    if (q.limit && agg_result.rows.size() > static_cast<std::size_t>(*q.limit))
      agg_result.rows.resize(static_cast<std::size_t>(*q.limit));
    return agg_result;
  }

  // Order (stable so ties keep id order).
  if (order_col) {
    std::stable_sort(kept.begin(), kept.end(),
                     [&](const std::vector<Value>& a, const std::vector<Value>& b) {
                       int cmp = compare_values(a[*order_col], b[*order_col]);
                       return q.descending ? cmp > 0 : cmp < 0;
                     });
  }

  if (q.limit && kept.size() > static_cast<std::size_t>(*q.limit))
    kept.resize(static_cast<std::size_t>(*q.limit));

  result.rows = std::move(kept);
  return result;
}

util::Result<QueryResult> QueryEngine::execute(const Query& q) const {
  return execute(q, *db_, *space_);
}

util::Result<QueryResult> QueryEngine::execute(
    const Query& q, const meta::Database& db,
    const sched::ScheduleSpace& space) const {
  const bool observed = obs::on(bus_);
  const std::int64_t t0 = observed ? obs::EventBus::wall_now_ns() : 0;
  const std::string key = q.str();
  const VersionStamp stamp = target_stamp(q.target, db, space);

  bool cache_hit = false;
  ExecInfo info;
  util::Result<QueryResult> result = util::Result<QueryResult>(QueryResult{});
  if (options_.use_cache) {
    std::lock_guard<std::mutex> lock(mu_);
    const QueryResult* hit = cache_->find(key, stamp, options_.validate_cache);
    if (hit) {
      cache_hit = true;
      ++stats_.cache_hits;
      result = *hit;
    } else {
      ++stats_.cache_misses;
    }
  }
  if (!cache_hit) {
    result = run(q, info, db, space);
    std::lock_guard<std::mutex> lock(mu_);
    stats_.rows_scanned += info.rows_scanned;
    if (info.index_seek) ++stats_.index_seeks;
    if (result.ok() && options_.use_cache)
      cache_->put(key, stamp, result.value());
  }

  if (observed) {
    obs::Event e;
    e.kind = obs::EventKind::kQueryExecuted;
    e.name = key;
    e.category = "query";
    e.duration_ns = obs::EventBus::wall_now_ns() - t0;
    e.failed = !result.ok();
    if (result.ok())
      e.args = {{"rows", std::to_string(result.value().rows.size())}};
    else
      e.args = {{"error", result.error().message}};
    e.args.emplace_back("rows_scanned", std::to_string(info.rows_scanned));
    e.args.emplace_back("index_seeks", info.index_seek ? "1" : "0");
    if (options_.use_cache) {
      e.args.emplace_back("cache_hits", cache_hit ? "1" : "0");
      e.args.emplace_back("cache_misses", cache_hit ? "0" : "1");
    }
    bus_->publish(std::move(e));
  }
  return result;
}

util::Result<QueryResult> QueryEngine::execute(std::string_view text) const {
  return execute(text, *db_, *space_);
}

util::Result<QueryResult> QueryEngine::execute(
    std::string_view text, const meta::Database& db,
    const sched::ScheduleSpace& space) const {
  auto q = parse_query(text);
  if (!q.ok()) {
    if (obs::on(bus_)) {
      obs::Event e;
      e.kind = obs::EventKind::kQueryExecuted;
      e.name = std::string(text);
      e.category = "query";
      e.failed = true;
      e.args = {{"error", q.error().message}};
      bus_->publish(std::move(e));
    }
    return q.error();
  }
  return execute(q.value(), db, space);
}

util::Result<std::string> QueryEngine::explain(const Query& q) const {
  return explain(q, *db_, *space_);
}

util::Result<std::string> QueryEngine::explain(
    const Query& q, const meta::Database& db,
    const sched::ScheduleSpace& space) const {
  const std::vector<std::string> columns = columns_for(q.target);
  auto src = make_row_source(q.target, db, space);
  auto compiled = compile_predicate(q.where.get(), q.target, columns, *src);
  if (!compiled.ok()) return compiled.error();

  // Validate the non-filter fields exactly like run() would.
  auto col_index = [&](const std::string& name) -> bool {
    return std::find(columns.begin(), columns.end(), name) != columns.end();
  };
  for (const std::string* field :
       {q.order_by ? &*q.order_by : nullptr,
        q.aggregate && q.aggregate->fn != AggregateFn::kCount ? &q.aggregate->field
                                                              : nullptr,
        q.group_by ? &*q.group_by : nullptr}) {
    if (field && !col_index(*field))
      return util::not_found("query: target '" + std::string(target_name(q.target)) +
                             "' has no field '" + *field + "'");
  }

  AccessPath path;
  if (options_.use_index && q.where) path = plan_access(*q.where, q.target, db, space);

  const std::string key = q.str();
  const std::size_t total = src->count();
  const std::size_t leaves = compiled.value().leaf_count();

  std::string out = "query:  " + key + "\n";
  if (path.index) {
    out += "access: index seek " + std::string(target_name(q.target)) + "." +
           path.column + " = \"" + path.key + "\" (" +
           std::to_string(path.rows.size()) + " of " + std::to_string(total) +
           " rows), residual filter on " + std::to_string(leaves - 1) +
           " condition(s)\n";
  } else {
    out += "access: full scan (" + std::to_string(total) + " rows), filter on " +
           std::to_string(leaves) + " condition(s)\n";
  }
  if (!options_.use_cache) {
    out += "cache:  disabled\n";
  } else {
    const VersionStamp stamp = target_stamp(q.target, db, space);
    std::lock_guard<std::mutex> lock(mu_);
    const bool hit = cache_->find(key, stamp, options_.validate_cache) != nullptr;
    out += hit ? "cache:  hit\n" : "cache:  cold\n";
  }
  return out;
}

util::Result<std::string> QueryEngine::explain(std::string_view text) const {
  return explain(text, *db_, *space_);
}

util::Result<std::string> QueryEngine::explain(
    std::string_view text, const meta::Database& db,
    const sched::ScheduleSpace& space) const {
  auto q = parse_query(text);
  if (!q.ok()) return q.error();
  return explain(q.value(), db, space);
}

QueryResult QueryEngine::plan_lineage(sched::ScheduleRunId plan) const {
  QueryResult result;
  result.columns = {"generation", "id", "name", "created", "status"};
  auto ids = space_->lineage(plan);
  std::int64_t gen = 0;
  for (sched::ScheduleRunId id : ids) {
    const auto& p = space_->plan(id);
    result.rows.push_back(
        {gen++, static_cast<std::int64_t>(p.id.value()), p.name,
         p.created_at.minutes_since_epoch(),
         std::string(p.status == sched::PlanStatus::kActive ? "active" : "superseded")});
  }
  return result;
}

std::string QueryResult::render(const cal::WorkCalendar* calendar) const {
  // Format every cell first, then size columns.
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (calendar && is_time_column(columns[i]) &&
          std::holds_alternative<std::int64_t>(row[i])) {
        line.push_back(
            calendar->format(cal::WorkInstant(std::get<std::int64_t>(row[i]))));
      } else {
        line.push_back(value_str(row[i]));
      }
    }
    cells.push_back(std::move(line));
  }

  std::vector<std::size_t> widths;
  widths.reserve(columns.size());
  for (const auto& c : columns) widths.push_back(c.size());
  for (const auto& line : cells)
    for (std::size_t i = 0; i < line.size(); ++i)
      widths[i] = std::max(widths[i], line[i].size());

  std::string out;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out += "  ";
    out += util::pad_right(columns[i], widths[i]);
  }
  out += "\n";
  out += util::repeat('-', std::accumulate(widths.begin(), widths.end(),
                                           widths.empty() ? 0 : 2 * (widths.size() - 1)));
  out += "\n";
  for (const auto& line : cells) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (i) out += "  ";
      out += util::pad_right(line[i], widths[i]);
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows.size()) + " row" + (rows.size() == 1 ? "" : "s") +
         ")\n";
  return out;
}

}  // namespace herc::query
