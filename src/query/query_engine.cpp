// Evaluation of parsed queries against the database + schedule space.

#include <algorithm>
#include <map>
#include <numeric>

#include "query/query.hpp"
#include "util/strings.hpp"

namespace herc::query {

std::string value_str(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return "-";
  if (std::holds_alternative<std::int64_t>(v))
    return std::to_string(std::get<std::int64_t>(v));
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v) ? "true" : "false";
  return std::get<std::string>(v);
}

int compare_values(const Value& a, const Value& b) {
  if (a.index() != b.index())
    return a.index() < b.index() ? -1 : 1;  // null < int < bool < string
  if (std::holds_alternative<std::monostate>(a)) return 0;
  if (std::holds_alternative<std::int64_t>(a)) {
    auto x = std::get<std::int64_t>(a), y = std::get<std::int64_t>(b);
    return x < y ? -1 : x > y ? 1 : 0;
  }
  if (std::holds_alternative<bool>(a)) {
    int x = std::get<bool>(a), y = std::get<bool>(b);
    return x - y;
  }
  const auto& x = std::get<std::string>(a);
  const auto& y = std::get<std::string>(b);
  return x < y ? -1 : x > y ? 1 : 0;
}

namespace {

Value instant_value(cal::WorkInstant t) { return t.minutes_since_epoch(); }

Value optional_instant(const std::optional<cal::WorkInstant>& t) {
  if (!t) return std::monostate{};
  return t->minutes_since_epoch();
}

Value id_value(std::uint64_t v) { return static_cast<std::int64_t>(v); }

bool matches(const Condition& c, const Value& v) {
  if (c.op == Op::kContains) {
    if (!std::holds_alternative<std::string>(v) ||
        !std::holds_alternative<std::string>(c.literal))
      return false;
    return std::get<std::string>(v).find(std::get<std::string>(c.literal)) !=
           std::string::npos;
  }
  int cmp = compare_values(v, c.literal);
  switch (c.op) {
    case Op::kEq: return cmp == 0;
    case Op::kNe: return cmp != 0;
    case Op::kLt: return cmp < 0;
    case Op::kLe: return cmp <= 0;
    case Op::kGt: return cmp > 0;
    case Op::kGe: return cmp >= 0;
    case Op::kContains: return false;  // handled above
  }
  return false;
}

bool eval_expr(const Expr& e, const std::vector<Value>& row,
               const std::vector<std::size_t>& field_col,
               std::size_t& next_condition) {
  switch (e.kind) {
    case Expr::Kind::kCondition:
      return matches(e.condition, row[field_col[next_condition++]]);
    case Expr::Kind::kNot:
      return !eval_expr(*e.children[0], row, field_col, next_condition);
    case Expr::Kind::kAnd: {
      bool all = true;
      // No short-circuit: every condition must consume its column slot.
      for (const auto& c : e.children)
        all = eval_expr(*c, row, field_col, next_condition) && all;
      return all;
    }
    case Expr::Kind::kOr: {
      bool any = false;
      for (const auto& c : e.children)
        any = eval_expr(*c, row, field_col, next_condition) || any;
      return any;
    }
  }
  return false;
}

/// True if the column holds a work instant (formatted as a date on render).
bool is_time_column(const std::string& name) {
  return name == "started" || name == "finished" || name == "created" ||
         name == "linked_at" || util::ends_with(name, "_start") ||
         util::ends_with(name, "_finish");
}

}  // namespace

std::vector<std::string> QueryEngine::columns_for(Target t) {
  switch (t) {
    case Target::kRuns:
      return {"id",      "activity", "tool",     "designer", "status",
              "started", "finished", "duration", "output"};
    case Target::kInstances:
      return {"id", "type", "name", "version", "created", "produced_by"};
    case Target::kSchedule:
      return {"id",           "activity",       "plan",          "version",
              "est_duration", "planned_start",  "planned_finish", "baseline_start",
              "baseline_finish", "slack",       "critical",      "completed",
              "actual_start", "actual_finish",  "linked"};
    case Target::kPlans:
      return {"id", "name", "created", "derived_from", "status", "activities"};
    case Target::kLinks:
      return {"id", "node", "activity", "instance", "linked_at"};
  }
  return {};
}

std::vector<std::vector<Value>> QueryEngine::rows_for(
    Target t, const std::vector<std::string>& columns) const {
  std::vector<std::vector<Value>> rows;
  auto row_of = [&](auto&& get_field) {
    std::vector<Value> row;
    row.reserve(columns.size());
    for (const auto& c : columns) row.push_back(get_field(c));
    rows.push_back(std::move(row));
  };

  switch (t) {
    case Target::kRuns:
      for (const auto& r : db_->runs()) {
        row_of([&](const std::string& c) -> Value {
          if (c == "id") return id_value(r.id.value());
          if (c == "activity") return r.activity;
          if (c == "tool") return r.tool_binding;
          if (c == "designer") return r.designer;
          if (c == "status") return std::string(meta::run_status_name(r.status));
          if (c == "started") return instant_value(r.started_at);
          if (c == "finished") return instant_value(r.finished_at);
          if (c == "duration") return (r.finished_at - r.started_at).count_minutes();
          if (c == "output")
            return r.output.valid() ? id_value(r.output.value()) : Value{std::monostate{}};
          return std::monostate{};
        });
      }
      break;
    case Target::kInstances:
      for (const auto& e : db_->instances()) {
        row_of([&](const std::string& c) -> Value {
          if (c == "id") return id_value(e.id.value());
          if (c == "type") return e.type_name;
          if (c == "name") return e.name;
          if (c == "version") return static_cast<std::int64_t>(e.version);
          if (c == "created") return instant_value(e.created_at);
          if (c == "produced_by")
            return e.produced_by.valid() ? id_value(e.produced_by.value())
                                         : Value{std::monostate{}};
          return std::monostate{};
        });
      }
      break;
    case Target::kSchedule:
      for (std::size_t i = 1; i <= space_->node_count(); ++i) {
        const auto& n = space_->node(sched::ScheduleNodeId{i});
        row_of([&](const std::string& c) -> Value {
          if (c == "id") return id_value(n.id.value());
          if (c == "activity") return n.activity;
          if (c == "plan") return id_value(n.plan.value());
          if (c == "version") return static_cast<std::int64_t>(n.version);
          if (c == "est_duration") return n.est_duration.count_minutes();
          if (c == "planned_start") return instant_value(n.planned_start);
          if (c == "planned_finish") return instant_value(n.planned_finish);
          if (c == "baseline_start") return instant_value(n.baseline_start);
          if (c == "baseline_finish") return instant_value(n.baseline_finish);
          if (c == "slack") return n.total_slack.count_minutes();
          if (c == "critical") return n.critical;
          if (c == "completed") return n.completed;
          if (c == "actual_start") return optional_instant(n.actual_start);
          if (c == "actual_finish") return optional_instant(n.actual_finish);
          if (c == "linked") return space_->link_of(n.id).has_value();
          return std::monostate{};
        });
      }
      break;
    case Target::kPlans:
      for (const auto& p : space_->plans()) {
        row_of([&](const std::string& c) -> Value {
          if (c == "id") return id_value(p.id.value());
          if (c == "name") return p.name;
          if (c == "created") return instant_value(p.created_at);
          if (c == "derived_from")
            return p.derived_from.valid() ? id_value(p.derived_from.value())
                                          : Value{std::monostate{}};
          if (c == "status")
            return std::string(p.status == sched::PlanStatus::kActive ? "active"
                                                                      : "superseded");
          if (c == "activities") return static_cast<std::int64_t>(p.nodes.size());
          return std::monostate{};
        });
      }
      break;
    case Target::kLinks:
      for (const auto& l : space_->links()) {
        row_of([&](const std::string& c) -> Value {
          if (c == "id") return id_value(l.id.value());
          if (c == "node") return id_value(l.schedule_node.value());
          if (c == "activity") return space_->node(l.schedule_node).activity;
          if (c == "instance") return id_value(l.entity_instance.value());
          if (c == "linked_at") return instant_value(l.linked_at);
          return std::monostate{};
        });
      }
      break;
  }
  return rows;
}

util::Result<QueryResult> QueryEngine::execute(const Query& q) const {
  if (!obs::on(bus_)) return run(q);
  const std::int64_t t0 = obs::EventBus::wall_now_ns();
  auto result = run(q);
  obs::Event e;
  e.kind = obs::EventKind::kQueryExecuted;
  e.name = q.str();
  e.category = "query";
  e.duration_ns = obs::EventBus::wall_now_ns() - t0;
  e.failed = !result.ok();
  if (result.ok())
    e.args = {{"rows", std::to_string(result.value().rows.size())}};
  else
    e.args = {{"error", result.error().message}};
  bus_->publish(std::move(e));
  return result;
}

util::Result<QueryResult> QueryEngine::run(const Query& q) const {
  QueryResult result;
  result.columns = columns_for(q.target);

  auto col_index = [&](const std::string& name) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < result.columns.size(); ++i)
      if (result.columns[i] == name) return i;
    return std::nullopt;
  };

  // Validate referenced fields before materializing; remember each leaf
  // condition's column (conditions are visited in a fixed depth-first order
  // by both this loop and eval_expr).
  std::vector<const Condition*> leaves;
  if (q.where) q.where->collect_conditions(leaves);
  std::vector<std::size_t> field_col;
  for (const Condition* c : leaves) {
    auto idx = col_index(c->field);
    if (!idx)
      return util::not_found("query: target '" + std::string(target_name(q.target)) +
                             "' has no field '" + c->field + "'");
    field_col.push_back(*idx);
  }
  std::optional<std::size_t> order_col;
  if (q.order_by) {
    order_col = col_index(*q.order_by);
    if (!order_col)
      return util::not_found("query: target '" + std::string(target_name(q.target)) +
                             "' has no field '" + *q.order_by + "'");
  }
  std::optional<std::size_t> agg_col;
  if (q.aggregate && q.aggregate->fn != AggregateFn::kCount) {
    agg_col = col_index(q.aggregate->field);
    if (!agg_col)
      return util::not_found("query: target '" + std::string(target_name(q.target)) +
                             "' has no field '" + q.aggregate->field + "'");
  }
  std::optional<std::size_t> group_col;
  if (q.group_by) {
    group_col = col_index(*q.group_by);
    if (!group_col)
      return util::not_found("query: target '" + std::string(target_name(q.target)) +
                             "' has no field '" + *q.group_by + "'");
  }

  auto rows = rows_for(q.target, result.columns);

  // Filter.
  std::vector<std::vector<Value>> kept;
  for (auto& row : rows) {
    bool ok = true;
    if (q.where) {
      std::size_t next_condition = 0;
      ok = eval_expr(*q.where, row, field_col, next_condition);
    }
    if (ok) kept.push_back(std::move(row));
  }

  // Aggregate: reduce to one row (or one per group).
  if (q.aggregate) {
    struct Acc {
      std::int64_t count = 0;
      std::int64_t sum = 0;
      std::optional<std::int64_t> min, max;
      std::int64_t numeric = 0;  // cells that participated
    };
    // std::map keeps groups sorted by value for deterministic output.
    std::map<std::string, Acc> groups;
    std::map<std::string, Value> group_values;
    for (const auto& row : kept) {
      Value key_value = group_col ? row[*group_col] : Value{std::monostate{}};
      std::string key = group_col ? value_str(key_value) : "";
      Acc& acc = groups[key];
      group_values.emplace(key, key_value);
      ++acc.count;
      if (agg_col && std::holds_alternative<std::int64_t>(row[*agg_col])) {
        std::int64_t v = std::get<std::int64_t>(row[*agg_col]);
        acc.sum += v;
        acc.min = acc.min ? std::min(*acc.min, v) : v;
        acc.max = acc.max ? std::max(*acc.max, v) : v;
        ++acc.numeric;
      }
    }
    if (groups.empty() && !group_col) groups[""];  // empty input: one row

    QueryResult agg_result;
    std::string agg_name = aggregate_fn_name(q.aggregate->fn);
    if (q.aggregate->fn != AggregateFn::kCount)
      agg_name += "(" + q.aggregate->field + ")";
    if (group_col) agg_result.columns.push_back(*q.group_by);
    agg_result.columns.push_back(agg_name);

    for (const auto& [key, acc] : groups) {
      std::vector<Value> row;
      if (group_col) row.push_back(group_values.at(key));
      switch (q.aggregate->fn) {
        case AggregateFn::kCount: row.emplace_back(acc.count); break;
        case AggregateFn::kSum: row.emplace_back(acc.sum); break;
        case AggregateFn::kAvg:
          row.push_back(acc.numeric ? Value{acc.sum / acc.numeric}
                                    : Value{std::monostate{}});
          break;
        case AggregateFn::kMin:
          row.push_back(acc.min ? Value{*acc.min} : Value{std::monostate{}});
          break;
        case AggregateFn::kMax:
          row.push_back(acc.max ? Value{*acc.max} : Value{std::monostate{}});
          break;
      }
      agg_result.rows.push_back(std::move(row));
    }
    if (q.limit && agg_result.rows.size() > static_cast<std::size_t>(*q.limit))
      agg_result.rows.resize(static_cast<std::size_t>(*q.limit));
    return agg_result;
  }

  // Order (stable so ties keep id order).
  if (order_col) {
    std::stable_sort(kept.begin(), kept.end(),
                     [&](const std::vector<Value>& a, const std::vector<Value>& b) {
                       int cmp = compare_values(a[*order_col], b[*order_col]);
                       return q.descending ? cmp > 0 : cmp < 0;
                     });
  }

  if (q.limit && kept.size() > static_cast<std::size_t>(*q.limit))
    kept.resize(static_cast<std::size_t>(*q.limit));

  result.rows = std::move(kept);
  return result;
}

util::Result<QueryResult> QueryEngine::execute(std::string_view text) const {
  auto q = parse_query(text);
  if (!q.ok()) {
    if (obs::on(bus_)) {
      obs::Event e;
      e.kind = obs::EventKind::kQueryExecuted;
      e.name = std::string(text);
      e.category = "query";
      e.failed = true;
      e.args = {{"error", q.error().message}};
      bus_->publish(std::move(e));
    }
    return q.error();
  }
  return execute(q.value());
}

QueryResult QueryEngine::plan_lineage(sched::ScheduleRunId plan) const {
  QueryResult result;
  result.columns = {"generation", "id", "name", "created", "status"};
  auto ids = space_->lineage(plan);
  std::int64_t gen = 0;
  for (sched::ScheduleRunId id : ids) {
    const auto& p = space_->plan(id);
    result.rows.push_back(
        {gen++, static_cast<std::int64_t>(p.id.value()), p.name,
         p.created_at.minutes_since_epoch(),
         std::string(p.status == sched::PlanStatus::kActive ? "active" : "superseded")});
  }
  return result;
}

std::string QueryResult::render(const cal::WorkCalendar* calendar) const {
  // Format every cell first, then size columns.
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (calendar && is_time_column(columns[i]) &&
          std::holds_alternative<std::int64_t>(row[i])) {
        line.push_back(
            calendar->format(cal::WorkInstant(std::get<std::int64_t>(row[i]))));
      } else {
        line.push_back(value_str(row[i]));
      }
    }
    cells.push_back(std::move(line));
  }

  std::vector<std::size_t> widths;
  widths.reserve(columns.size());
  for (const auto& c : columns) widths.push_back(c.size());
  for (const auto& line : cells)
    for (std::size_t i = 0; i < line.size(); ++i)
      widths[i] = std::max(widths[i], line[i].size());

  std::string out;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out += "  ";
    out += util::pad_right(columns[i], widths[i]);
  }
  out += "\n";
  out += util::repeat('-', std::accumulate(widths.begin(), widths.end(),
                                           widths.empty() ? 0 : 2 * (widths.size() - 1)));
  out += "\n";
  for (const auto& line : cells) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (i) out += "  ";
      out += util::pad_right(line[i], widths[i]);
    }
    out += "\n";
  }
  out += "(" + std::to_string(rows.size()) + " row" + (rows.size() == 1 ? "" : "s") +
         ")\n";
  return out;
}

}  // namespace herc::query
