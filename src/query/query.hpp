#pragma once
// Query facility over the metadata database (both spaces).
//
// The paper's Sec. IV.B supports two classes of queries: "queries into
// design schedule data" (e.g. the duration of an activity the last time it
// was performed, used to predict the present design) and "queries into
// design schedule metadata" (which plans were used to create the present
// plan — the plan's evolution).
//
// Language (one statement):
//
//   select [<what> from] <target> [where <expr>]
//                        [group by <field>]
//                        [order by <field> [asc|desc]] [limit <N>]
//
//   what   := * | count | avg(<field>) | sum(<field>) | min(<field>) | max(<field>)
//   target := runs | instances | schedule | plans | links
//   expr   := and_expr (or and_expr)*
//   and_expr := unary (and unary)*
//   unary  := not unary | ( expr ) | <field> <op> <literal>
//   op     := = | != | < | <= | > | >= | contains
//   literal:= "string" | integer | true | false
//
// `and` binds tighter than `or`; `not` tightest; parentheses group.
//
// `select <target> ...` is sugar for `select * from <target> ...`.
// Aggregates reduce the filtered rows to one row (or one row per group with
// `group by`); avg/sum/min/max require a numeric field and skip null cells;
// avg truncates to a whole number (all numeric fields are whole minutes).
// `order by` is not combinable with aggregates (grouped output is sorted by
// the group value).
//
// Time-valued fields are work minutes since the calendar epoch; the renderer
// formats them as dates when a calendar is supplied.

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "calendar/work_calendar.hpp"
#include "core/schedule_space.hpp"
#include "metadata/database.hpp"
#include "obs/event_bus.hpp"
#include "util/result.hpp"

namespace herc::query {

/// A cell value.  Null represents e.g. a missing actual date.
using Value = std::variant<std::monostate, std::int64_t, bool, std::string>;

[[nodiscard]] std::string value_str(const Value& v);

/// Three-way comparison used by filters and ordering; null sorts first and
/// only equals null.  Mixed types compare by type rank (deterministic).
[[nodiscard]] int compare_values(const Value& a, const Value& b);

enum class Target { kRuns, kInstances, kSchedule, kPlans, kLinks };

[[nodiscard]] const char* target_name(Target t);

enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

struct Condition {
  std::string field;
  Op op = Op::kEq;
  Value literal;
};

/// Boolean filter expression tree.
struct Expr {
  enum class Kind { kCondition, kAnd, kOr, kNot };
  Kind kind = Kind::kCondition;
  Condition condition;                       ///< kCondition
  std::vector<std::unique_ptr<Expr>> children;  ///< kAnd/kOr (>=2), kNot (1)

  /// All leaf conditions (for field validation).
  void collect_conditions(std::vector<const Condition*>& out) const;
  /// Canonical text (fully parenthesised for nested and/or).
  [[nodiscard]] std::string str() const;
};

enum class AggregateFn { kCount, kAvg, kSum, kMin, kMax };

[[nodiscard]] const char* aggregate_fn_name(AggregateFn fn);

struct Aggregate {
  AggregateFn fn = AggregateFn::kCount;
  std::string field;  ///< empty for count
};

struct Query {
  Target target = Target::kRuns;
  std::optional<Aggregate> aggregate;     // absent = row select (*)
  std::optional<std::string> group_by;    // only with aggregate
  std::unique_ptr<Expr> where;            // null = no filter
  std::optional<std::string> order_by;
  bool descending = false;
  std::optional<std::int64_t> limit;

  /// Re-emits the statement in canonical form (round-trip tested).
  [[nodiscard]] std::string str() const;
};

[[nodiscard]] util::Result<Query> parse_query(std::string_view text);

/// Result table.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// Text table; when `calendar` is given, *_start/*_finish/created/started/
  /// finished/linked_at columns are formatted as civil dates.
  [[nodiscard]] std::string render(const cal::WorkCalendar* calendar = nullptr) const;
};

class QueryCache;  // query_plan.hpp

/// Fast-path knobs.  Both paths (and cached re-execution) are byte-identical
/// by construction; the toggles exist for benchmarking and for the
/// query-differential fuzz oracle.
struct EngineOptions {
  bool use_index = true;  ///< false: always full-scan
  bool use_cache = true;  ///< false: never cache results
  /// Testing backdoor: serve cached entries without checking the spaces'
  /// version counters (deliberately WRONG — the fuzz harness plants this
  /// bug to prove the differential oracle catches stale caches).
  bool validate_cache = true;
};

/// Cumulative fast-path counters (also published per query on the event bus).
struct EngineStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t rows_scanned = 0;  ///< rows examined by filters
  std::uint64_t index_seeks = 0;   ///< executions that used an index
};

/// Executes queries against one database + schedule space pair.
///
/// Thread-safety: execute()/explain() are safe to call concurrently (the
/// result cache and counters sit behind an internal mutex) PROVIDED each
/// call's data is not mutated underneath it — either pass an immutable
/// epoch snapshot via the explicit (db, space) overloads, or serialize with
/// mutators externally.  The cache is shared across snapshots; per-target
/// version stamps keep entries from different epochs straight.
class QueryEngine {
 public:
  /// `bus` (optional) receives one query_executed event per execute() call,
  /// carrying the canonical statement and the wall-clock latency.
  QueryEngine(const meta::Database& db, const sched::ScheduleSpace& space,
              obs::EventBus* bus = nullptr);
  ~QueryEngine();
  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  [[nodiscard]] util::Result<QueryResult> execute(const Query& q) const;

  /// Parses and executes in one step.
  [[nodiscard]] util::Result<QueryResult> execute(std::string_view text) const;

  /// Snapshot execution: same pipeline, but rows, indexes, and symbol
  /// probes all come from the given (db, space) — typically a pinned
  /// hercules::ReadView — instead of the pair the engine was built over.
  [[nodiscard]] util::Result<QueryResult> execute(
      const Query& q, const meta::Database& db,
      const sched::ScheduleSpace& space) const;
  [[nodiscard]] util::Result<QueryResult> execute(
      std::string_view text, const meta::Database& db,
      const sched::ScheduleSpace& space) const;

  /// Describes how the query would execute: chosen access path (index seek
  /// vs full scan), residual conditions, and whether the result cache would
  /// serve it.  Validates exactly like execute() without touching any row.
  [[nodiscard]] util::Result<std::string> explain(const Query& q) const;
  [[nodiscard]] util::Result<std::string> explain(std::string_view text) const;
  [[nodiscard]] util::Result<std::string> explain(
      const Query& q, const meta::Database& db,
      const sched::ScheduleSpace& space) const;
  [[nodiscard]] util::Result<std::string> explain(
      std::string_view text, const meta::Database& db,
      const sched::ScheduleSpace& space) const;

  void set_options(const EngineOptions& options) { options_ = options; }
  [[nodiscard]] const EngineOptions& options() const { return options_; }

  /// Cumulative counters since construction (thread-safe snapshot).
  [[nodiscard]] EngineStats stats() const;

  /// Drops every cached result (tests).
  void clear_cache() const;

  /// The plan-evolution query: ancestry of `plan`, newest first.  This is
  /// the paper's "which schedule plans were used to create the present
  /// schedule plan".
  [[nodiscard]] QueryResult plan_lineage(sched::ScheduleRunId plan) const;

 private:
  struct ExecInfo;
  /// The evaluation itself, unobserved; execute() wraps it with timing,
  /// caching and stats.
  [[nodiscard]] util::Result<QueryResult> run(const Query& q, ExecInfo& info,
                                              const meta::Database& db,
                                              const sched::ScheduleSpace& space) const;
  [[nodiscard]] static std::vector<std::string> columns_for(Target t);

  const meta::Database* db_;
  const sched::ScheduleSpace* space_;
  obs::EventBus* bus_ = nullptr;
  EngineOptions options_;
  mutable std::mutex mu_;  ///< guards cache_ + stats_
  std::unique_ptr<QueryCache> cache_;
  mutable EngineStats stats_;
};

}  // namespace herc::query
