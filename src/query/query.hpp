#pragma once
// Query facility over the metadata database (both spaces).
//
// The paper's Sec. IV.B supports two classes of queries: "queries into
// design schedule data" (e.g. the duration of an activity the last time it
// was performed, used to predict the present design) and "queries into
// design schedule metadata" (which plans were used to create the present
// plan — the plan's evolution).
//
// Language (one statement):
//
//   select [<what> from] <target> [where <expr>]
//                        [group by <field>]
//                        [order by <field> [asc|desc]] [limit <N>]
//
//   what   := * | count | avg(<field>) | sum(<field>) | min(<field>) | max(<field>)
//   target := runs | instances | schedule | plans | links
//   expr   := and_expr (or and_expr)*
//   and_expr := unary (and unary)*
//   unary  := not unary | ( expr ) | <field> <op> <literal>
//   op     := = | != | < | <= | > | >= | contains
//   literal:= "string" | integer | true | false
//
// `and` binds tighter than `or`; `not` tightest; parentheses group.
//
// `select <target> ...` is sugar for `select * from <target> ...`.
// Aggregates reduce the filtered rows to one row (or one row per group with
// `group by`); avg/sum/min/max require a numeric field and skip null cells;
// avg truncates to a whole number (all numeric fields are whole minutes).
// `order by` is not combinable with aggregates (grouped output is sorted by
// the group value).
//
// Time-valued fields are work minutes since the calendar epoch; the renderer
// formats them as dates when a calendar is supplied.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "calendar/work_calendar.hpp"
#include "core/schedule_space.hpp"
#include "metadata/database.hpp"
#include "obs/event_bus.hpp"
#include "util/result.hpp"

namespace herc::query {

/// A cell value.  Null represents e.g. a missing actual date.
using Value = std::variant<std::monostate, std::int64_t, bool, std::string>;

[[nodiscard]] std::string value_str(const Value& v);

/// Three-way comparison used by filters and ordering; null sorts first and
/// only equals null.  Mixed types compare by type rank (deterministic).
[[nodiscard]] int compare_values(const Value& a, const Value& b);

enum class Target { kRuns, kInstances, kSchedule, kPlans, kLinks };

[[nodiscard]] const char* target_name(Target t);

enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

struct Condition {
  std::string field;
  Op op = Op::kEq;
  Value literal;
};

/// Boolean filter expression tree.
struct Expr {
  enum class Kind { kCondition, kAnd, kOr, kNot };
  Kind kind = Kind::kCondition;
  Condition condition;                       ///< kCondition
  std::vector<std::unique_ptr<Expr>> children;  ///< kAnd/kOr (>=2), kNot (1)

  /// All leaf conditions (for field validation).
  void collect_conditions(std::vector<const Condition*>& out) const;
  /// Canonical text (fully parenthesised for nested and/or).
  [[nodiscard]] std::string str() const;
};

enum class AggregateFn { kCount, kAvg, kSum, kMin, kMax };

[[nodiscard]] const char* aggregate_fn_name(AggregateFn fn);

struct Aggregate {
  AggregateFn fn = AggregateFn::kCount;
  std::string field;  ///< empty for count
};

struct Query {
  Target target = Target::kRuns;
  std::optional<Aggregate> aggregate;     // absent = row select (*)
  std::optional<std::string> group_by;    // only with aggregate
  std::unique_ptr<Expr> where;            // null = no filter
  std::optional<std::string> order_by;
  bool descending = false;
  std::optional<std::int64_t> limit;

  /// Re-emits the statement in canonical form (round-trip tested).
  [[nodiscard]] std::string str() const;
};

[[nodiscard]] util::Result<Query> parse_query(std::string_view text);

/// Result table.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  /// Text table; when `calendar` is given, *_start/*_finish/created/started/
  /// finished/linked_at columns are formatted as civil dates.
  [[nodiscard]] std::string render(const cal::WorkCalendar* calendar = nullptr) const;
};

/// Executes queries against one database + schedule space pair.
class QueryEngine {
 public:
  /// `bus` (optional) receives one query_executed event per execute() call,
  /// carrying the canonical statement and the wall-clock latency.
  QueryEngine(const meta::Database& db, const sched::ScheduleSpace& space,
              obs::EventBus* bus = nullptr)
      : db_(&db), space_(&space), bus_(bus) {}

  [[nodiscard]] util::Result<QueryResult> execute(const Query& q) const;

  /// Parses and executes in one step.
  [[nodiscard]] util::Result<QueryResult> execute(std::string_view text) const;

  /// The plan-evolution query: ancestry of `plan`, newest first.  This is
  /// the paper's "which schedule plans were used to create the present
  /// schedule plan".
  [[nodiscard]] QueryResult plan_lineage(sched::ScheduleRunId plan) const;

 private:
  /// The evaluation itself, unobserved; execute() wraps it with timing.
  [[nodiscard]] util::Result<QueryResult> run(const Query& q) const;
  [[nodiscard]] std::vector<std::vector<Value>> rows_for(
      Target t, const std::vector<std::string>& columns) const;
  [[nodiscard]] static std::vector<std::string> columns_for(Target t);

  const meta::Database* db_;
  const sched::ScheduleSpace* space_;
  obs::EventBus* bus_ = nullptr;
};

}  // namespace herc::query
