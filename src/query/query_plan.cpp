#include "query/query_plan.hpp"

#include <algorithm>
#include <functional>

namespace herc::query {

namespace {

Value instant_value(cal::WorkInstant t) { return t.minutes_since_epoch(); }

Value optional_instant(const std::optional<cal::WorkInstant>& t) {
  if (!t) return std::monostate{};
  return t->minutes_since_epoch();
}

Value id_value(std::uint64_t v) { return static_cast<std::int64_t>(v); }

// Column order must match QueryEngine::columns_for exactly; the compiled
// leaves address columns by these indexes.

struct RunsSource final : RowSource {
  explicit RunsSource(const meta::Database& d) : db(&d) {}
  std::size_t count() const override { return db->run_count(); }
  Value cell(std::size_t row, std::size_t col) const override {
    const meta::Run& r = db->runs()[row];
    switch (col) {
      case 0: return id_value(r.id.value());
      case 1: return r.activity;
      case 2: return r.tool_binding;
      case 3: return r.designer;
      case 4: return std::string(meta::run_status_name(r.status));
      case 5: return instant_value(r.started_at);
      case 6: return instant_value(r.finished_at);
      case 7: return (r.finished_at - r.started_at).count_minutes();
      case 8:
        return r.output.valid() ? id_value(r.output.value()) : Value{std::monostate{}};
    }
    return std::monostate{};
  }
  bool symbol_col(std::size_t col) const override { return col >= 1 && col <= 3; }
  util::SymbolId sym(std::size_t row, std::size_t col) const override {
    const meta::Run& r = db->runs()[row];
    switch (col) {
      case 1: return r.activity_sym;
      case 2: return r.tool_sym;
      case 3: return r.designer_sym;
    }
    return {};
  }
  util::SymbolId probe(std::size_t col, const std::string& s) const override {
    return symbol_col(col) ? db->symbols().find(s) : util::SymbolId{};
  }
  const meta::Database* db;
};

struct InstancesSource final : RowSource {
  explicit InstancesSource(const meta::Database& d) : db(&d) {}
  std::size_t count() const override { return db->instance_count(); }
  Value cell(std::size_t row, std::size_t col) const override {
    const meta::EntityInstance& e = db->instances()[row];
    switch (col) {
      case 0: return id_value(e.id.value());
      case 1: return e.type_name;
      case 2: return e.name;
      case 3: return static_cast<std::int64_t>(e.version);
      case 4: return instant_value(e.created_at);
      case 5:
        return e.produced_by.valid() ? id_value(e.produced_by.value())
                                     : Value{std::monostate{}};
    }
    return std::monostate{};
  }
  bool symbol_col(std::size_t col) const override { return col == 1 || col == 2; }
  util::SymbolId sym(std::size_t row, std::size_t col) const override {
    const meta::EntityInstance& e = db->instances()[row];
    return col == 1 ? e.type_sym : col == 2 ? e.name_sym : util::SymbolId{};
  }
  util::SymbolId probe(std::size_t col, const std::string& s) const override {
    return symbol_col(col) ? db->symbols().find(s) : util::SymbolId{};
  }
  const meta::Database* db;
};

struct ScheduleSource final : RowSource {
  explicit ScheduleSource(const sched::ScheduleSpace& s) : space(&s) {}
  std::size_t count() const override { return space->node_count(); }
  Value cell(std::size_t row, std::size_t col) const override {
    const sched::ScheduleNode& n = space->node(sched::ScheduleNodeId{row + 1});
    switch (col) {
      case 0: return id_value(n.id.value());
      case 1: return n.activity;
      case 2: return id_value(n.plan.value());
      case 3: return static_cast<std::int64_t>(n.version);
      case 4: return n.est_duration.count_minutes();
      case 5: return instant_value(n.planned_start);
      case 6: return instant_value(n.planned_finish);
      case 7: return instant_value(n.baseline_start);
      case 8: return instant_value(n.baseline_finish);
      case 9: return n.total_slack.count_minutes();
      case 10: return n.critical;
      case 11: return n.completed;
      case 12: return optional_instant(n.actual_start);
      case 13: return optional_instant(n.actual_finish);
      case 14: return space->link_of(n.id).has_value();
    }
    return std::monostate{};
  }
  bool symbol_col(std::size_t col) const override { return col == 1; }
  util::SymbolId sym(std::size_t row, std::size_t col) const override {
    if (col != 1) return {};
    return space->node(sched::ScheduleNodeId{row + 1}).activity_sym;
  }
  util::SymbolId probe(std::size_t col, const std::string& s) const override {
    return col == 1 ? space->symbols().find(s) : util::SymbolId{};
  }
  const sched::ScheduleSpace* space;
};

struct PlansSource final : RowSource {
  explicit PlansSource(const sched::ScheduleSpace& s) : space(&s) {}
  std::size_t count() const override { return space->plans().size(); }
  Value cell(std::size_t row, std::size_t col) const override {
    const sched::ScheduleRun& p = space->plans()[row];
    switch (col) {
      case 0: return id_value(p.id.value());
      case 1: return p.name;
      case 2: return instant_value(p.created_at);
      case 3:
        return p.derived_from.valid() ? id_value(p.derived_from.value())
                                      : Value{std::monostate{}};
      case 4:
        return std::string(p.status == sched::PlanStatus::kActive ? "active"
                                                                  : "superseded");
      case 5: return static_cast<std::int64_t>(p.nodes.size());
    }
    return std::monostate{};
  }
  const sched::ScheduleSpace* space;
};

struct LinksSource final : RowSource {
  explicit LinksSource(const sched::ScheduleSpace& s) : space(&s) {}
  std::size_t count() const override { return space->links().size(); }
  Value cell(std::size_t row, std::size_t col) const override {
    const sched::Link& l = space->links()[row];
    switch (col) {
      case 0: return id_value(l.id.value());
      case 1: return id_value(l.schedule_node.value());
      case 2: return space->node(l.schedule_node).activity;
      case 3: return id_value(l.entity_instance.value());
      case 4: return instant_value(l.linked_at);
    }
    return std::monostate{};
  }
  bool symbol_col(std::size_t col) const override { return col == 2; }
  util::SymbolId sym(std::size_t row, std::size_t col) const override {
    if (col != 2) return {};
    return space->node(space->links()[row].schedule_node).activity_sym;
  }
  util::SymbolId probe(std::size_t col, const std::string& s) const override {
    return col == 2 ? space->symbols().find(s) : util::SymbolId{};
  }
  const sched::ScheduleSpace* space;
};

/// Seed-identical condition semantics for the generic (non-symbol) path.
bool matches_value(Op op, const Value& literal, const Value& v) {
  if (op == Op::kContains) {
    if (!std::holds_alternative<std::string>(v) ||
        !std::holds_alternative<std::string>(literal))
      return false;
    return std::get<std::string>(v).find(std::get<std::string>(literal)) !=
           std::string::npos;
  }
  int cmp = compare_values(v, literal);
  switch (op) {
    case Op::kEq: return cmp == 0;
    case Op::kNe: return cmp != 0;
    case Op::kLt: return cmp < 0;
    case Op::kLe: return cmp <= 0;
    case Op::kGt: return cmp > 0;
    case Op::kGe: return cmp >= 0;
    case Op::kContains: return false;  // handled above
  }
  return false;
}

void collect_conjunctive(const Expr& e, std::vector<const Condition*>& out) {
  if (e.kind == Expr::Kind::kCondition) {
    out.push_back(&e.condition);
  } else if (e.kind == Expr::Kind::kAnd) {
    for (const auto& child : e.children) collect_conjunctive(*child, out);
  }
}

template <class IdList>
std::vector<std::size_t> to_rows(const IdList& ids) {
  std::vector<std::size_t> rows;
  rows.reserve(ids.size());
  for (auto id : ids) rows.push_back(id.value() - 1);
  return rows;
}

}  // namespace

std::unique_ptr<RowSource> make_row_source(Target target, const meta::Database& db,
                                           const sched::ScheduleSpace& space) {
  switch (target) {
    case Target::kRuns: return std::make_unique<RunsSource>(db);
    case Target::kInstances: return std::make_unique<InstancesSource>(db);
    case Target::kSchedule: return std::make_unique<ScheduleSource>(space);
    case Target::kPlans: return std::make_unique<PlansSource>(space);
    case Target::kLinks: return std::make_unique<LinksSource>(space);
  }
  return std::make_unique<RunsSource>(db);
}

bool CompiledPredicate::eval(const RowSource& src, std::size_t row,
                             std::vector<char>& stack) const {
  if (code_.empty()) return true;
  stack.clear();
  for (const Instr& instr : code_) {
    switch (instr.op) {
      case OpCode::kLeaf: {
        const CompiledLeaf& leaf = leaves_[instr.arg];
        bool v;
        if (leaf.sym_compare) {
          const bool eq = src.sym(row, leaf.col) == leaf.sym;
          v = leaf.op == Op::kEq ? eq : !eq;
        } else {
          v = matches_value(leaf.op, leaf.literal, src.cell(row, leaf.col));
        }
        stack.push_back(v);
        break;
      }
      case OpCode::kNot:
        stack.back() = !stack.back();
        break;
      case OpCode::kAnd: {
        bool all = true;
        for (std::uint32_t i = 0; i < instr.arg; ++i) {
          all = all && stack.back();
          stack.pop_back();
        }
        stack.push_back(all);
        break;
      }
      case OpCode::kOr: {
        bool any = false;
        for (std::uint32_t i = 0; i < instr.arg; ++i) {
          any = any || stack.back();
          stack.pop_back();
        }
        stack.push_back(any);
        break;
      }
    }
  }
  return stack.back();
}

util::Result<CompiledPredicate> compile_predicate(
    const Expr* where, Target target, const std::vector<std::string>& columns,
    const RowSource& src) {
  CompiledPredicate out;
  if (!where) return out;

  auto col_index = [&](const std::string& name) -> std::optional<std::size_t> {
    for (std::size_t i = 0; i < columns.size(); ++i)
      if (columns[i] == name) return i;
    return std::nullopt;
  };

  // Depth-first, children before parent; first unknown field wins the error,
  // matching the seed engine's collect_conditions order.
  util::Status error = util::Status::ok_status();
  std::function<void(const Expr&)> emit = [&](const Expr& e) {
    if (!error.ok()) return;
    switch (e.kind) {
      case Expr::Kind::kCondition: {
        auto idx = col_index(e.condition.field);
        if (!idx) {
          error = util::not_found("query: target '" +
                                  std::string(target_name(target)) +
                                  "' has no field '" + e.condition.field + "'");
          return;
        }
        CompiledLeaf leaf;
        leaf.col = *idx;
        leaf.op = e.condition.op;
        leaf.literal = e.condition.literal;
        if ((leaf.op == Op::kEq || leaf.op == Op::kNe) &&
            src.symbol_col(leaf.col) &&
            std::holds_alternative<std::string>(leaf.literal)) {
          leaf.sym_compare = true;
          leaf.sym = src.probe(leaf.col, std::get<std::string>(leaf.literal));
        }
        out.leaves_.push_back(std::move(leaf));
        out.code_.push_back({CompiledPredicate::OpCode::kLeaf,
                             static_cast<std::uint32_t>(out.leaves_.size() - 1)});
        break;
      }
      case Expr::Kind::kNot:
        emit(*e.children[0]);
        out.code_.push_back({CompiledPredicate::OpCode::kNot, 0});
        break;
      case Expr::Kind::kAnd:
      case Expr::Kind::kOr:
        for (const auto& child : e.children) emit(*child);
        out.code_.push_back({e.kind == Expr::Kind::kAnd
                                 ? CompiledPredicate::OpCode::kAnd
                                 : CompiledPredicate::OpCode::kOr,
                             static_cast<std::uint32_t>(e.children.size())});
        break;
    }
  };
  emit(*where);
  if (!error.ok()) return error.error();
  return out;
}

AccessPath plan_access(const Expr& where, Target target, const meta::Database& db,
                       const sched::ScheduleSpace& space) {
  std::vector<const Condition*> conj;
  collect_conjunctive(where, conj);

  AccessPath best;
  bool have = false;
  for (const Condition* c : conj) {
    if (c->op != Op::kEq || !std::holds_alternative<std::string>(c->literal))
      continue;
    const std::string& key = std::get<std::string>(c->literal);
    bool applicable = false;
    std::vector<std::size_t> rows;
    switch (target) {
      case Target::kRuns:
        if (c->field == "activity") {
          rows = to_rows(db.runs_of_activity(key));
          applicable = true;
        } else if (c->field == "designer") {
          rows = to_rows(db.runs_of_designer(key));
          applicable = true;
        } else if (c->field == "tool") {
          rows = to_rows(db.runs_of_tool(key));
          applicable = true;
        } else if (c->field == "status") {
          applicable = true;  // an impossible literal seeks zero rows
          if (key == "completed")
            rows = to_rows(db.runs_with_status(meta::RunStatus::kCompleted));
          else if (key == "failed")
            rows = to_rows(db.runs_with_status(meta::RunStatus::kFailed));
        }
        break;
      case Target::kInstances:
        if (c->field == "type") {
          rows = to_rows(db.container(key));
          applicable = true;
        } else if (c->field == "name") {
          rows = to_rows(db.instances_named(key));
          applicable = true;
        }
        break;
      case Target::kSchedule:
        if (c->field == "activity") {
          rows = to_rows(space.container(key));
          applicable = true;
        }
        break;
      case Target::kPlans:
      case Target::kLinks:
        break;  // small spaces, no maintained indexes
    }
    if (!applicable) continue;
    if (!have || rows.size() < best.rows.size()) {
      best.index = true;
      best.column = c->field;
      best.key = key;
      best.rows = std::move(rows);
      have = true;
    }
  }
  return best;
}

VersionStamp target_stamp(Target target, const meta::Database& db,
                          const sched::ScheduleSpace& space) {
  switch (target) {
    case Target::kRuns: return {db.runs_version(), 0};
    case Target::kInstances: return {db.instances_version(), 0};
    case Target::kSchedule: return {space.nodes_version(), space.links_version()};
    case Target::kPlans: return {space.plans_version(), 0};
    case Target::kLinks: return {space.links_version(), 0};
  }
  return {};
}

const QueryResult* QueryCache::find(const std::string& key,
                                    const VersionStamp& stamp, bool validate) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (validate && !(it->second.stamp == stamp)) return nullptr;
  return &it->second.result;
}

void QueryCache::put(const std::string& key, const VersionStamp& stamp,
                     QueryResult result) {
  if (entries_.size() >= kMaxEntries && !entries_.count(key)) {
    // An entry whose key we are not about to overwrite has to make room.
    // There is no cheap staleness test against a single stamp anymore (each
    // entry validates against its own target's tables), so drop everything:
    // the cache refills in one round of the working set.
    entries_.clear();
  }
  entries_[key] = Entry{stamp, std::move(result)};
}

}  // namespace herc::query
