// herc_srv — the multi-project Hercules server.
//
//   herc_srv --unix /tmp/herc.sock                 # unix-domain listener
//   herc_srv --tcp 7421 [--host 0.0.0.0]           # tcp listener (0 = pick)
//   herc_srv --dir DATA --workers 8                # shard files + pool size
//   herc_srv --durable --window-us 200             # fsync'd group commit
//   herc_srv --no-group-commit                     # plain per-run journal
//   herc_srv --open NAME=SEED[:shape:size] ...     # pre-open projects
//
// Runs until SIGINT/SIGTERM or a `shutdown` wire op, then drains in-flight
// requests and writes a final group commit + snapshot per project before
// exiting 0.  Prints the bound addresses on stdout once listening (port 0
// resolves here), so scripts can parse them.
//
// Exit status: 0 clean shutdown, 1 startup failure, 2 usage.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "srv/server.hpp"

namespace {

using namespace herc;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--unix PATH] [--tcp PORT] [--host HOST] [--dir DIR]\n"
               "          [--workers N] [--durable] [--window-us N]\n"
               "          [--no-group-commit] [--tool-minutes N]\n"
               "          [--open NAME=SEED[:shape:size]]...\n",
               argv0);
  return 2;
}

// Self-pipe: the handler only writes a byte; main polls it next to the
// server's own stop event.  Nothing non-async-signal-safe runs in here.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  char byte = 'q';
  [[maybe_unused]] auto n = ::write(g_signal_pipe[1], &byte, 1);
}

struct OpenSpec {
  std::string name;
  std::uint64_t seed = 1;
  std::string shape = "layered";
  std::size_t size = 3;
};

bool parse_open(const std::string& text, OpenSpec& out) {
  auto eq = text.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  out.name = text.substr(0, eq);
  std::string rest = text.substr(eq + 1);
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    auto colon = rest.find(':', start);
    parts.push_back(rest.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }
  if (parts.empty() || parts[0].empty()) return false;
  out.seed = std::strtoull(parts[0].c_str(), nullptr, 10);
  if (parts.size() > 1 && !parts[1].empty()) out.shape = parts[1];
  if (parts.size() > 2 && !parts[2].empty()) {
    out.size = static_cast<std::size_t>(std::strtoull(parts[2].c_str(), nullptr, 10));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  srv::ServerConfig config;
  std::vector<OpenSpec> opens;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--unix") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.unix_path = v;
    } else if (arg == "--tcp") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.tcp_port = std::atoi(v);
    } else if (arg == "--host") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.tcp_host = v;
    } else if (arg == "--dir") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.shard.dir = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.workers = std::atoi(v);
    } else if (arg == "--durable") {
      config.shard.durable = true;
    } else if (arg == "--window-us") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.shard.commit_window = std::chrono::microseconds(std::atoll(v));
    } else if (arg == "--no-group-commit") {
      config.shard.group_commit = false;
    } else if (arg == "--tool-minutes") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      config.tool_minutes = std::atoll(v);
    } else if (arg == "--open") {
      const char* v = next();
      OpenSpec spec;
      if (!v || !parse_open(v, spec)) return usage(argv[0]);
      opens.push_back(spec);
    } else {
      return usage(argv[0]);
    }
  }
  if (config.unix_path.empty() && config.tcp_port < 0) return usage(argv[0]);

  auto server = srv::Server::start(std::move(config));
  if (!server.ok()) {
    std::fprintf(stderr, "herc_srv: %s\n", server.error().str().c_str());
    return 1;
  }

  for (const auto& spec : opens) {
    gen::ScenarioSpec sspec;
    sspec.seed = spec.seed;
    sspec.size = spec.size;
    auto shape = gen::parse_shape(spec.shape);
    if (!shape.ok()) {
      std::fprintf(stderr, "herc_srv: --open %s: %s\n", spec.name.c_str(),
                   shape.error().str().c_str());
      return 1;
    }
    sspec.shape = shape.value();
    auto shard = srv::ProjectShard::create(spec.name, gen::generate(sspec),
                                           server.value()->config_shard());
    if (!shard.ok()) {
      std::fprintf(stderr, "herc_srv: --open %s: %s\n", spec.name.c_str(),
                   shard.error().str().c_str());
      return 1;
    }
    server.value()->adopt_shard(std::move(shard).take());
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "herc_srv: pipe() failed\n");
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = on_signal;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  if (!server.value()->unix_address().empty()) {
    std::printf("listening %s\n", server.value()->unix_address().c_str());
  }
  if (server.value()->tcp_port() >= 0) {
    std::printf("listening %s\n", server.value()->tcp_address().c_str());
  }
  std::fflush(stdout);

  // Block until a signal or a `shutdown` op, then drain and exit.
  pollfd fds[2] = {{g_signal_pipe[0], POLLIN, 0},
                   {server.value()->stop_event_fd(), POLLIN, 0}};
  while (!server.value()->stop_requested()) {
    int rc = ::poll(fds, 2, -1);
    if (rc > 0) break;
    if (rc < 0 && errno != EINTR) break;
  }
  server.value()->stop();
  std::printf("clean shutdown\n");
  return 0;
}
