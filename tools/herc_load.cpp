// herc_load — closed-loop load driver for herc_srv.
//
//   herc_load --addr unix:/tmp/herc.sock --projects 8 --designers 4
//             --duration 10 [--open-arrival --rate 20] [--read-every 5]
//   herc_load --spawn [--durable] [--no-group-commit]   # in-process server
//   herc_load --bench-json FILE    # append BENCH_BASELINE-format records
//
// Reports runs/sec and request latency percentiles; with --bench-json it
// emits records the regression checker (tools/check_bench_regression.py)
// merges alongside the microbench baselines:
//
//   {"name": "srv/load_p50_us", "iters": <requests>, "ns_per_op": p50*1000}
//
// Exit status: 0 success, 1 driver/server failure, 2 usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "srv/load.hpp"
#include "srv/server.hpp"

namespace {

using namespace herc;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--addr ADDR | --spawn) [--projects N] [--designers M]\n"
               "          [--duration SECS[s]] [--open-arrival] [--rate R]\n"
               "          [--read-every K] [--read-mix PCT] [--seed N]\n"
               "          [--shape NAME] [--size N] [--durable]\n"
               "          [--no-group-commit] [--no-snapshot-reads] [--window-us N]\n"
               "          [--dir DIR] [--workers N] [--bench-json FILE] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  srv::LoadOptions options;
  bool spawn = false;
  bool quiet = false;
  std::string bench_json;
  srv::ServerConfig config;
  config.shard.dir = "/tmp";
  config.unix_path = "/tmp/herc_load.sock";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (arg == "--addr" && (v = next())) {
      options.address = v;
    } else if (arg == "--spawn") {
      spawn = true;
    } else if (arg == "--projects" && (v = next())) {
      options.projects = std::atoi(v);
    } else if (arg == "--designers" && (v = next())) {
      options.designers = std::atoi(v);
    } else if (arg == "--duration" && (v = next())) {
      options.duration = std::chrono::milliseconds(
          static_cast<std::int64_t>(std::atof(v) * 1000));
    } else if (arg == "--open-arrival") {
      options.arrival = srv::LoadOptions::Arrival::kOpen;
    } else if (arg == "--rate" && (v = next())) {
      options.rate_per_designer = std::atof(v);
    } else if (arg == "--read-every" && (v = next())) {
      options.read_every = std::atoi(v);
    } else if (arg == "--read-mix" && (v = next())) {
      options.read_mix = std::atoi(v);
    } else if (arg == "--warmup" && (v = next())) {
      options.warmup_executes = std::atoi(v);
    } else if (arg == "--seed" && (v = next())) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shape" && (v = next())) {
      options.shape = v;
    } else if (arg == "--size" && (v = next())) {
      options.size = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--durable") {
      config.shard.durable = true;
    } else if (arg == "--no-group-commit") {
      config.shard.group_commit = false;
    } else if (arg == "--no-snapshot-reads") {
      config.shard.snapshot_reads = false;
    } else if (arg == "--window-us" && (v = next())) {
      config.shard.commit_window = std::chrono::microseconds(std::atoll(v));
    } else if (arg == "--dir" && (v = next())) {
      config.shard.dir = v;
    } else if (arg == "--workers" && (v = next())) {
      config.workers = std::atoi(v);
    } else if (arg == "--bench-json" && (v = next())) {
      bench_json = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (options.address.empty() && !spawn) return usage(argv[0]);

  std::unique_ptr<srv::Server> server;
  if (spawn) {
    config.unix_path += "." + std::to_string(::getpid());
    auto started = srv::Server::start(config);
    if (!started.ok()) {
      std::fprintf(stderr, "herc_load: spawn: %s\n", started.error().str().c_str());
      return 1;
    }
    server = std::move(started).take();
    options.address = server->unix_address();
  }

  auto report = srv::run_load(options);
  if (!report.ok()) {
    std::fprintf(stderr, "herc_load: %s\n", report.error().str().c_str());
    return 1;
  }

  if (!quiet) {
    std::printf("%s\n", report.value().summary().c_str());
  }
  std::printf("%s\n", report.value().to_json().dump(-1).c_str());

  if (!bench_json.empty()) {
    // BENCH_BASELINE.json record shape; the checker merges files and ignores
    // records the current run lacks, so these coexist with the microbenches.
    util::JsonArray records;
    auto add = [&](const std::string& name, std::int64_t iters, double ns) {
      util::JsonObject r;
      r.set("name", name);
      r.set("iters", util::Json(iters));
      r.set("ns_per_op", util::Json(ns));
      records.push_back(util::Json(std::move(r)));
    };
    const auto& rep = report.value();
    auto iters = static_cast<std::int64_t>(rep.requests);
    add("srv/load_p50_us", iters, static_cast<double>(rep.p50_us) * 1000.0);
    add("srv/load_p99_us", iters, static_cast<double>(rep.p99_us) * 1000.0);
    if (rep.runs > 0) {
      add("srv/load_ns_per_run", static_cast<std::int64_t>(rep.runs),
          rep.elapsed_sec * 1e9 / static_cast<double>(rep.runs));
    }
    if (rep.reads > 0 && rep.writes > 0) {
      // The read-mix (MVCC snapshot-read) records: read service time, read
      // throughput, and the write tail under concurrent readers.
      add("srv/readmix_read_p50_us", static_cast<std::int64_t>(rep.reads),
          static_cast<double>(rep.read_p50_us) * 1000.0);
      add("srv/readmix_read_p99_us", static_cast<std::int64_t>(rep.reads),
          static_cast<double>(rep.read_p99_us) * 1000.0);
      add("srv/readmix_write_p99_us", static_cast<std::int64_t>(rep.writes),
          static_cast<double>(rep.write_p99_us) * 1000.0);
      add("srv/readmix_ns_per_read", static_cast<std::int64_t>(rep.reads),
          rep.elapsed_sec * 1e9 / static_cast<double>(rep.reads));
    }
    std::ofstream out(bench_json);
    out << util::Json(std::move(records)).dump(2) << "\n";
    if (!out) {
      std::fprintf(stderr, "herc_load: cannot write %s\n", bench_json.c_str());
      return 1;
    }
  }

  if (server) server->stop();
  return report.value().errors == 0 ? 0 : 1;
}
