// herc_fuzz — differential/metamorphic fuzzer CLI over herc::gen scenarios.
//
//   herc_fuzz --budget 30s                 # fuzz for 30 seconds
//   herc_fuzz --scenarios 200              # fuzz a fixed scenario count
//   herc_fuzz --seed 7 | --seed from-git-sha
//   herc_fuzz --oracles cpm,mirror         # restrict oracle families
//   herc_fuzz --mutate mirror-drop-run     # plant a bug; MUST fail
//   herc_fuzz --repro tests/corpus/x.json  # replay one corpus scenario
//   herc_fuzz --corpus tests/corpus        # replay a whole corpus directory
//   herc_fuzz --emit-seed-corpus DIR       # write the curated seed corpus
//   herc_fuzz --out DIR                    # where shrunk reproducers go
//
// Exit status: 0 clean, 1 oracle violation (reproducer written), 2 usage.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "gen/fuzz.hpp"

namespace {

using namespace herc;

struct Args {
  std::int64_t budget_ms = 0;
  std::size_t scenarios = 0;
  std::uint64_t seed = 1;
  unsigned oracles = gen::kOracleAll;
  gen::Mutation mutation = gen::Mutation::kNone;
  std::string repro, corpus, emit_corpus;
  std::string out = ".";
  bool quiet = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--budget <secs>[s]] [--scenarios N] [--seed N|from-git-sha]\n"
               "          [--oracles cpm,mirror,recovery,risk,metamorphic,query,adapter|all]\n"
               "          [--mutate <name>] [--repro FILE] [--corpus DIR]\n"
               "          [--emit-seed-corpus DIR] [--out DIR] [--quiet]\n",
               argv0);
  return 2;
}

std::uint64_t seed_from_git_sha() {
  const char* sha = std::getenv("GITHUB_SHA");
  if (!sha || !*sha) sha = std::getenv("HERC_FUZZ_SHA");
  if (!sha || !*sha) return 1;
  char prefix[17] = {0};
  std::strncpy(prefix, sha, 16);
  std::uint64_t seed = std::strtoull(prefix, nullptr, 16);
  return seed ? seed : 1;
}

void print_failures(const std::vector<gen::OracleFailure>& failures) {
  for (const auto& f : failures)
    std::fprintf(stderr, "  [%s] %s: %s\n", gen::oracle_name(f.family),
                 f.check.c_str(), f.detail.c_str());
}

/// Writes the shrunk reproducer and prints the replay command.
int report_violation(const gen::Scenario& shrunk,
                     const std::vector<gen::OracleFailure>& failures,
                     const Args& args) {
  print_failures(failures);
  std::error_code ec;
  std::filesystem::create_directories(args.out, ec);
  std::string path = args.out + "/repro-" + std::to_string(shrunk.spec.seed) + ".json";
  auto st = gen::write_corpus_file(shrunk, path);
  if (st.ok())
    std::fprintf(stderr, "reproduce with: herc_fuzz --repro %s\n", path.c_str());
  else
    std::fprintf(stderr, "could not write reproducer: %s\n",
                 st.error().message.c_str());
  return 1;
}

int replay_file(const std::string& path, const Args& args) {
  auto scenario = gen::read_corpus_file(path);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), scenario.error().message.c_str());
    return 2;
  }
  auto failures = gen::run_scenario(
      scenario.value(), {.oracles = args.oracles, .mutation = args.mutation});
  if (failures.empty()) {
    if (!args.quiet) std::printf("%s: ok\n", path.c_str());
    return 0;
  }
  std::fprintf(stderr, "%s: %zu oracle violation(s)\n", path.c_str(), failures.size());
  print_failures(failures);
  return 1;
}

int replay_corpus(const Args& args) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(args.corpus, ec))
    if (entry.path().extension() == ".json") files.push_back(entry.path().string());
  if (ec) {
    std::fprintf(stderr, "cannot read corpus dir %s\n", args.corpus.c_str());
    return 2;
  }
  std::sort(files.begin(), files.end());
  int worst = 0;
  for (const auto& f : files) worst = std::max(worst, replay_file(f, args));
  if (!args.quiet)
    std::printf("corpus: %zu scenario(s) replayed\n", files.size());
  return worst;
}

/// The committed regression corpus: one scenario per workload shape plus one
/// per oracle-family stressor (faults, retries, concurrency, timeouts, an
/// injected crash, a slack-heavy network).  Every entry must pass.
std::vector<std::pair<std::string, gen::Scenario>> seed_corpus() {
  using gen::ExecMode;
  using gen::Scenario;
  using gen::ScenarioSpec;
  std::vector<std::pair<std::string, Scenario>> corpus;
  auto add = [&](std::string name, ScenarioSpec spec) {
    corpus.emplace_back(std::move(name), gen::generate(spec));
  };

  add("chain-basic", {.seed = 11, .shape = gen::Shape::kChain, .size = 8});
  add("fanin-wide", {.seed = 12, .shape = gen::Shape::kFanin, .size = 10});
  add("layered-grid",
      {.seed = 13, .shape = gen::Shape::kLayered, .size = 3, .width = 4});
  add("random-dag", {.seed = 14, .shape = gen::Shape::kRandom, .size = 12, .inputs = 3});
  add("mirror-concurrent", {.seed = 15,
                            .shape = gen::Shape::kRandom,
                            .size = 10,
                            .inputs = 2,
                            .resources = 3,
                            .mode = ExecMode::kConcurrent});
  add("faults-abort", {.seed = 16,
                       .shape = gen::Shape::kChain,
                       .size = 10,
                       .fault_seed = 1601,
                       .fail_prob = 0.35});
  add("faults-retry", {.seed = 17,
                       .shape = gen::Shape::kRandom,
                       .size = 9,
                       .fault_seed = 1701,
                       .fail_prob = 0.3,
                       .policy = herc::exec::FailurePolicy::kRetryThenAbort,
                       .max_attempts = 3});
  add("faults-degrade", {.seed = 18,
                         .shape = gen::Shape::kFanin,
                         .size = 8,
                         .fault_seed = 1801,
                         .fail_on = 2,
                         .policy = herc::exec::FailurePolicy::kContinueIndependent,
                         .max_attempts = 2});
  add("timeout-slow", {.seed = 19,
                       .shape = gen::Shape::kChain,
                       .size = 6,
                       .fault_seed = 1901,
                       .latency_factor = 4.0,
                       .policy = herc::exec::FailurePolicy::kContinueIndependent,
                       .timeout_minutes = 240});
  add("risk-slack", {.seed = 20, .shape = gen::Shape::kLayered, .size = 2, .width = 4});

  // Recovery stressor with an injected crash baked into the plan itself.
  gen::Scenario crash = gen::generate(
      {.seed = 21, .shape = gen::Shape::kChain, .size = 7, .fault_seed = 2101});
  crash.faults.tools["*"].crash_on.push_back(4);
  corpus.emplace_back("recovery-crash", std::move(crash));

  // Adapter-conformance and adversarial-workload stressors (PR 9): shapes
  // where the Petri/trace replays take genuinely different linearizations
  // than the native sweep, heavy-tailed durations, a mid-flight replan
  // storm, conflicting multi-designer edits, and a fault storm over an
  // adversarial plan.
  add("adapter-petri-order", {.seed = 22,
                              .shape = gen::Shape::kLayered,
                              .size = 3,
                              .width = 3,
                              .resources = 2});
  add("heavytail-lognormal", {.seed = 23,
                              .shape = gen::Shape::kRandom,
                              .size = 10,
                              .inputs = 2,
                              .duration_dist = gen::DurationDist::kLognormal,
                              .dist_sigma = 1.6});
  add("heavytail-pareto", {.seed = 24,
                           .shape = gen::Shape::kFanin,
                           .size = 9,
                           .duration_dist = gen::DurationDist::kPareto,
                           .dist_alpha = 1.1});
  add("replan-midflight", {.seed = 25,
                           .shape = gen::Shape::kChain,
                           .size = 9,
                           .adversity = 0.8});
  add("conflict-designers", {.seed = 26,
                             .shape = gen::Shape::kRandom,
                             .size = 11,
                             .inputs = 3,
                             .adversity = 1.0});
  add("fault-storm", {.seed = 27,
                      .shape = gen::Shape::kRandom,
                      .size = 8,
                      .inputs = 2,
                      .adversity = 0.6,
                      .fault_seed = 2701,
                      .fail_prob = 0.6,
                      .latency_factor = 3.0,
                      .policy = herc::exec::FailurePolicy::kRetryThenAbort,
                      .max_attempts = 3});
  return corpus;
}

int emit_seed_corpus(const Args& args) {
  std::error_code ec;
  std::filesystem::create_directories(args.emit_corpus, ec);
  int index = 0;
  for (auto& [name, scenario] : seed_corpus()) {
    auto failures = gen::run_scenario(scenario, {.oracles = args.oracles});
    if (!failures.empty()) {
      std::fprintf(stderr, "seed scenario '%s' fails its own oracles:\n", name.c_str());
      print_failures(failures);
      return 1;
    }
    char prefix[8];
    std::snprintf(prefix, sizeof prefix, "%03d", ++index);
    std::string path = args.emit_corpus + "/" + prefix + "-" + name + ".json";
    auto st = gen::write_corpus_file(scenario, path);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), st.error().message.c_str());
      return 2;
    }
    if (!args.quiet) std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (flag == "--quiet") {
      args.quiet = true;
    } else if (flag == "--budget") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      std::string s(v);
      if (!s.empty() && s.back() == 's') s.pop_back();
      args.budget_ms = std::strtoll(s.c_str(), nullptr, 10) * 1000;
    } else if (flag == "--scenarios") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      args.scenarios = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (flag == "--seed") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      args.seed = std::strcmp(v, "from-git-sha") == 0
                      ? seed_from_git_sha()
                      : std::strtoull(v, nullptr, 10);
    } else if (flag == "--oracles") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      auto mask = gen::parse_oracles(v);
      if (!mask.ok()) {
        std::fprintf(stderr, "%s\n", mask.error().message.c_str());
        return 2;
      }
      args.oracles = mask.value();
    } else if (flag == "--mutate") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      auto m = gen::parse_mutation(v);
      if (!m.ok()) {
        std::fprintf(stderr, "%s\n", m.error().message.c_str());
        return 2;
      }
      args.mutation = m.value();
    } else if (flag == "--repro") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      args.repro = v;
    } else if (flag == "--corpus") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      args.corpus = v;
    } else if (flag == "--emit-seed-corpus") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      args.emit_corpus = v;
    } else if (flag == "--out") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      args.out = v;
    } else {
      return usage(argv[0]);
    }
  }

  if (!args.repro.empty()) return replay_file(args.repro, args);
  if (!args.corpus.empty()) return replay_corpus(args);
  if (!args.emit_corpus.empty()) return emit_seed_corpus(args);

  gen::FuzzOptions options;
  options.seed = args.seed;
  options.max_scenarios = args.scenarios;
  options.budget_ms = args.budget_ms;
  options.oracles = args.oracles;
  options.mutation = args.mutation;
  auto report = gen::fuzz(options);

  if (!args.quiet)
    std::printf("fuzz: %zu scenarios in %" PRId64 " ms (%.1f/s), seed %" PRIu64 "\n",
                report.scenarios, report.elapsed_ms, report.scenarios_per_sec,
                args.seed);
  if (report.failures.empty()) return 0;

  std::fprintf(stderr, "scenario (spec seed %" PRIu64 ") violated %zu oracle(s):\n",
               report.failing->spec.seed, report.failures.size());
  const gen::Scenario& repro = report.shrunk ? *report.shrunk : *report.failing;
  auto failures =
      report.shrunk ? gen::run_scenario(repro, {.oracles = args.oracles,
                                                .mutation = args.mutation})
                    : report.failures;
  return report_violation(repro, failures, args);
}
