// herc_chaos — storage fault-injection sweep for the shard durability stack.
//
//   herc_chaos [--dir DIR] [--seed N] [--ops N] [--save-every K]
//              [--flow-size N] [--max-points N] [--random-trials N]
//              [--fail-prob P] [--group-commit] [--quiet]
//
// Enumerates the workload's IO points, then replays it once per
// (IO point, fault kind) — EIO, ENOSPC, short write, torn write, crash —
// plus seeded probabilistic trials, recovering the project after each and
// checking acknowledged => recovered byte-identity, recovery determinism,
// and read-only shard degradation (see src/srv/chaos.hpp).
//
// Exit status: 0 all contracts held, 1 violations or harness failure, 2 usage.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "srv/chaos.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--dir DIR] [--seed N] [--ops N] [--save-every K]\n"
               "          [--flow-size N] [--max-points N] [--random-trials N]\n"
               "          [--fail-prob P] [--group-commit] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  herc::srv::ChaosOptions options;
  options.dir = "/tmp/herc_chaos." + std::to_string(::getpid());
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    if (arg == "--dir" && (v = next())) {
      options.dir = v;
    } else if (arg == "--seed" && (v = next())) {
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ops" && (v = next())) {
      options.ops = std::atoi(v);
    } else if (arg == "--save-every" && (v = next())) {
      options.save_every = std::atoi(v);
    } else if (arg == "--flow-size" && (v = next())) {
      options.flow_size = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--max-points" && (v = next())) {
      options.max_points = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--random-trials" && (v = next())) {
      options.random_trials = std::atoi(v);
    } else if (arg == "--fail-prob" && (v = next())) {
      options.fail_prob = std::atof(v);
    } else if (arg == "--group-commit") {
      options.group_commit = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }

  auto report = herc::srv::run_chaos(options);
  if (!report.ok()) {
    std::fprintf(stderr, "herc_chaos: %s\n", report.error().str().c_str());
    return 1;
  }
  if (!quiet) std::printf("%s\n", report.value().summary().c_str());
  std::printf("%s\n", report.value().to_json().dump(-1).c_str());
  return report.value().ok() ? 0 : 1;
}
