#!/usr/bin/env python3
"""Compare benchmark --json output against a committed baseline.

Usage:
    check_bench_regression.py BASELINE CURRENT [CURRENT...] [--max-ratio R]

BASELINE and CURRENT are files produced by the bench binaries' `--json`
reporter: a JSON array of {"name", "iters", "ns_per_op"} records.  Several
CURRENT files may be given (one per bench binary); their records are merged.

A benchmark regresses when current ns_per_op > R * baseline ns_per_op
(default R = 2.0 — wide enough to absorb shared-runner noise, tight enough
to catch an accidentally quadratic path or a dropped fast path).  Benchmarks
present on only one side are reported but never fail the check, so adding
or retiring benchmarks does not require touching the baseline in the same
change.

Exit status: 0 = no regressions, 1 = at least one regression, 2 = usage or
input error.
"""

import argparse
import json
import sys


def load_records(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read '{path}': {err}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(rows, list):
        print(f"error: '{path}': expected a JSON array of records", file=sys.stderr)
        sys.exit(2)
    out = {}
    for row in rows:
        name, ns = row.get("name"), row.get("ns_per_op")
        if not isinstance(name, str) or not isinstance(ns, (int, float)):
            print(f"error: '{path}': malformed record {row!r}", file=sys.stderr)
            sys.exit(2)
        out[name] = float(ns)
    return out


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.2f}{unit}"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", nargs="+", help="freshly measured JSON file(s)")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when current/baseline exceeds this (default 2.0)")
    args = parser.parse_args()

    baseline = load_records(args.baseline)
    current = {}
    for path in args.current:
        current.update(load_records(path))

    regressions = []
    width = max((len(n) for n in current), default=10) + 2
    for name in sorted(current):
        if name not in baseline:
            print(f"{name:<{width}} {fmt_ns(current[name]):>10}  (new, not in baseline)")
            continue
        base, now = baseline[name], current[name]
        ratio = now / base if base > 0 else float("inf")
        flag = "REGRESSED" if ratio > args.max_ratio else "ok"
        print(f"{name:<{width}} {fmt_ns(base):>10} -> {fmt_ns(now):>10}"
              f"  {ratio:5.2f}x  {flag}")
        if flag == "REGRESSED":
            regressions.append(name)
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:<{width}} (in baseline only; not measured this run)")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.max_ratio}x:", file=sys.stderr)
        for name in regressions:
            print(f"  {name}", file=sys.stderr)
        return 1
    print(f"\nno regressions (threshold {args.max_ratio}x, "
          f"{len(current)} benchmarks checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
