// E2: Monte Carlo schedule-risk ablation — how many samples does a stable
// P90 need, and what does each sample cost?  Also shows the criticality
// index on a competing-branch flow (the result a single critical path
// cannot express).

#include <cmath>
#include <iostream>

#include "bench_main.hpp"
#include "core/risk.hpp"
#include "util/strings.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

std::unique_ptr<hercules::WorkflowManager> competing_manager() {
  // Two near-equal branches into a join: criticality is genuinely split.
  auto m = hercules::WorkflowManager::create(R"(
    schema compete {
      data seed, l, r, out;
      tool t;
      rule Left:  l   <- t(seed) [est 20h];
      rule Right: r   <- t(seed) [est 19h];
      rule Join:  out <- t(l, r) [est 8h];
    }
  )").take();
  m->extract_task("job", "out").expect("extract");
  return m;
}

void print_artifact() {
  auto m = competing_manager();
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();

  std::cout << "E2 — schedule-risk sampling ablation\n\n";
  std::cout << "P90 completion (work minutes) vs. sample count, 3 seeds each:\n";
  std::cout << util::pad_right("samples", 10);
  for (int seed = 1; seed <= 3; ++seed)
    std::cout << util::pad_right("seed" + std::to_string(seed), 9);
  std::cout << "spread\n" << util::repeat('-', 46) << "\n";
  for (int samples : {10, 100, 1000, 10000}) {
    std::cout << util::pad_right(std::to_string(samples), 10);
    std::int64_t lo = 0, hi = 0;
    for (int seed = 1; seed <= 3; ++seed) {
      sched::RiskOptions opt;
      opt.samples = samples;
      opt.seed = static_cast<std::uint64_t>(seed);
      auto r = sched::analyze_risk(m->schedule_space(), m->db(), plan, opt).take();
      std::int64_t p90 = r.p90_finish.minutes_since_epoch();
      std::cout << util::pad_right(std::to_string(p90), 9);
      lo = seed == 1 ? p90 : std::min(lo, p90);
      hi = seed == 1 ? p90 : std::max(hi, p90);
    }
    std::cout << hi - lo << "\n";
  }

  auto report = sched::analyze_risk(m->schedule_space(), m->db(), plan).take();
  std::cout << "\nCriticality split on near-equal branches (20h vs 19h):\n"
            << report.render(m->calendar())
            << "\nExpected shape: P90 seed-spread shrinks roughly as 1/sqrt(N);\n"
               "~1000 samples stabilises it to a few minutes.  The 19h branch\n"
               "keeps substantial criticality — information a deterministic\n"
               "critical path (which names only the 20h branch) hides.\n\n";
}

void BM_RiskAnalysis(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4), "root");
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  sched::RiskOptions opt;
  opt.samples = static_cast<int>(state.range(1));
  for (auto _ : state) {
    auto r = sched::analyze_risk(m->schedule_space(), m->db(), plan, opt);
    benchmark::DoNotOptimize(r.value().p90_finish);
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_RiskAnalysis)
    ->Args({4, 100})
    ->Args({4, 1000})
    ->Args({16, 100})
    ->Args({16, 1000});

void BM_RiskWithHistory(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(16), "d16",
                               cal::WorkDuration::minutes(30));
  for (int i = 0; i < 10; ++i) m->execute_task("job", "pat").value();
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  sched::RiskOptions opt;
  opt.samples = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = sched::analyze_risk(m->schedule_space(), m->db(), plan, opt);
    benchmark::DoNotOptimize(r.value().p50_finish);
  }
}
BENCHMARK(BM_RiskWithHistory)->Arg(100)->Arg(1000);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
