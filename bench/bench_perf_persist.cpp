// P-persist: what crash safety costs.  The journal appends one flushed JSON
// line per recorded run; the artifact table and the timed benchmarks compare
// run execution with journaling off vs. on (the delta is the WAL overhead),
// plus the cost of an atomic snapshot and of replaying a journal tail at
// recovery time.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench_main.hpp"
#include "hercules/journal.hpp"
#include "hercules/persist.hpp"
#include "hercules/workflow_manager.hpp"
#include "util/fsio.hpp"
#include "util/strings.hpp"

using namespace herc;

namespace {

constexpr const char* kSchema = R"(
schema bench {
  data netlist, stimuli, performance;
  tool netlist_editor, simulator;
  rule Create:   netlist     <- netlist_editor();
  rule Simulate: performance <- simulator(netlist, stimuli);
}
)";

std::unique_ptr<hercules::WorkflowManager> make_manager() {
  auto m = hercules::WorkflowManager::create(kSchema).take();
  m->register_tool({.instance_name = "ed",
                    .tool_type = "netlist_editor",
                    .nominal = cal::WorkDuration::hours(2)})
      .expect("tool");
  m->register_tool({.instance_name = "sim",
                    .tool_type = "simulator",
                    .nominal = cal::WorkDuration::hours(1)})
      .expect("tool");
  m->extract_task("job", "performance").expect("extract");
  m->bind("job", "stimuli", "stim").expect("bind");
  m->bind("job", "netlist_editor", "ed").expect("bind");
  m->bind("job", "simulator", "sim").expect("bind");
  m->execute_task("job", "bench").value();  // seed instances for iterations
  return m;
}

/// Snapshot + journal texts for a project with `runs` journaled iterations.
std::pair<std::string, std::string> journaled_state(int runs) {
  const std::string path = "/tmp/herc_bench_recover.wal";
  auto m = make_manager();
  std::string snapshot = hercules::save_to_json(*m);
  m->enable_journal(path).expect("journal");
  for (int i = 0; i < runs; ++i)
    m->run_activity("job", "Simulate", "bench").value();
  std::string journal = util::read_file(path).value();
  m->disable_journal();
  std::remove(path.c_str());
  return {std::move(snapshot), std::move(journal)};
}

void print_artifact() {
  std::cout << "P-persist — crash-safety overhead (per recorded run)\n\n";
  std::cout << util::pad_right("journal", 10) << util::pad_right("us/run", 10)
            << "\n" << util::repeat('-', 20) << "\n";
  for (bool journaled : {false, true}) {
    auto m = make_manager();
    if (journaled) m->enable_journal("/tmp/herc_bench_artifact.wal").expect("j");
    auto t0 = std::chrono::steady_clock::now();
    int reps = 0;
    do {
      m->run_activity("job", "Simulate", "bench").value();
      ++reps;
    } while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(50));
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    std::cout << util::pad_right(journaled ? "on" : "off", 10)
              << util::pad_right(std::to_string(us / reps), 10) << "\n";
  }
  std::remove("/tmp/herc_bench_artifact.wal");
  std::cout << "\nExpected shape: the journal adds one compact-JSON serialize +\n"
               "flushed append per run — small next to the run's own database\n"
               "and simulation work, which is what makes always-on journaling\n"
               "affordable.  Recovery replays lines linearly in tail length.\n\n";
}

// One executed iteration (tool run + database record), journal off: the
// baseline the journaled variant is compared against.
void BM_RunJournalOff(benchmark::State& state) {
  auto m = make_manager();
  for (auto _ : state)
    benchmark::DoNotOptimize(m->run_activity("job", "Simulate", "bench").value().run);
}
BENCHMARK(BM_RunJournalOff);

// Same iteration with the WAL enabled: the delta to BM_RunJournalOff is the
// per-run crash-safety cost (serialize + append + flush).
void BM_RunJournalOn(benchmark::State& state) {
  const std::string path = "/tmp/herc_bench_journal_on.wal";
  auto m = make_manager();
  m->enable_journal(path).expect("journal");
  for (auto _ : state)
    benchmark::DoNotOptimize(m->run_activity("job", "Simulate", "bench").value().run);
  m->disable_journal();
  std::remove(path.c_str());
}
BENCHMARK(BM_RunJournalOn);

// Atomic snapshot of a small project: tmp-file write + rename.
void BM_SnapshotAtomic(benchmark::State& state) {
  const std::string path = "/tmp/herc_bench_snapshot.json";
  auto m = make_manager();
  for (auto _ : state)
    benchmark::DoNotOptimize(hercules::save_project_file(*m, path).ok());
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotAtomic);

// The per-line integrity tax in isolation: CRC-32C + length framing of a
// representative journal payload (BM_RunJournalOn already includes it; this
// isolates the checksum from the serialize + write + flush it rides with).
void BM_JournalChecksumFrame(benchmark::State& state) {
  const std::string path = "/tmp/herc_bench_frame.wal";
  auto m = make_manager();
  m->enable_journal(path).expect("journal");
  m->run_activity("job", "Simulate", "bench").value();
  std::string line = util::read_file(path).value();
  m->disable_journal();
  std::remove(path.c_str());
  auto unframed = hercules::unframe_journal_line(
      std::string_view(line).substr(0, line.find('\n')), false);
  const std::string payload(unframed.payload);
  for (auto _ : state)
    benchmark::DoNotOptimize(hercules::frame_journal_line(payload));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_JournalChecksumFrame);

// Recovery cost vs. journal tail length: load snapshot + replay N lines.
void BM_RecoverJournalTail(benchmark::State& state) {
  auto [snapshot, journal] = journaled_state(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto m = hercules::recover_from_json(snapshot, journal);
    benchmark::DoNotOptimize(m.value()->db().run_count());
  }
}
BENCHMARK(BM_RecoverJournalTail)->Arg(1)->Arg(16)->Arg(128);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
