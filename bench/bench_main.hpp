#pragma once
// Shared main() for the benchmark binaries: each bench first prints the
// paper artifact it reproduces (table or figure), then runs its
// google-benchmark timings.

#include <benchmark/benchmark.h>

#define HERC_BENCH_MAIN(print_artifact)                            \
  int main(int argc, char** argv) {                                \
    print_artifact();                                              \
    benchmark::Initialize(&argc, argv);                            \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();                           \
    benchmark::Shutdown();                                         \
    return 0;                                                      \
  }
