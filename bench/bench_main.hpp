#pragma once
// Shared main() for the benchmark binaries: each bench first prints the
// paper artifact it reproduces (table or figure), then runs its
// google-benchmark timings.
//
// Every binary additionally accepts `--json <file>` (or `--json=<file>`),
// which writes one machine-readable record per timed benchmark:
//
//   [{"name": "...", "iters": N, "ns_per_op": X}, ...]
//
// Aggregate rows (mean/median/stddev from --benchmark_repetitions) and
// errored runs are excluded, so the file always holds raw per-benchmark
// timings regardless of the console flags used alongside it.

#include <benchmark/benchmark.h>

#include <fstream>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace herc::benchio {

/// Removes `--json <file>` / `--json=<file>` from argv before
/// google-benchmark sees (and rejects) it.  Returns the path, or "".
inline std::string extract_json_arg(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  return path;
}

/// Console output as usual, plus a record of every raw (non-aggregate,
/// non-errored) run for the JSON dump.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  struct Record {
    std::string name;
    std::int64_t iters = 0;
    double ns_per_op = 0.0;
  };

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type == Run::RT_Aggregate) continue;
      Record rec;
      rec.name = run.benchmark_name();
      rec.iters = static_cast<std::int64_t>(run.iterations);
      if (run.iterations > 0)
        rec.ns_per_op = run.real_accumulated_time /
                        static_cast<double>(run.iterations) * 1e9;
      records_.push_back(std::move(rec));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  /// Writes the collected records; returns false on I/O failure.
  [[nodiscard]] bool write_json(const std::string& path) const {
    util::JsonArray out;
    for (const Record& rec : records_) {
      util::JsonObject row;
      row.set("name", rec.name);
      row.set("iters", rec.iters);
      row.set("ns_per_op", rec.ns_per_op);
      out.push_back(util::Json(std::move(row)));
    }
    std::ofstream file(path, std::ios::binary);
    if (!file) return false;
    file << util::Json(std::move(out)).dump() << "\n";
    return static_cast<bool>(file);
  }

 private:
  std::vector<Record> records_;
};

}  // namespace herc::benchio

#define HERC_BENCH_MAIN(print_artifact)                                    \
  int main(int argc, char** argv) {                                        \
    print_artifact();                                                      \
    std::string json_path = herc::benchio::extract_json_arg(argc, argv);   \
    benchmark::Initialize(&argc, argv);                                    \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    herc::benchio::JsonCapturingReporter reporter;                         \
    benchmark::RunSpecifiedBenchmarks(&reporter);                          \
    benchmark::Shutdown();                                                 \
    if (!json_path.empty() && !reporter.write_json(json_path)) {           \
      fprintf(stderr, "cannot write '%s'\n", json_path.c_str());           \
      return 1;                                                            \
    }                                                                      \
    return 0;                                                              \
  }
