// P2: planning (simulated execution) throughput vs. task-tree depth and
// branching — the end-to-end cost of "develop a schedule by simulating the
// flow", which the paper proposes as the routine planning operation.

#include <iostream>

#include "bench_main.hpp"
#include "util/strings.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

void print_artifact() {
  std::cout << "P2 — planner throughput (simulated execution + CPM + date\n"
               "assignment) for different flow shapes.  Timings below from\n"
               "google-benchmark.\n\n";
  // One worked sample so the output shows what a plan contains.
  auto m = bench::make_manager(bench::layered_schema(3, 3), "root");
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  const auto& space = m->schedule_space();
  std::cout << "sample: layered 3x3 -> " << space.plan(plan).nodes.size()
            << " schedule instances, " << space.plan(plan).deps.size()
            << " schedule deps, makespan "
            << (space.node(space.plan(plan).nodes.back()).planned_finish -
                cal::WorkInstant(0))
                   .str(480)
            << "\n\n";
}

void BM_PlanDepth(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(static_cast<std::size_t>(state.range(0))),
                               "d" + std::to_string(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(m->plan_task("job", {.anchor = m->clock().now()}).value());
  state.SetComplexityN(state.range(0));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlanDepth)->Range(8, 1024)->Complexity();

void BM_PlanBranching(benchmark::State& state) {
  auto m = bench::make_manager(bench::fanin_schema(static_cast<std::size_t>(state.range(0))),
                               "out");
  for (auto _ : state)
    benchmark::DoNotOptimize(m->plan_task("job", {.anchor = m->clock().now()}).value());
  state.SetItemsProcessed(state.iterations() * (state.range(0) + 1));
}
BENCHMARK(BM_PlanBranching)->Range(8, 1024);

void BM_PlanLayeredShape(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1))),
      "root");
  for (auto _ : state)
    benchmark::DoNotOptimize(m->plan_task("job", {.anchor = m->clock().now()}).value());
}
BENCHMARK(BM_PlanLayeredShape)->Args({4, 4})->Args({16, 4})->Args({4, 16})->Args({16, 16});

void BM_PlanWithHistoryEstimates(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(32), "d32",
                               cal::WorkDuration::minutes(5));
  for (int i = 0; i < 20; ++i) m->execute_task("job", "pat").value();  // history
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.strategy = sched::EstimateStrategy::kPert;  // scans full history
  for (auto _ : state) benchmark::DoNotOptimize(m->plan_task("job", req).value());
}
BENCHMARK(BM_PlanWithHistoryEstimates);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
