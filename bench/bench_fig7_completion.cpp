// Reproduces paper Fig. 7: the Hercules database at COMPLETION — every
// schedule instance linked to the final version of its activity's design
// data (the Simulate link pointing at performance v2, not v1).
//
// Benchmarks: completion linking including the automatic re-projection it
// triggers, vs. plan size.

#include <iostream>

#include "bench_main.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

constexpr const char* kCircuitSchema = R"(
schema circuit {
  data netlist, stimuli, performance;
  tool netlist_editor, simulator;
  rule Create:   netlist     <- netlist_editor();
  rule Simulate: performance <- simulator(netlist, stimuli);
}
)";

void print_artifact() {
  auto m = hercules::WorkflowManager::create(kCircuitSchema).take();
  m->register_tool({.instance_name = "ed", .tool_type = "netlist_editor",
                    .nominal = cal::WorkDuration::hours(14)})
      .expect("tool");
  m->register_tool({.instance_name = "sim", .tool_type = "simulator",
                    .nominal = cal::WorkDuration::hours(6)})
      .expect("tool");
  m->extract_task("adder", "performance").expect("extract");
  m->bind("adder", "stimuli", "adder.stim").expect("bind");
  m->bind("adder", "netlist_editor", "ed").expect("bind");
  m->bind("adder", "simulator", "sim").expect("bind");
  m->estimator().set_intuition("Create", cal::WorkDuration::hours(16));
  m->estimator().set_intuition("Simulate", cal::WorkDuration::hours(8));

  m->plan_task("adder", {.anchor = m->clock().now()}).value();
  m->execute_task("adder", "alice").value();
  m->run_activity("adder", "Simulate", "bob").value();
  m->link_completion("adder", "Create").expect("link");
  m->link_completion("adder", "Simulate").expect("link");

  std::cout << "Fig. 7 — Hercules database at completion of execution\n"
            << "(every schedule instance linked to the FINAL design data\n"
            << " version: Simulate links to performance v2)\n\n"
            << m->dump_database() << "\n"
            << m->status_report("adder").value() << "\n";
}

void BM_LinkAndReproject(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto m = bench::make_manager(bench::chain_schema(n), "d" + std::to_string(n),
                                 cal::WorkDuration::minutes(5));
    m->plan_task("job", {.anchor = m->clock().now()}).value();
    m->execute_task("job", "pat").value();
    state.ResumeTiming();
    for (const auto& rule : m->schema().rules())
      m->link_completion("job", rule.activity).expect("link");
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LinkAndReproject)->Arg(8)->Arg(32)->Arg(128);

void BM_StatusReport(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(64), "d64",
                               cal::WorkDuration::minutes(5));
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  m->execute_task("job", "pat").value();
  for (auto _ : state)
    benchmark::DoNotOptimize(m->status_report("job").value().size());
}
BENCHMARK(BM_StatusReport);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
