// P3: query engine throughput vs. database size — filtering, ordering and
// the paper's two query classes (schedule data, schedule metadata).

#include <iostream>

#include "bench_main.hpp"
#include "query/query.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

std::unique_ptr<hercules::WorkflowManager> populated(std::size_t executions) {
  auto m = bench::make_manager(bench::chain_schema(8), "d8",
                               cal::WorkDuration::minutes(7));
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  for (std::size_t i = 0; i < executions; ++i)
    m->execute_task("job", i % 2 ? "alice" : "bob").value();
  return m;
}

void print_artifact() {
  auto m = populated(10);
  std::cout << "P3 — query engine over a database of " << m->db().run_count()
            << " runs / " << m->db().instance_count() << " instances\n\n";
  std::cout << "schedule-data query (paper: duration of the last run):\n"
            << m->query("select runs where activity = \"A5\" order by finished desc "
                        "limit 1")
                   .value()
            << "\n";
  m->replan_task("job", {.anchor = m->clock().now()}).value();
  query::QueryEngine engine(m->db(), m->schedule_space());
  std::cout << "schedule-metadata query (paper: plan evolution):\n"
            << engine.plan_lineage(m->plan_of("job").value()).render(&m->calendar())
            << "\n";
}

void BM_QueryFilterScan(benchmark::State& state) {
  auto m = populated(static_cast<std::size_t>(state.range(0)));
  query::QueryEngine engine(m->db(), m->schedule_space());
  auto q = query::parse_query("select runs where designer = \"alice\"").take();
  for (auto _ : state) benchmark::DoNotOptimize(engine.execute(q).value().rows.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m->db().run_count()));
}
BENCHMARK(BM_QueryFilterScan)->Arg(10)->Arg(100)->Arg(1000);

void BM_QueryOrderLimit(benchmark::State& state) {
  auto m = populated(static_cast<std::size_t>(state.range(0)));
  query::QueryEngine engine(m->db(), m->schedule_space());
  auto q = query::parse_query(
               "select runs where activity = \"A5\" order by finished desc limit 1")
               .take();
  for (auto _ : state) benchmark::DoNotOptimize(engine.execute(q).value().rows.size());
}
BENCHMARK(BM_QueryOrderLimit)->Arg(10)->Arg(100)->Arg(1000);

// --- fast path: indexed seek vs full scan vs cached repeat -------------------
//
// Mixed-designer population: alice/bob alternate per execution, with carol
// taking every 64th execution, so `designer = "carol"` is a selective
// equality an index seek can exploit (~1/64 of all runs).

std::unique_ptr<hercules::WorkflowManager> populated_mixed(std::size_t runs) {
  const std::size_t executions = runs / 8;  // chain_schema(8): 8 runs each
  auto m = bench::make_manager(bench::chain_schema(8), "d8",
                               cal::WorkDuration::minutes(7));
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  for (std::size_t i = 0; i < executions; ++i) {
    const char* designer = i % 64 == 0 ? "carol" : (i % 2 ? "alice" : "bob");
    m->execute_task("job", designer).value();
  }
  return m;
}

constexpr const char* kSelective =
    "select runs where designer = \"carol\" and duration >= 0";

void BM_QueryIndexedEq(benchmark::State& state) {
  auto m = populated_mixed(static_cast<std::size_t>(state.range(0)));
  query::QueryEngine engine(m->db(), m->schedule_space());
  engine.set_options({.use_index = true, .use_cache = false});
  auto q = query::parse_query(kSelective).take();
  for (auto _ : state) benchmark::DoNotOptimize(engine.execute(q).value().rows.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m->db().run_count()));
}
BENCHMARK(BM_QueryIndexedEq)->Arg(512)->Arg(4096)->Arg(16384);

void BM_QueryScanResidual(benchmark::State& state) {
  auto m = populated_mixed(static_cast<std::size_t>(state.range(0)));
  query::QueryEngine engine(m->db(), m->schedule_space());
  engine.set_options({.use_index = false, .use_cache = false});
  auto q = query::parse_query(kSelective).take();
  for (auto _ : state) benchmark::DoNotOptimize(engine.execute(q).value().rows.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(m->db().run_count()));
}
BENCHMARK(BM_QueryScanResidual)->Arg(512)->Arg(4096)->Arg(16384);

// First (uncached) execution of the cached-repeat statement: the aggregate
// scans every run, so this is the cost the result cache amortises away.
constexpr const char* kAggregate = "select avg(duration) from runs";

void BM_QueryFirstExec(benchmark::State& state) {
  auto m = populated_mixed(static_cast<std::size_t>(state.range(0)));
  query::QueryEngine engine(m->db(), m->schedule_space());
  engine.set_options({.use_index = true, .use_cache = false});
  auto q = query::parse_query(kAggregate).take();
  for (auto _ : state) benchmark::DoNotOptimize(engine.execute(q).value().rows.size());
}
BENCHMARK(BM_QueryFirstExec)->Arg(512)->Arg(4096)->Arg(16384);

void BM_QueryCachedRepeat(benchmark::State& state) {
  auto m = populated_mixed(static_cast<std::size_t>(state.range(0)));
  query::QueryEngine engine(m->db(), m->schedule_space());
  auto q = query::parse_query(kAggregate).take();
  benchmark::DoNotOptimize(engine.execute(q).value().rows.size());  // warm
  for (auto _ : state) benchmark::DoNotOptimize(engine.execute(q).value().rows.size());
}
BENCHMARK(BM_QueryCachedRepeat)->Arg(512)->Arg(4096)->Arg(16384);

void BM_QueryParse(benchmark::State& state) {
  const std::string text =
      "select schedule where critical = true and est_duration >= 240 "
      "order by planned_start desc limit 10";
  for (auto _ : state)
    benchmark::DoNotOptimize(query::parse_query(text).value().str().size());
}
BENCHMARK(BM_QueryParse);

void BM_PlanLineage(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(4), "d4");
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  for (int i = 0; i < state.range(0); ++i)
    m->replan_task("job", {.anchor = m->clock().now()}).value();
  query::QueryEngine engine(m->db(), m->schedule_space());
  auto plan = m->plan_of("job").value();
  for (auto _ : state)
    benchmark::DoNotOptimize(engine.plan_lineage(plan).rows.size());
}
BENCHMARK(BM_PlanLineage)->Arg(4)->Arg(32)->Arg(128);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
