// Reproduces paper Fig. 3: "Execution and Schedule Model in Hercules" — the
// schedule-space objects mirror the execution-space objects:
//
//     Run            <->  ScheduleRun (plan)
//     EntityInstance <->  ScheduleNode (schedule instance)
//     Inst. Dep.     <->  ScheduleDep
//
// The artifact prints each mirrored pair side by side for the circuit flow.
// Benchmarks: lookup cost across the mirror (activity -> schedule node,
// instance -> link).

#include <iostream>

#include "bench_main.hpp"
#include "util/strings.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

constexpr const char* kCircuitSchema = R"(
schema circuit {
  data netlist, stimuli, performance;
  tool netlist_editor, simulator;
  rule Create:   netlist     <- netlist_editor();
  rule Simulate: performance <- simulator(netlist, stimuli);
}
)";

void print_artifact() {
  auto m = hercules::WorkflowManager::create(kCircuitSchema).take();
  m->register_tool({.instance_name = "ed", .tool_type = "netlist_editor",
                    .nominal = cal::WorkDuration::hours(14)})
      .expect("tool");
  m->register_tool({.instance_name = "sim", .tool_type = "simulator",
                    .nominal = cal::WorkDuration::hours(6)})
      .expect("tool");
  m->extract_task("adder", "performance").expect("extract");
  m->bind("adder", "stimuli", "adder.stim").expect("bind");
  m->bind("adder", "netlist_editor", "ed").expect("bind");
  m->bind("adder", "simulator", "sim").expect("bind");
  m->estimator().set_intuition("Create", cal::WorkDuration::hours(16));
  m->estimator().set_intuition("Simulate", cal::WorkDuration::hours(8));

  auto plan = m->plan_task("adder", {.anchor = m->clock().now()}).value();
  m->execute_task("adder", "pat").value();
  m->link_completion("adder", "Create").expect("link");
  m->link_completion("adder", "Simulate").expect("link");

  const auto& space = m->schedule_space();
  std::cout << "Fig. 3 — execution space and schedule space, mirrored\n\n";
  std::cout << util::pad_right("EXECUTION SPACE", 44) << "SCHEDULE SPACE\n";
  std::cout << util::repeat('-', 80) << "\n";
  std::cout << util::pad_right("(whole execution of the task)", 44)
            << space.plan(plan).str() << "\n";
  for (const auto& run : m->db().runs()) {
    auto nid = space.node_in_plan(plan, run.activity);
    std::cout << util::pad_right(run.str(), 44)
              << (nid ? space.node(*nid).str() : "(none)") << "\n";
    if (run.output.valid()) {
      std::string left = "  out: " + m->db().instance(run.output).str();
      std::string right;
      if (nid) {
        if (auto link = space.link_of(*nid)) right = "  linked by link " + link->str();
      }
      std::cout << util::pad_right(left, 44) << right << "\n";
    }
  }
  std::cout << "\nDependencies (mirrored):\n";
  for (const auto& dep : space.plan(plan).deps) {
    std::cout << "  schedule: " << space.node(dep.from).activity << " -> "
              << space.node(dep.to).activity << "\n";
  }
  for (const auto& run : m->db().runs()) {
    for (auto in : run.inputs) {
      const auto& inst = m->db().instance(in);
      if (inst.produced_by.valid())
        std::cout << "  execution: " << m->db().run(inst.produced_by).activity
                  << " -> " << run.activity << " (via " << inst.str() << ")\n";
    }
  }
  std::cout << "\n";
}

void BM_MirrorLookup(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(static_cast<std::size_t>(state.range(0))),
                               "d" + std::to_string(state.range(0)));
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  const auto& space = m->schedule_space();
  std::size_t i = 0;
  for (auto _ : state) {
    std::string activity = "A" + std::to_string(1 + (i++ % state.range(0)));
    benchmark::DoNotOptimize(space.node_in_plan(plan, activity));
  }
}
BENCHMARK(BM_MirrorLookup)->Arg(8)->Arg(64)->Arg(256);

void BM_LinkLookup(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(32), "d32",
                               cal::WorkDuration::minutes(5));
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  m->execute_task("job", "pat").value();
  for (const auto& rule : m->schema().rules())
    m->link_completion("job", rule.activity).expect("link");
  const auto& space = m->schedule_space();
  std::size_t i = 0;
  for (auto _ : state) {
    auto nid = sched::ScheduleNodeId{1 + (i++ % space.node_count())};
    benchmark::DoNotOptimize(space.link_of(nid));
  }
}
BENCHMARK(BM_LinkLookup);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
