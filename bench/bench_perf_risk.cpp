// P7: Monte Carlo risk throughput — thread scaling at fixed sample count and
// sample scaling at fixed width.  The artifact also proves the determinism
// contract: the same seed yields a bit-identical report whichever way the
// samples are sharded across threads.

#include <chrono>
#include <iostream>
#include <thread>

#include "bench_main.hpp"
#include "core/risk.hpp"
#include "util/strings.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

void print_artifact() {
  auto m = bench::make_manager(bench::layered_schema(16, 4), "root");
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();

  std::cout << "P7 — Monte Carlo risk: thread scaling (10000 samples, 16-wide"
               " x 4-layer flow, "
            << std::thread::hardware_concurrency() << " hardware threads)\n\n";
  std::cout << util::pad_right("threads", 9) << util::pad_right("wall", 12)
            << util::pad_right("speedup", 9) << "report\n"
            << util::repeat('-', 46) << "\n";
  sched::RiskOptions opt;
  opt.samples = 10000;
  opt.seed = 42;
  double base_ms = 0;
  sched::RiskReport reference;
  for (int threads : {1, 2, 4, 8}) {
    opt.threads = threads;
    auto t0 = std::chrono::steady_clock::now();
    auto report = sched::analyze_risk(m->schedule_space(), m->db(), plan, opt).take();
    double ms = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                1e3;
    bool identical = true;
    if (threads == 1) {
      base_ms = ms;
      reference = report;
    } else {
      identical = report.mean_finish == reference.mean_finish &&
                  report.p50_finish == reference.p50_finish &&
                  report.p90_finish == reference.p90_finish &&
                  report.on_time_probability == reference.on_time_probability;
      for (std::size_t i = 0; identical && i < report.activities.size(); ++i)
        identical = report.activities[i].criticality ==
                    reference.activities[i].criticality;
    }
    std::cout << util::pad_right(std::to_string(threads), 9)
              << util::pad_right(util::format_double(ms, 1) + " ms", 12)
              << util::pad_right(util::format_double(base_ms / ms, 2) + "x", 9)
              << (identical ? "identical to threads=1" : "MISMATCH") << "\n";
  }
  std::cout << "\nExpected shape: near-linear speedup while threads <= hardware\n"
               "threads (workers share nothing but the finish array, written at\n"
               "disjoint indices); on a single-core host the wall times stay\n"
               "flat.  Every row must read `identical` regardless — per-sample\n"
               "RNG streams are derived from (seed, sample index), never from\n"
               "the worker, so sharding cannot change the result.\n\n";
}

void BM_RiskThreads(benchmark::State& state) {
  auto m = bench::make_manager(bench::layered_schema(16, 4), "root");
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  sched::RiskOptions opt;
  opt.samples = 10000;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = sched::analyze_risk(m->schedule_space(), m->db(), plan, opt);
    benchmark::DoNotOptimize(r.value().p90_finish);
  }
  state.SetItemsProcessed(state.iterations() * opt.samples);
}
BENCHMARK(BM_RiskThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_RiskBatched(benchmark::State& state) {
  // Single-thread sample throughput on a wider flow: isolates the batched
  // SoA makespan lanes (solve_batch) from thread scaling.
  auto m = bench::make_manager(bench::layered_schema(32, 8), "root");
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  sched::RiskOptions opt;
  opt.samples = 2000;
  opt.threads = 1;
  for (auto _ : state) {
    auto r = sched::analyze_risk(m->schedule_space(), m->db(), plan, opt);
    benchmark::DoNotOptimize(r.value().p90_finish);
  }
  state.SetItemsProcessed(state.iterations() * opt.samples);
}
BENCHMARK(BM_RiskBatched)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_RiskSamples(benchmark::State& state) {
  auto m = bench::make_manager(bench::layered_schema(8, 4), "root");
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  sched::RiskOptions opt;
  opt.samples = static_cast<int>(state.range(0));
  opt.threads = 4;
  for (auto _ : state) {
    auto r = sched::analyze_risk(m->schedule_space(), m->db(), plan, opt);
    benchmark::DoNotOptimize(r.value().p90_finish);
  }
  state.SetItemsProcessed(state.iterations() * opt.samples);
}
BENCHMARK(BM_RiskSamples)->Range(1000, 100000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

HERC_BENCH_MAIN(print_artifact)
