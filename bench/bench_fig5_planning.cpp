// Reproduces paper Fig. 5: the Hercules database during the PLANNING phase —
// schedule-instance containers populated (with multiple versions SC1, SC2
// from successive plans) while the entity containers are still empty.
//
// Benchmarks: planner throughput (simulated execution + CPM) vs. flow shape,
// including resource-leveled planning.

#include <iostream>

#include "bench_main.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

constexpr const char* kCircuitSchema = R"(
schema circuit {
  data netlist, stimuli, performance;
  tool netlist_editor, simulator;
  rule Create:   netlist     <- netlist_editor();
  rule Simulate: performance <- simulator(netlist, stimuli);
}
)";

void print_artifact() {
  auto m = hercules::WorkflowManager::create(kCircuitSchema).take();
  m->extract_task("adder", "performance").expect("extract");
  m->estimator().set_intuition("Create", cal::WorkDuration::hours(16));
  m->estimator().set_intuition("Simulate", cal::WorkDuration::hours(8));

  // Two planning passes: the plan is refined once, so each activity's
  // schedule container holds versions SC1 and SC2, exactly as Fig. 5 shows.
  m->plan_task("adder", {.anchor = m->clock().now()}).value();
  m->replan_task("adder", {.anchor = m->clock().now()}).value();

  std::cout << "Fig. 5 — Hercules database during the planning phase\n"
            << "(schedule space populated with two plan generations; execution\n"
            << " space still empty)\n\n"
            << m->dump_database() << "\n";
}

void BM_PlanChain(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(static_cast<std::size_t>(state.range(0))),
                               "d" + std::to_string(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(m->plan_task("job", {.anchor = m->clock().now()}).value());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlanChain)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Complexity();

void BM_PlanLayered(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4), "root");
  for (auto _ : state)
    benchmark::DoNotOptimize(m->plan_task("job", {.anchor = m->clock().now()}).value());
}
BENCHMARK(BM_PlanLayered)->Arg(4)->Arg(16)->Arg(64);

void BM_PlanWithLeveling(benchmark::State& state) {
  auto m = bench::make_manager(bench::fanin_schema(static_cast<std::size_t>(state.range(0))),
                               "out");
  auto person = m->add_resource("pat");
  sched::PlanRequest req;
  req.anchor = m->clock().now();
  req.level_resources = true;
  for (const auto& rule : m->schema().rules()) req.assignments[rule.activity] = {person};
  for (auto _ : state) benchmark::DoNotOptimize(m->plan_task("job", req).value());
}
BENCHMARK(BM_PlanWithLeveling)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
