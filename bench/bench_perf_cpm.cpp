// P1: CPM scheduling cost vs. flow size and shape (chain, fan-in diamond,
// random DAG), 10 .. 10k activities.  The artifact prints a scaling table;
// google-benchmark provides the precise timings + complexity fit.

#include <chrono>
#include <iostream>

#include "bench_main.hpp"
#include "core/cpm_solver.hpp"
#include "core/resources.hpp"
#include "core/worker_pool.hpp"
#include "util/strings.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

std::vector<sched::CpmActivity> diamond_network(std::size_t half) {
  // source -> `half` parallel branches -> sink
  std::vector<sched::CpmActivity> acts(half + 2);
  acts[0].duration = 10;
  for (std::size_t i = 1; i <= half; ++i) {
    acts[i].duration = 60 + static_cast<std::int64_t>(i % 7) * 10;
    acts[i].preds = {0};
    acts[half + 1].preds.push_back(i);
  }
  acts[half + 1].duration = 10;
  return acts;
}

void print_artifact() {
  std::cout << "P1 — CPM scaling (time per full forward+backward solve)\n\n";
  std::cout << util::pad_right("activities", 12) << util::pad_right("chain", 14)
            << util::pad_right("diamond", 14) << util::pad_right("random dag", 14)
            << "\n" << util::repeat('-', 54) << "\n";
  for (std::size_t n : {10u, 100u, 1000u, 10000u}) {
    auto time_one = [](const std::vector<sched::CpmActivity>& acts) {
      auto t0 = std::chrono::steady_clock::now();
      int reps = 0;
      std::int64_t sink = 0;
      do {
        auto r = sched::compute_cpm(acts).take();
        sink += r.makespan;
        ++reps;
      } while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(30));
      auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
      benchmark::DoNotOptimize(sink);
      return std::to_string(us / reps) + " us";
    };
    std::cout << util::pad_right(std::to_string(n), 12)
              << util::pad_right(time_one(bench::chain_cpm_network(n)), 14)
              << util::pad_right(time_one(diamond_network(n - 2)), 14)
              << util::pad_right(time_one(bench::random_cpm_network(n, 0.7, 42)), 14)
              << "\n";
  }
  std::cout << "\nExpected shape: near-linear in activities+edges (topological\n"
               "passes); the paper's flows (tens of activities) solve in\n"
               "microseconds, so re-planning on every database event is cheap —\n"
               "the premise of automatic schedule updating.\n\n";

  std::cout << "Compile-once incremental re-solve vs. one-shot compute_cpm\n"
               "(random dag, one duration mutated per solve)\n\n";
  std::cout << util::pad_right("activities", 12) << util::pad_right("one-shot", 14)
            << util::pad_right("re-solve", 14) << "speedup\n"
            << util::repeat('-', 48) << "\n";
  for (std::size_t n : {10u, 100u, 1000u, 10000u}) {
    auto acts = bench::random_cpm_network(n, 0.7, 42);
    auto time_ns = [](auto&& body) {
      auto t0 = std::chrono::steady_clock::now();
      int reps = 0;
      do {
        body();
        ++reps;
      } while (std::chrono::steady_clock::now() - t0 < std::chrono::milliseconds(30));
      return static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count()) /
             reps;
    };
    std::int64_t sink = 0;
    double oneshot = time_ns([&] { sink += sched::compute_cpm(acts).take().makespan; });
    auto solver = sched::CpmSolver::compile(acts).take();
    sched::CpmResult r;
    solver.solve(r);
    std::size_t flip = 0;
    double resolve = time_ns([&] {
      solver.set_duration(flip, solver.duration(flip) ^ 1);
      flip = (flip + 1) % acts.size();
      solver.solve(r);
      sink += r.makespan;
    });
    benchmark::DoNotOptimize(sink);
    std::cout << util::pad_right(std::to_string(n), 12)
              << util::pad_right(std::to_string(static_cast<long>(oneshot / 1e3)) + " us", 14)
              << util::pad_right(std::to_string(static_cast<long>(resolve / 1e3)) + " us", 14)
              << util::format_double(oneshot / resolve, 1) << "x\n";
  }
  std::cout << "\nExpected shape: the re-solve path skips validation, CSR build and\n"
               "toposort and reuses the result buffers, so the speedup grows with\n"
               "network size — what-if loops and Monte Carlo sampling run on the\n"
               "re-solve path.\n\n";

  std::cout << "Mega-graph: streamed compile + level-parallel re-solve\n"
               "(layered mega-graph, width 1024, "
            << sched::WorkerPool::shared().threads() << " pool threads)\n\n";
  std::cout << util::pad_right("activities", 12) << util::pad_right("compile", 12)
            << util::pad_right("serial", 12) << util::pad_right("parallel", 12)
            << "1M budget\n" << util::repeat('-', 58) << "\n";
  for (std::size_t n : {std::size_t{262144}, std::size_t{1048576}}) {
    gen::MegaGraphSpec spec{.seed = 42, .activities = n, .width = 1024};
    auto t0 = std::chrono::steady_clock::now();
    auto solver =
        sched::CpmSolver::compile_stream(
            n, [&](const sched::CpmSolver::ActivitySink& sink) {
              gen::stream_mega_cpm(spec, sink);
            })
            .take();
    auto compile_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    sched::CpmResult r;
    solver.solve(r);  // warm-up: result buffers allocate once, here
    auto solve_ms = [&](const sched::SolveOptions& opts) {
      auto s0 = std::chrono::steady_clock::now();
      solver.solve(r, opts);
      benchmark::DoNotOptimize(r.makespan);
      return std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - s0)
          .count();
    };
    auto serial = solve_ms({});
    auto parallel = solve_ms({.pool = &sched::WorkerPool::shared()});
    const bool in_budget = n < 1048576 || parallel < 1000;
    std::cout << util::pad_right(std::to_string(n), 12)
              << util::pad_right(std::to_string(compile_ms) + " ms", 12)
              << util::pad_right(std::to_string(serial) + " ms", 12)
              << util::pad_right(std::to_string(parallel) + " ms", 12)
              << (n == 1048576 ? (in_budget ? "PASS (< 1 s)" : "OVER BUDGET") : "-")
              << "\n";
  }
  std::cout << "\nExpected shape: compile streams the generator twice (count +\n"
               "fill), so no intermediate adjacency lists are materialized; the\n"
               "level-parallel passes split each topological level into chunks\n"
               "over the shared worker pool and stay bit-identical to the serial\n"
               "solver, so the full 1M-activity re-solve fits inside a second\n"
               "even single-threaded.\n\n";
}

void BM_CpmChain(benchmark::State& state) {
  auto acts = bench::chain_cpm_network(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::compute_cpm(acts).value().makespan);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CpmChain)->Range(16, 16384)->Complexity(benchmark::oN);

void BM_CpmDiamond(benchmark::State& state) {
  auto acts = diamond_network(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::compute_cpm(acts).value().makespan);
}
BENCHMARK(BM_CpmDiamond)->Range(16, 16384);

void BM_CpmRandomDag(benchmark::State& state) {
  auto acts =
      bench::random_cpm_network(static_cast<std::size_t>(state.range(0)), 0.7, 42);
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::compute_cpm(acts).value().makespan);
}
BENCHMARK(BM_CpmRandomDag)->Range(16, 16384);

void BM_CpmSolverResolve(benchmark::State& state) {
  // Compile once; each iteration mutates one duration and re-solves the full
  // forward+backward pass in place.  Compare against BM_CpmRandomDag at the
  // same size for the one-shot cost (ISSUE target: >= 5x at 10k activities).
  auto acts =
      bench::random_cpm_network(static_cast<std::size_t>(state.range(0)), 0.7, 42);
  auto solver = sched::CpmSolver::compile(acts).take();
  sched::CpmResult r;
  solver.solve(r);
  std::size_t flip = 0;
  for (auto _ : state) {
    solver.set_duration(flip, solver.duration(flip) ^ 1);
    flip = (flip + 1) % acts.size();
    solver.solve(r);
    benchmark::DoNotOptimize(r.makespan);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CpmSolverResolve)->Range(16, 16384)->Complexity(benchmark::oN);

void BM_CpmSolverMakespan(benchmark::State& state) {
  // Forward-only re-solve: the inner loop of compute_drag / crash_to_deadline.
  auto acts =
      bench::random_cpm_network(static_cast<std::size_t>(state.range(0)), 0.7, 42);
  auto solver = sched::CpmSolver::compile(acts).take();
  std::size_t flip = 0;
  for (auto _ : state) {
    solver.set_duration(flip, solver.duration(flip) ^ 1);
    flip = (flip + 1) % acts.size();
    benchmark::DoNotOptimize(solver.solve_makespan());
  }
}
BENCHMARK(BM_CpmSolverMakespan)->Range(16, 16384);

sched::CpmSolver mega_solver(std::size_t n) {
  gen::MegaGraphSpec spec{.seed = 42, .activities = n, .width = 1024};
  return sched::CpmSolver::compile_stream(
             n, [&](const sched::CpmSolver::ActivitySink& sink) {
               gen::stream_mega_cpm(spec, sink);
             })
      .take();
}

void BM_CpmParallelResolve(benchmark::State& state) {
  // Full forward+backward re-solve of a layered mega-graph through the
  // shared worker pool (level-parallel above the serial threshold; on a
  // single-core host this measures the serial fallback on the same graph).
  auto solver = mega_solver(static_cast<std::size_t>(state.range(0)));
  sched::SolveOptions opts{.pool = &sched::WorkerPool::shared()};
  sched::CpmResult r;
  std::size_t flip = 0;
  for (auto _ : state) {
    solver.set_duration(flip, solver.duration(flip) ^ 1);
    flip = (flip + 1) % solver.size();
    solver.solve(r, opts);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_CpmParallelResolve)->Arg(65536)->Arg(262144)->Arg(1048576)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CpmParallelMakespan(benchmark::State& state) {
  // Forward-only mega re-solve: the what-if / crash loop at mega scale.
  auto solver = mega_solver(static_cast<std::size_t>(state.range(0)));
  sched::SolveOptions opts{.pool = &sched::WorkerPool::shared()};
  std::size_t flip = 0;
  for (auto _ : state) {
    solver.set_duration(flip, solver.duration(flip) ^ 1);
    flip = (flip + 1) % solver.size();
    benchmark::DoNotOptimize(solver.solve_makespan(opts));
  }
}
BENCHMARK(BM_CpmParallelMakespan)->Arg(65536)->Arg(262144)->Arg(1048576)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SgsSchedule(benchmark::State& state) {
  // Priority-rule SGS on a contended random network (cf. BM_LevelSerial:
  // same input family, event-indexed profiles instead of O(bookings) scans).
  sched::LevelingInput in;
  in.activities =
      bench::random_cpm_network(static_cast<std::size_t>(state.range(0)), 0.5, 7);
  in.requirements.resize(in.activities.size());
  in.capacities = {2, 2};
  for (std::size_t i = 0; i < in.activities.size(); ++i)
    in.requirements[i] = {i % 2};
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::sgs_schedule(in).value().makespan);
}
BENCHMARK(BM_SgsSchedule)->Range(16, 16384);

void BM_LevelSerial(benchmark::State& state) {
  sched::LevelingInput in;
  in.activities =
      bench::random_cpm_network(static_cast<std::size_t>(state.range(0)), 0.5, 7);
  in.requirements.resize(in.activities.size());
  in.capacities = {2, 2};
  for (std::size_t i = 0; i < in.activities.size(); ++i)
    in.requirements[i] = {i % 2};
  for (auto _ : state)
    benchmark::DoNotOptimize(sched::level_serial(in).value().makespan);
}
BENCHMARK(BM_LevelSerial)->Range(16, 1024);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
