// Reproduces paper Fig. 6: the Hercules database during the EXECUTION phase
// — entity containers filling with instances (the performance container
// holding two versions after an iteration of Simulate), runs recorded, the
// schedule space still carrying the proposed dates.
//
// Benchmarks: executor throughput (full traversals and single-activity
// iterations) vs. flow size.

#include <iostream>

#include "bench_main.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

constexpr const char* kCircuitSchema = R"(
schema circuit {
  data netlist, stimuli, performance;
  tool netlist_editor, simulator;
  rule Create:   netlist     <- netlist_editor();
  rule Simulate: performance <- simulator(netlist, stimuli);
}
)";

void print_artifact() {
  auto m = hercules::WorkflowManager::create(kCircuitSchema).take();
  m->register_tool({.instance_name = "ed", .tool_type = "netlist_editor",
                    .nominal = cal::WorkDuration::hours(14)})
      .expect("tool");
  m->register_tool({.instance_name = "sim", .tool_type = "simulator",
                    .nominal = cal::WorkDuration::hours(6)})
      .expect("tool");
  m->extract_task("adder", "performance").expect("extract");
  m->bind("adder", "stimuli", "adder.stim").expect("bind");
  m->bind("adder", "netlist_editor", "ed").expect("bind");
  m->bind("adder", "simulator", "sim").expect("bind");
  m->estimator().set_intuition("Create", cal::WorkDuration::hours(16));
  m->estimator().set_intuition("Simulate", cal::WorkDuration::hours(8));

  m->plan_task("adder", {.anchor = m->clock().now()}).value();
  m->execute_task("adder", "alice").value();
  // The iteration of Fig. 6: Simulate runs again -> performance v2.
  m->run_activity("adder", "Simulate", "bob").value();

  std::cout << "Fig. 6 — Hercules database during the execution phase\n"
            << "(entity instances E1, P1, P2 with runs; schedule instances\n"
            << " still unlinked)\n\n"
            << m->dump_database() << "\n";
}

void BM_FullExecution(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(static_cast<std::size_t>(state.range(0))),
                               "d" + std::to_string(state.range(0)),
                               cal::WorkDuration::minutes(5));
  for (auto _ : state)
    benchmark::DoNotOptimize(m->execute_task("job", "pat").value().final_output);
  state.SetItemsProcessed(state.iterations() * state.range(0));  // runs created
}
BENCHMARK(BM_FullExecution)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_SingleIteration(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(32), "d32",
                               cal::WorkDuration::minutes(5));
  m->execute_task("job", "pat").value();
  for (auto _ : state)
    benchmark::DoNotOptimize(m->run_activity("job", "A16", "pat").value().output);
}
BENCHMARK(BM_SingleIteration);

void BM_ExecutionLayered(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4), "root",
      cal::WorkDuration::minutes(5));
  for (auto _ : state)
    benchmark::DoNotOptimize(m->execute_task("job", "pat").value().final_output);
}
BENCHMARK(BM_ExecutionLayered)->Arg(4)->Arg(16);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
