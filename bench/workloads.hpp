#pragma once
// Synthetic workload generators shared by the benchmark binaries.
//
// All generation lives in herc::gen (src/gen/gen.hpp) — the benches are thin
// aliases so BENCH_BASELINE.json keeps measuring the exact same workloads:
// gen's legacy shapes are byte-identical to the strings this header used to
// build (locked by gen_test's golden checks).
//
// Flows come in three shapes that bracket real design processes:
//   chain    — strictly serial refinement (synthesis -> place -> route ...)
//   fanin    — wide independent front ends merging into one back end
//   layered  — L layers of W activities each, every activity consuming one
//              output from the previous layer (a realistic mixed DAG)

#include "gen/gen.hpp"

namespace herc::bench {

using gen::chain_cpm_network;
using gen::chain_schema;
using gen::fanin_schema;
using gen::layered_schema;
using gen::random_cpm_network;

/// Ready-to-run manager over a generated schema (see gen::make_bound_manager).
inline std::unique_ptr<hercules::WorkflowManager> make_manager(
    const std::string& dsl, const std::string& target,
    cal::WorkDuration tool_time = cal::WorkDuration::hours(2)) {
  return gen::make_bound_manager(dsl, target, tool_time);
}

}  // namespace herc::bench
