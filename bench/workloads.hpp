#pragma once
// Synthetic workload generators shared by the benchmark binaries.
//
// Flows are generated at three shapes that bracket real design processes:
//   chain    — strictly serial refinement (synthesis -> place -> route ...)
//   fanin    — wide independent front ends merging into one back end
//   layered  — L layers of W activities each, every activity consuming one
//              output from the previous layer (a realistic mixed DAG)

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cpm.hpp"
#include "hercules/workflow_manager.hpp"
#include "util/rng.hpp"

namespace herc::bench {

/// Schema with a serial chain of n activities: d0 -> A1 -> d1 -> ... -> dn.
inline std::string chain_schema(std::size_t n) {
  std::string dsl = "schema chain {\n  data d0";
  for (std::size_t i = 1; i <= n; ++i) dsl += ", d" + std::to_string(i);
  dsl += ";\n  tool t;\n";
  for (std::size_t i = 1; i <= n; ++i) {
    dsl += "  rule A" + std::to_string(i) + ": d" + std::to_string(i) + " <- t(d" +
           std::to_string(i - 1) + ");\n";
  }
  dsl += "}\n";
  return dsl;
}

/// Schema with `width` independent producers feeding one merge activity.
inline std::string fanin_schema(std::size_t width) {
  std::string dsl = "schema fanin {\n  data out";
  for (std::size_t i = 0; i < width; ++i) dsl += ", s" + std::to_string(i);
  dsl += ";\n  tool t;\n";
  for (std::size_t i = 0; i < width; ++i)
    dsl += "  rule Make" + std::to_string(i) + ": s" + std::to_string(i) + " <- t();\n";
  dsl += "  rule Merge: out <- t(";
  for (std::size_t i = 0; i < width; ++i)
    dsl += (i ? ", s" : "s") + std::to_string(i);
  dsl += ");\n}\n";
  return dsl;
}

/// Schema with `layers` x `width` activities; activity (l, w) consumes the
/// output of (l-1, w) and (l-1, (w+1) % width); a final Join merges layer L.
inline std::string layered_schema(std::size_t layers, std::size_t width) {
  std::string dsl = "schema layered {\n  data root";
  for (std::size_t l = 0; l <= layers; ++l)
    for (std::size_t w = 0; w < width; ++w)
      dsl += ", d" + std::to_string(l) + "_" + std::to_string(w);
  dsl += ";\n  tool t;\n";
  for (std::size_t l = 1; l <= layers; ++l) {
    for (std::size_t w = 0; w < width; ++w) {
      dsl += "  rule A" + std::to_string(l) + "_" + std::to_string(w) + ": d" +
             std::to_string(l) + "_" + std::to_string(w) + " <- t(d" +
             std::to_string(l - 1) + "_" + std::to_string(w) + ", d" +
             std::to_string(l - 1) + "_" + std::to_string((w + 1) % width) + ");\n";
    }
  }
  dsl += "  rule Join: root <- t(";
  for (std::size_t w = 0; w < width; ++w)
    dsl += (w ? ", d" : "d") + std::to_string(layers) + "_" + std::to_string(w);
  dsl += ");\n}\n";
  return dsl;
}

/// Builds a ready-to-run manager over a generated schema: one tool instance
/// for the single tool type "t", every primary input bound, fallback
/// estimate set, and the task "job" extracted for `target`.
inline std::unique_ptr<hercules::WorkflowManager> make_manager(
    const std::string& dsl, const std::string& target,
    cal::WorkDuration tool_time = cal::WorkDuration::hours(2)) {
  auto m = hercules::WorkflowManager::create(dsl, {}, /*tool_seed=*/1).take();
  m->register_tool({.instance_name = "t1", .tool_type = "t", .nominal = tool_time})
      .expect("bench tool");
  m->extract_task("job", target).expect("bench extract");
  for (auto id : m->schema().primary_inputs())
    m->bind("job", m->schema().type(id).name, m->schema().type(id).name + ".in")
        .expect("bench bind");
  m->bind("job", "t", "t1").expect("bench bind tool");
  m->estimator().set_fallback(cal::WorkDuration::hours(4));
  return m;
}

/// Random CPM activity network for the scheduling benches.
inline std::vector<sched::CpmActivity> random_cpm_network(std::size_t n,
                                                          double edge_p,
                                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<sched::CpmActivity> acts(n);
  for (std::size_t i = 0; i < n; ++i) {
    acts[i].duration = rng.uniform_int(10, 480);
    // Bound preds per activity so density stays realistic at large n.
    for (std::size_t tries = 0; tries < 4 && i > 0; ++tries)
      if (rng.chance(edge_p))
        acts[i].preds.push_back(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i) - 1)));
  }
  return acts;
}

/// Chain-shaped CPM network.
inline std::vector<sched::CpmActivity> chain_cpm_network(std::size_t n) {
  std::vector<sched::CpmActivity> acts(n);
  for (std::size_t i = 0; i < n; ++i) {
    acts[i].duration = 60;
    if (i > 0) acts[i].preds.push_back(i - 1);
  }
  return acts;
}

}  // namespace herc::bench
