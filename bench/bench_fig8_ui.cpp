// Reproduces paper Fig. 8: the Hercules user interface — the task graph as
// the central view with schedule operations applied at each node, the Gantt
// chart of planned vs. accomplished schedule, the schedule-instance browser,
// and an individual schedule-plan card (text stand-ins; see DESIGN.md).
//
// Benchmarks: render costs of every view.

#include <iostream>

#include "bench_main.hpp"
#include "gantt/gantt.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

std::unique_ptr<hercules::WorkflowManager> scenario() {
  auto m = bench::make_manager(bench::chain_schema(5), "d5",
                               cal::WorkDuration::hours(6));
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  // Complete the first three activities; slip a day before the third.
  m->run_activity("job", "A1", "pat").value();
  m->link_completion("job", "A1").expect("link");
  m->run_activity("job", "A2", "pat").value();
  m->link_completion("job", "A2").expect("link");
  m->clock().advance(cal::WorkDuration::hours(8));
  m->run_activity("job", "A3", "pat").value();
  m->link_completion("job", "A3").expect("link");
  return m;
}

void print_artifact() {
  auto m = scenario();
  std::cout << "Fig. 8 — Hercules user interface (text rendering)\n\n";
  std::cout << "[task graph pane]\n" << m->task("job").value()->render() << "\n";
  std::cout << "[Gantt pane: planned vs. accomplished, slip visible]\n"
            << m->gantt("job").value() << "\n";
  std::cout << "[schedule instance browser]\n" << m->browser().list() << "\n";
  auto plan = m->plan_of("job").value();
  auto node = m->schedule_space().node_in_plan(plan, "A4").value();
  std::cout << "[individual schedule plan]\n"
            << gantt::render_schedule_card(m->schedule_space(), m->db(),
                                           m->calendar(), node)
            << "\n";
  std::cout << "[status query pane]\n" << m->status_report("job").value() << "\n";
}

void BM_RenderGantt(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(static_cast<std::size_t>(state.range(0))),
                               "d" + std::to_string(state.range(0)));
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  for (auto _ : state) benchmark::DoNotOptimize(m->gantt("job").value().size());
}
BENCHMARK(BM_RenderGantt)->Arg(8)->Arg(64)->Arg(256);

void BM_RenderTaskTree(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4), "root");
  const auto& tree = *m->task("job").value();
  for (auto _ : state) benchmark::DoNotOptimize(tree.render().size());
}
BENCHMARK(BM_RenderTaskTree)->Arg(4)->Arg(16);

void BM_BrowserList(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(64), "d64");
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  m->replan_task("job", {.anchor = m->clock().now()}).value();
  for (auto _ : state) {
    auto browser = m->browser();
    benchmark::DoNotOptimize(browser.list().size());
  }
}
BENCHMARK(BM_BrowserList);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
