// P4: duration-predictor ablation — last vs. mean vs. EWMA vs. PERT on
// synthetic run-time histories with different dynamics.  The paper leaves
// automatic prediction as future work; this bench quantifies the design
// choice the estimator module makes available.
//
// Method: for each history model, generate T observations; at every step
// t >= 3 predict observation t from the first t-1 and accumulate the mean
// absolute percentage error (MAPE).  Lower is better.

#include <cmath>
#include <iostream>

#include "bench_main.hpp"
#include "core/estimate.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace herc;

namespace {

using sched::DurationEstimator;
using sched::EstimateStrategy;

struct HistoryModel {
  const char* name;
  // Produces observation t (minutes).
  std::function<double(util::Rng&, int)> sample;
};

std::vector<HistoryModel> history_models() {
  return {
      {"stationary (480 +- 10%)",
       [](util::Rng& rng, int) { return rng.normal(480, 48); }},
      {"drift (+8/run: growing design)",
       [](util::Rng& rng, int t) { return rng.normal(480 + 8.0 * t, 30); }},
      {"spiky (10% runs take 4x)",
       [](util::Rng& rng, int) {
         double base = rng.normal(480, 30);
         return rng.chance(0.1) ? base * 4 : base;
       }},
      {"improving (-6/run: learning)",
       [](util::Rng& rng, int t) { return rng.normal(700 - 6.0 * t, 30); }},
  };
}

double mape(const HistoryModel& model, EstimateStrategy strategy, std::uint64_t seed) {
  util::Rng rng(seed);
  DurationEstimator est;
  est.set_ewma_alpha(0.4);
  const int kSteps = 40;
  std::vector<cal::WorkDuration> history;
  double err_sum = 0;
  int err_n = 0;
  for (int t = 0; t < kSteps; ++t) {
    double actual = std::max(30.0, model.sample(rng, t));
    if (t >= 3) {
      double predicted =
          static_cast<double>(est.estimate_from(history, strategy).count_minutes());
      err_sum += std::fabs(predicted - actual) / actual;
      ++err_n;
    }
    history.push_back(cal::WorkDuration::minutes(static_cast<std::int64_t>(actual)));
  }
  return 100.0 * err_sum / err_n;
}

void print_artifact() {
  const EstimateStrategy strategies[] = {EstimateStrategy::kLast,
                                         EstimateStrategy::kMean,
                                         EstimateStrategy::kEwma,
                                         EstimateStrategy::kPert};
  std::cout << "P4 — predictor ablation: MAPE (%) of next-run-time prediction,\n"
               "averaged over 25 seeds, 40 runs each (lower is better)\n\n";
  std::cout << util::pad_right("history model", 30);
  for (auto s : strategies)
    std::cout << util::pad_right(sched::estimate_strategy_name(s), 10);
  std::cout << "\n" << util::repeat('-', 70) << "\n";
  for (const auto& model : history_models()) {
    std::cout << util::pad_right(model.name, 30);
    for (auto s : strategies) {
      double total = 0;
      for (std::uint64_t seed = 1; seed <= 25; ++seed) total += mape(model, s, seed);
      std::cout << util::pad_right(util::format_double(total / 25, 1), 10);
    }
    std::cout << "\n";
  }
  std::cout << "\nExpected shape: 'last' wins under drift/improvement (it tracks\n"
               "the trend), 'mean'/'pert' win on stationary and spiky histories\n"
               "(they smooth outliers), EWMA sits between — motivating a\n"
               "per-activity strategy choice rather than a single default.\n\n";
}

void BM_EstimateFromHistory(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<cal::WorkDuration> history;
  for (int i = 0; i < state.range(0); ++i)
    history.push_back(cal::WorkDuration::minutes(rng.uniform_int(60, 900)));
  DurationEstimator est;
  auto strategy = static_cast<EstimateStrategy>(state.range(1));
  for (auto _ : state)
    benchmark::DoNotOptimize(est.estimate_from(history, strategy).count_minutes());
}
BENCHMARK(BM_EstimateFromHistory)
    ->Args({10, static_cast<int>(EstimateStrategy::kMean)})
    ->Args({1000, static_cast<int>(EstimateStrategy::kMean)})
    ->Args({10, static_cast<int>(EstimateStrategy::kPert)})
    ->Args({1000, static_cast<int>(EstimateStrategy::kPert)})
    ->Args({1000, static_cast<int>(EstimateStrategy::kEwma)});

}  // namespace

HERC_BENCH_MAIN(print_artifact)
