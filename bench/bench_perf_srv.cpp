// P-srv: what the server front-end costs and what group commit buys.
//
// The artifact table drives the closed-loop load driver (herc::srv::run_load)
// against an in-process server twice — group-committed journal vs. plain
// per-run journal — and reports throughput, tail latency and the flush count.
// The headline claim is visible directly: the same number of journal lines
// reaches disk in far fewer flushes, at equal or better throughput.
//
// The timed benchmarks then isolate the layers: pure framing/parsing cost,
// a ping round trip (wire + queue + worker, no project work), and a full
// execute round trip (everything including the flow engine and the journal).

#include <unistd.h>

#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "bench_main.hpp"
#include "srv/client.hpp"
#include "srv/load.hpp"
#include "srv/server.hpp"
#include "srv/wire.hpp"

using namespace herc;

namespace {

namespace fs = std::filesystem;

/// In-process server on a unix socket under a private temp dir.
struct ServerFixture {
  explicit ServerFixture(bool group_commit, bool snapshot_reads = true,
                         int workers = 4) {
    dir = fs::temp_directory_path() /
          ("herc_bench_srv." + std::to_string(::getpid()) + "." +
           std::to_string(counter++));
    fs::create_directories(dir);
    srv::ServerConfig config;
    config.unix_path = (dir / "srv.sock").string();
    config.workers = workers;
    config.shard.dir = dir.string();
    config.shard.group_commit = group_commit;
    config.shard.snapshot_reads = snapshot_reads;
    server = srv::Server::start(config).take();
  }
  ~ServerFixture() {
    server->stop();
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  /// Opens one generated project and returns a connected client.
  std::unique_ptr<srv::Client> client_with_project(const std::string& name) {
    auto client = srv::Client::connect(server->unix_address()).take();
    util::JsonObject args;
    args.set("name", name);
    args.set("scenario_seed", util::Json(std::int64_t{7}));
    args.set("shape", "layered");
    args.set("size", util::Json(std::int64_t{2}));
    client->invoke("", "open", std::move(args)).value();
    client->invoke(name, "plan").value();
    return client;
  }

  static int counter;
  fs::path dir;
  std::unique_ptr<srv::Server> server;
};

int ServerFixture::counter = 0;

srv::LoadReport drive(bool group_commit) {
  ServerFixture fixture(group_commit);
  srv::LoadOptions options;
  options.address = fixture.server->unix_address();
  options.projects = 2;
  options.designers = 2;
  options.duration = std::chrono::milliseconds(500);
  options.read_every = 4;
  return srv::run_load(options).take();
}

/// Read-heavy drive for the MVCC sweep: ONE hot project, `readers` manager
/// threads polling it closed-loop plus one paced writer executing flows.
/// `--read-mix 90` with readers+1 designers dedicates exactly `readers`
/// threads to the read rotation for every sweep point used here.
srv::LoadReport drive_read_mix(bool snapshot_reads, int readers) {
  ServerFixture fixture(/*group_commit=*/true, snapshot_reads,
                        /*workers=*/readers + 1);
  srv::LoadOptions options;
  options.address = fixture.server->unix_address();
  options.projects = 1;
  options.designers = readers + 1;
  options.read_mix = 90;
  options.rate_per_designer = 10.0;  // paced writer (see LoadOptions)
  options.warmup_executes = 40;      // mid-flight project, both modes alike
  options.duration = std::chrono::milliseconds(1000);
  return srv::run_load(options).take();
}

void print_read_mix_artifact() {
  std::cout << "P-srv-mvcc: snapshot reads vs single-mutex baseline "
               "(1 hot project, N readers + 1 paced writer, 1s)\n\n";
  std::cout << "  readers   snapshot reads/s   locked reads/s   speedup   "
               "wr p99 snap/locked us\n";
  for (int readers : {1, 2, 4, 8}) {
    auto snap = drive_read_mix(/*snapshot_reads=*/true, readers);
    auto locked = drive_read_mix(/*snapshot_reads=*/false, readers);
    const double speedup = locked.reads_per_sec > 0
                               ? snap.reads_per_sec / locked.reads_per_sec
                               : 0.0;
    std::printf("  %7d   %16.0f   %14.0f   %6.2fx   %8lld / %lld\n", readers,
                snap.reads_per_sec, locked.reads_per_sec, speedup,
                static_cast<long long>(snap.write_p99_us),
                static_cast<long long>(locked.write_p99_us));
  }
  std::cout << "\n  (locked mode re-renders every response under the shard "
               "mutex; snapshot mode\n   serves repeat reads from the pinned "
               "epoch's memo and never takes the lock)\n\n";
}

void print_artifact() {
  std::cout << "P-srv: server front-end under closed-loop load "
               "(2 projects x 2 designers, 500ms)\n\n";
  std::cout << "  journal mode   runs/s     p50us  p99us  lines    flushes\n";
  for (bool group_commit : {false, true}) {
    auto report = drive(group_commit);
    // Plain mode is one flush per line by construction (see ShardOptions);
    // only the committer counts its flushes.
    const auto flushes =
        group_commit ? report.group_commits : report.journal_lines;
    std::printf("  %-12s %8.0f  %6lld %6lld  %7lld  %7lld\n",
                group_commit ? "group-commit" : "per-run",
                report.runs_per_sec, static_cast<long long>(report.p50_us),
                static_cast<long long>(report.p99_us),
                static_cast<long long>(report.journal_lines),
                static_cast<long long>(flushes));
  }
  std::cout << "\n  (same lines recovered either way; group commit batches "
               "them into far fewer flushes)\n\n";
  print_read_mix_artifact();
}

// Pure protocol cost: frame-encode a request and parse it back, no sockets.
void BM_WireEncodeParse(benchmark::State& state) {
  srv::wire::Request request;
  request.id = 42;
  request.project = "load0";
  request.op = "execute";
  request.args.set("designer", "designer1");
  for (auto _ : state) {
    std::string bytes = request.encode();
    srv::wire::FrameReader reader;
    reader.feed(bytes);
    auto payload = reader.poll();
    benchmark::DoNotOptimize(
        srv::wire::Request::parse(*payload).value().id);
  }
}
BENCHMARK(BM_WireEncodeParse);

// Wire + queue + worker round trip with no project work behind it.
void BM_PingRoundTrip(benchmark::State& state) {
  ServerFixture fixture(/*group_commit=*/true);
  auto client = srv::Client::connect(fixture.server->unix_address()).take();
  for (auto _ : state)
    benchmark::DoNotOptimize(client->invoke("", "ping").value().is_object());
}
BENCHMARK(BM_PingRoundTrip);

// Full stack: one flow execution per iteration, journal group-committed.
// A lone client pays the commit window on every run (nothing to batch
// with) — the classic group-commit latency trade, bought back many times
// over under concurrent load (see the artifact table and herc_load).
void BM_ExecuteRoundTrip(benchmark::State& state) {
  ServerFixture fixture(/*group_commit=*/true);
  auto client = fixture.client_with_project("bench");
  for (auto _ : state) {
    util::JsonObject args;
    args.set("designer", "alice");
    benchmark::DoNotOptimize(
        client->invoke("bench", "execute", std::move(args)).value().is_object());
  }
}
BENCHMARK(BM_ExecuteRoundTrip);

// Same, but one flush per recorded run (what group commit replaces).
void BM_ExecuteRoundTripPlainJournal(benchmark::State& state) {
  ServerFixture fixture(/*group_commit=*/false);
  auto client = fixture.client_with_project("bench");
  for (auto _ : state) {
    util::JsonObject args;
    args.set("designer", "alice");
    benchmark::DoNotOptimize(
        client->invoke("bench", "execute", std::move(args)).value().is_object());
  }
}
BENCHMARK(BM_ExecuteRoundTripPlainJournal);

// A status read against a planned project: the read mix's cheap path.
void BM_StatusRoundTrip(benchmark::State& state) {
  ServerFixture fixture(/*group_commit=*/true);
  auto client = fixture.client_with_project("bench");
  for (auto _ : state)
    benchmark::DoNotOptimize(
        client->invoke("bench", "status").value().is_object());
}
BENCHMARK(BM_StatusRoundTrip);

// A query round trip through the snapshot read lane: no shard mutex, the
// second and later iterations are served from the pinned epoch's memo.
void BM_QueryRoundTripSnapshot(benchmark::State& state) {
  ServerFixture fixture(/*group_commit=*/true, /*snapshot_reads=*/true);
  auto client = fixture.client_with_project("bench");
  for (auto _ : state) {
    util::JsonObject args;
    args.set("statement", std::string("select schedule where critical = true"));
    benchmark::DoNotOptimize(
        client->invoke("bench", "query", std::move(args)).value().is_object());
  }
}
BENCHMARK(BM_QueryRoundTripSnapshot);

// The same query through the write lane (snapshot reads off): the pre-MVCC
// model — shard mutex plus a fresh render per call.  The gap between these
// two is the per-read cost the read lane removed.
void BM_QueryRoundTripLocked(benchmark::State& state) {
  ServerFixture fixture(/*group_commit=*/true, /*snapshot_reads=*/false);
  auto client = fixture.client_with_project("bench");
  for (auto _ : state) {
    util::JsonObject args;
    args.set("statement", std::string("select schedule where critical = true"));
    benchmark::DoNotOptimize(
        client->invoke("bench", "query", std::move(args)).value().is_object());
  }
}
BENCHMARK(BM_QueryRoundTripLocked);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
