// Reproduces paper Fig. 1: "Schedule Model within System Representation" —
// the Level-2 process flow giving rise to two kinds of Level-3 data
// (proposed milestones from *simulated* execution, actual design metadata
// from *real* execution) connected by completion links.
//
// Benchmarks: the cost of the two Level-3 production paths (planning vs.
// executing the same flow) and of creating the link.

#include <iostream>

#include "bench_main.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

void print_artifact() {
  auto m = bench::make_manager(bench::chain_schema(3), "d3");
  std::cout << "Fig. 1 — schedule model within the system representation\n\n";
  std::cout << "Level 2 (pre-execution): process flow\n"
            << m->task("job").value()->render() << "\n";

  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  std::cout << "Level 3, proposed milestones (created by SIMULATING the flow):\n";
  const auto& space = m->schedule_space();
  for (auto nid : space.plan(plan).nodes) {
    const auto& n = space.node(nid);
    std::cout << "  " << n.str() << "  planned " << m->calendar().format(n.planned_start)
              << " .. " << m->calendar().format(n.planned_finish) << "\n";
  }

  m->execute_task("job", "pat").value();
  std::cout << "\nLevel 3, actual design metadata (created by EXECUTING the flow):\n";
  for (const auto& run : m->db().runs())
    std::cout << "  " << run.str() << "  actual "
              << m->calendar().format(run.started_at) << " .. "
              << m->calendar().format(run.finished_at) << "\n";

  for (const auto& rule : m->schema().rules())
    m->link_completion("job", rule.activity).expect("link");
  std::cout << "\nLinks between schedule flow data and actual flow data:\n";
  for (const auto& link : space.links()) {
    std::cout << "  " << space.node(link.schedule_node).str() << "  ==  "
              << m->db().instance(link.entity_instance).str() << "\n";
  }
  std::cout << "\n";
}

void BM_PlanFlow(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(static_cast<std::size_t>(state.range(0))),
                               "d" + std::to_string(state.range(0)));
  for (auto _ : state) {
    auto plan = m->plan_task("job", {.anchor = m->clock().now()});
    benchmark::DoNotOptimize(plan.value());
  }
}
BENCHMARK(BM_PlanFlow)->Arg(4)->Arg(16)->Arg(64);

void BM_ExecuteFlow(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(static_cast<std::size_t>(state.range(0))),
                               "d" + std::to_string(state.range(0)),
                               cal::WorkDuration::minutes(5));
  for (auto _ : state) {
    auto result = m->execute_task("job", "pat");
    benchmark::DoNotOptimize(result.value().final_output);
  }
}
BENCHMARK(BM_ExecuteFlow)->Arg(4)->Arg(16)->Arg(64);

void BM_LinkCompletion(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    auto m = bench::make_manager(bench::chain_schema(8), "d8",
                                 cal::WorkDuration::minutes(5));
    m->plan_task("job", {.anchor = m->clock().now()}).value();
    m->execute_task("job", "pat").value();
    state.ResumeTiming();
    for (const auto& rule : m->schema().rules())
      m->link_completion("job", rule.activity).expect("link");
  }
}
BENCHMARK(BM_LinkCompletion);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
