// E3: execution-mode ablation — serial execution (one designer, one clock)
// vs. concurrent dispatch (a team, resource-constrained overlap).  The
// makespan ratio quantifies what the schedule's parallelism is worth and
// shows the dispatch rule agreeing with the leveling model.

#include <iostream>

#include "bench_main.hpp"
#include "util/strings.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

void print_artifact() {
  std::cout << "E3 — serial vs. concurrent execution makespan (work hours)\n\n";
  std::cout << util::pad_right("flow", 18) << util::pad_right("serial", 10)
            << util::pad_right("dispatch", 10) << "speedup\n"
            << util::repeat('-', 48) << "\n";

  struct Case {
    const char* name;
    std::string dsl;
    std::string target;
  };
  const Case cases[] = {
      {"chain x8", bench::chain_schema(8), "d8"},
      {"fanin x8", bench::fanin_schema(8), "out"},
      {"layered 4x4", bench::layered_schema(4, 4), "root"},
  };
  for (const auto& c : cases) {
    auto serial = bench::make_manager(c.dsl, c.target, cal::WorkDuration::hours(2));
    serial->execute_task("job", "solo").value();
    double serial_h = static_cast<double>(serial->clock().now().minutes_since_epoch()) / 60;

    auto par = bench::make_manager(c.dsl, c.target, cal::WorkDuration::hours(2));
    par->execute_task_concurrent("job", "team").value();
    double par_h = static_cast<double>(par->clock().now().minutes_since_epoch()) / 60;

    std::cout << util::pad_right(c.name, 18)
              << util::pad_right(util::format_double(serial_h, 1), 10)
              << util::pad_right(util::format_double(par_h, 1), 10)
              << util::format_double(serial_h / par_h, 2) << "x\n";
  }
  std::cout << "\nExpected shape: chains gain nothing (no parallelism), fan-in\n"
               "flows approach their width, layered flows land in between —\n"
               "and adding a unit-capacity shared resource collapses each back\n"
               "toward serial (tested in tests/dispatch_test.cpp).\n\n";
}

void BM_SerialExecution(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4), "root",
      cal::WorkDuration::minutes(5));
  for (auto _ : state)
    benchmark::DoNotOptimize(m->execute_task("job", "solo").value().final_output);
}
BENCHMARK(BM_SerialExecution)->Arg(4)->Arg(16);

void BM_ConcurrentDispatch(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4), "root",
      cal::WorkDuration::minutes(5));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        m->execute_task_concurrent("job", "team").value().final_output);
}
BENCHMARK(BM_ConcurrentDispatch)->Arg(4)->Arg(16);

void BM_DispatchWithContention(benchmark::State& state) {
  auto m = bench::make_manager(bench::fanin_schema(32), "out",
                               cal::WorkDuration::minutes(5));
  auto farm = m->add_resource("farm", "machine",
                              static_cast<int>(state.range(0)));
  exec::Executor::DispatchOptions opt;
  for (const auto& rule : m->schema().rules()) opt.assignments[rule.activity] = {farm};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        m->execute_task_concurrent("job", "team", opt).value().final_output);
}
BENCHMARK(BM_DispatchWithContention)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
