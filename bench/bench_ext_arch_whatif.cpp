// E1: extension benchmarks — architectural roll-up (the paper's Sec. V
// future work) and what-if analysis (delay impact, deadline crash) over
// growing hierarchies and plans.

#include <iostream>

#include "arch/rollup.hpp"
#include "bench_main.hpp"
#include "core/whatif.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

/// Manager with `blocks` leaf tasks (chains of `depth` activities each) and
/// a 2-level hierarchy over them, all planned.
struct ArchScenario {
  std::unique_ptr<hercules::WorkflowManager> manager;
  arch::DesignHierarchy hierarchy{"soc"};
};

ArchScenario make_scenario(std::size_t blocks, std::size_t depth) {
  ArchScenario s;
  s.manager = hercules::WorkflowManager::create(bench::chain_schema(depth)).take();
  s.manager->register_tool({.instance_name = "t1", .tool_type = "t",
                            .nominal = cal::WorkDuration::hours(2)})
      .expect("tool");
  s.manager->estimator().set_fallback(cal::WorkDuration::hours(4));
  auto digital = s.hierarchy.add_component(s.hierarchy.root(), "digital").value();
  for (std::size_t b = 0; b < blocks; ++b) {
    std::string task = "block" + std::to_string(b);
    s.manager->extract_task(task, "d" + std::to_string(depth)).expect("extract");
    s.manager->bind(task, "d0", task + ".in").expect("bind");
    s.manager->bind(task, "t", "t1").expect("bind");
    auto comp = s.hierarchy.add_component(digital, task + "_c").value();
    s.hierarchy.assign_task(comp, task).expect("assign");
    s.manager->plan_task(task, {.anchor = s.manager->clock().now()}).value();
  }
  return s;
}

void print_artifact() {
  auto s = make_scenario(3, 4);
  // Progress one block so the roll-up shows mixed state.
  s.manager->execute_task("block0", "pat").value();
  for (const auto& rule : s.manager->schema().rules())
    s.manager->link_completion("block0", rule.activity).expect("link");

  std::cout << "E1 — architectural roll-up + what-if (extension of Sec. V)\n\n";
  auto rollup = arch::ArchSchedule::compute(s.hierarchy, *s.manager).take();
  std::cout << rollup.render(s.manager->calendar()) << "\n";

  auto plan = s.manager->plan_of("block1").value();
  auto impact = sched::simulate_delay(s.manager->schedule_space(), plan, "A2",
                                      cal::WorkDuration::hours(8))
                    .take();
  std::cout << "what-if: block1/A2 slips 1d -> block finish moves "
            << s.manager->calendar().format_date(impact.old_finish) << " -> "
            << s.manager->calendar().format_date(impact.new_finish) << "\n";
  auto crash = sched::crash_to_deadline(s.manager->schedule_space(), plan,
                                        cal::WorkInstant(10 * 60))
                   .take();
  std::cout << "crash to a 10h deadline: " << (crash.feasible ? "feasible, " : "infeasible, ")
            << crash.steps.size() << " activities shortened\n\n";
}

void BM_ArchRollup(benchmark::State& state) {
  auto s = make_scenario(static_cast<std::size_t>(state.range(0)),
                         static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    auto rollup = arch::ArchSchedule::compute(s.hierarchy, *s.manager);
    benchmark::DoNotOptimize(rollup.value().rows().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * state.range(1));
}
BENCHMARK(BM_ArchRollup)->Args({4, 8})->Args({16, 8})->Args({64, 8})->Args({16, 64});

void BM_SimulateDelay(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(static_cast<std::size_t>(state.range(0))),
                               "d" + std::to_string(state.range(0)));
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  for (auto _ : state) {
    auto impact = sched::simulate_delay(m->schedule_space(), plan, "A1",
                                        cal::WorkDuration::hours(4));
    benchmark::DoNotOptimize(impact.value().project_slip);
  }
}
BENCHMARK(BM_SimulateDelay)->Arg(16)->Arg(128)->Arg(1024);

void BM_CrashToDeadline(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(static_cast<std::size_t>(state.range(0))),
                               "d" + std::to_string(state.range(0)));
  auto plan = m->plan_task("job", {.anchor = m->clock().now()}).value();
  // Deadline at half the projection: plenty of crashing to do.
  const auto& space = m->schedule_space();
  auto last = space.node(space.plan(plan).nodes.back()).planned_finish;
  cal::WorkInstant deadline(last.minutes_since_epoch() / 2);
  for (auto _ : state) {
    auto crash = sched::crash_to_deadline(space, plan, deadline);
    benchmark::DoNotOptimize(crash.value().steps.size());
  }
}
BENCHMARK(BM_CrashToDeadline)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
