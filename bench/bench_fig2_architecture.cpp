// Reproduces paper Fig. 2: the Hercules architecture expressed in the
// four-level model — Level 1 (schema entities), Level 2 (task trees),
// Level 3 (entity instances, runs, resources), Level 4 (data objects).
//
// Benchmarks: raw database throughput at each level.

#include <iostream>

#include "adapters/four_level.hpp"
#include "bench_main.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

void print_artifact() {
  auto m = bench::make_manager(bench::chain_schema(3), "d3");
  m->add_resource("pat");
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  m->execute_task("job", "pat").value();
  m->link_completion("job", "A3").expect("link");

  std::cout << "Fig. 2 — Hercules architecture representation\n\n";
  std::cout << "Level 1: " << m->schema().describe() << "\n";
  std::cout << "Level 2: task tree 'job'\n" << m->task("job").value()->render() << "\n";
  std::cout << "Level 3:\n" << m->db().dump_containers()
            << m->schedule_space().dump_containers(m->db()) << "\n";
  std::cout << "Level 4: " << m->store().size() << " data objects\n";
  for (const auto& obj : m->store().all()) std::cout << "  " << obj.str() << "\n";
  std::cout << "\n"
            << adapters::render_four_level_report(m->schema(), m->db(),
                                                  m->schedule_space(), m->store())
            << "\n";
}

void BM_SchemaToDatabaseInit(benchmark::State& state) {
  std::string dsl = bench::chain_schema(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = hercules::WorkflowManager::create(dsl);
    benchmark::DoNotOptimize(m.value()->schema().rules().size());
  }
}
BENCHMARK(BM_SchemaToDatabaseInit)->Arg(8)->Arg(64)->Arg(256);

void BM_InstanceCreation(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(1), "d1");
  std::size_t i = 0;
  for (auto _ : state) {
    auto inst = m->db().create_instance("d1", "obj" + std::to_string(i++),
                                        meta::RunId::invalid(), util::DataObjectId{},
                                        m->clock().now());
    benchmark::DoNotOptimize(inst.value());
  }
}
BENCHMARK(BM_InstanceCreation);

void BM_DataObjectCreation(benchmark::State& state) {
  data::DataStore store;
  std::string content(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    auto id = store.create("obj", "d1", content, cal::WorkInstant(0));
    benchmark::DoNotOptimize(id);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_DataObjectCreation)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
