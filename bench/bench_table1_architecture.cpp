// Reproduces paper Table I: "System representation using the four-level
// architecture" — the survey rows plus a live demonstration that our native
// model and each adapter (Hilda/Petri, VOV/trace, Philips-ELSIS/roadmap)
// decompose into the same four levels.  Benchmarks measure the adapter
// construction costs (the overhead of hosting the schedule model on another
// representation).

#include <iostream>

#include "adapters/four_level.hpp"
#include "adapters/petri.hpp"
#include "adapters/roadmap.hpp"
#include "adapters/trace.hpp"
#include "bench_main.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

std::unique_ptr<hercules::WorkflowManager> scenario() {
  auto m = bench::make_manager(bench::layered_schema(3, 3), "root");
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  m->execute_task("job", "pat").value();
  return m;
}

void print_artifact() {
  std::cout << adapters::render_table1() << "\n";

  auto m = scenario();
  std::cout << "Live demonstration (layered 3x3 flow, planned and executed):\n\n";
  std::cout << adapters::render_four_level_report(m->schema(), m->db(),
                                                  m->schedule_space(), m->store())
            << "\n";
  const auto& tree = *m->task("job").value();
  auto petri = adapters::petri_from_task_tree(tree).take();
  std::cout << "Hilda view:   " << petri.net.place_count() << " places, "
            << petri.net.transition_count() << " transitions\n";
  auto trace = adapters::TraceGraph::capture(m->db());
  std::cout << "VOV view:     " << trace.transaction_count() << " transactions over "
            << trace.object_count() << " design objects\n";
  auto roadmap = adapters::RoadmapModel::from_schema(m->schema());
  roadmap.instantiate(tree).expect("instantiate");
  std::cout << "Roadmap view: " << roadmap.flow_types().size() << " flow types, "
            << roadmap.instances().size() << " instances, "
            << roadmap.channels().size() << " channels\n\n";
}

void BM_PetriConversion(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 3), "root");
  const auto& tree = *m->task("job").value();
  for (auto _ : state) {
    auto conv = adapters::petri_from_task_tree(tree).take();
    benchmark::DoNotOptimize(conv.net.place_count());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PetriConversion)->Arg(2)->Arg(8)->Arg(32)->Complexity();

void BM_TraceCapture(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(8), "d8",
                               cal::WorkDuration::minutes(5));
  for (int i = 0; i < state.range(0); ++i) m->execute_task("job", "pat").value();
  for (auto _ : state) {
    auto trace = adapters::TraceGraph::capture(m->db());
    benchmark::DoNotOptimize(trace.transaction_count());
  }
}
BENCHMARK(BM_TraceCapture)->Arg(1)->Arg(10)->Arg(50);

void BM_RoadmapInstantiateVerify(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 3), "root");
  const auto& tree = *m->task("job").value();
  auto model = adapters::RoadmapModel::from_schema(m->schema());
  for (auto _ : state) {
    model.instantiate(tree).expect("instantiate");
    benchmark::DoNotOptimize(model.verify_against(tree).value().size());
  }
}
BENCHMARK(BM_RoadmapInstantiateVerify)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
