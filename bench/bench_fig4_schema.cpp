// Reproduces paper Fig. 4: the example task schema —
//
//     netlist     <- netlist_editor()           (activity Create)
//     performance <- simulator(netlist, stimuli) (activity Simulate)
//
// The artifact prints the parsed schema graph.  Benchmarks: schema DSL
// parsing and validation throughput vs. schema size.

#include <iostream>

#include "bench_main.hpp"
#include "schema/schema.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

constexpr const char* kFig4Schema = R"(
schema circuit {
  data netlist, stimuli, performance;
  tool netlist_editor, simulator;
  rule Create:   netlist     <- netlist_editor();
  rule Simulate: performance <- simulator(netlist, stimuli);
}
)";

void print_artifact() {
  auto schema = schema::parse_schema(kFig4Schema).take();
  std::cout << "Fig. 4 — example task schema\n\n";
  std::cout << "construction rules (d_i <- f(d_1..d_n)):\n";
  std::cout << "  netlist     <- netlist_editor()\n";
  std::cout << "  performance <- simulator(netlist, stimuli)\n\n";
  std::cout << schema.describe() << "\n";
  std::cout << "round-tripped DSL:\n" << schema.to_dsl() << "\n";
}

void BM_ParseSchema(benchmark::State& state) {
  std::string dsl = bench::chain_schema(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto schema = schema::parse_schema(dsl);
    benchmark::DoNotOptimize(schema.value().rules().size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dsl.size()));
}
BENCHMARK(BM_ParseSchema)->Arg(8)->Arg(64)->Arg(512);

void BM_ValidateSchema(benchmark::State& state) {
  auto schema =
      schema::parse_schema(bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4))
          .take();
  for (auto _ : state) {
    auto ok = schema.validate();
    benchmark::DoNotOptimize(ok.ok());
  }
}
BENCHMARK(BM_ValidateSchema)->Arg(4)->Arg(16)->Arg(64);

void BM_ExtractTaskTree(benchmark::State& state) {
  auto schema =
      schema::parse_schema(bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4))
          .take();
  for (auto _ : state) {
    auto tree = flow::TaskTree::extract(schema, "root");
    benchmark::DoNotOptimize(tree.value().nodes().size());
  }
}
BENCHMARK(BM_ExtractTaskTree)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
