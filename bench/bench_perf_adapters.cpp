// P6: adapter overhead — the cost of driving a flow through each surveyed
// representation (Hilda/Petri firing, VOV/trace retrace, roadmap
// instantiation) relative to the native Hercules executor, over the same
// generated flows.  This quantifies the price of the paper's generality
// claim: hosting the schedule model on another flow representation.

#include <iostream>

#include "adapters/petri.hpp"
#include "adapters/roadmap.hpp"
#include "adapters/trace.hpp"
#include "bench_main.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

void print_artifact() {
  auto m = bench::make_manager(bench::layered_schema(4, 4), "root",
                               cal::WorkDuration::minutes(10));
  const auto& tree = *m->task("job").value();
  m->execute_task("job", "pat").value();

  auto conv = adapters::petri_from_task_tree(tree).take();
  auto firing = conv.net.run_to_quiescence();
  auto trace = adapters::TraceGraph::capture(m->db());
  auto roadmap = adapters::RoadmapModel::from_schema(m->schema());
  roadmap.instantiate(tree).expect("instantiate");

  std::cout << "P6 — adapter overhead on a layered 4x4 flow ("
            << tree.activities_post_order().size() << " activities)\n\n";
  std::cout << "  native execution:  " << m->db().run_count() << " runs recorded\n";
  std::cout << "  Petri (Hilda):     " << firing.size() << " transitions fired, "
            << conv.net.place_count() << " places\n";
  std::cout << "  trace (VOV):       " << trace.transaction_count()
            << " transactions captured, retrace from a primary input touches "
            << trace
                   .affected_by(m->db().latest_in_container("d0_0").value())
                   .size()
            << " of them\n";
  std::cout << "  roadmap (ELSIS):   " << roadmap.instances().size()
            << " flow instances, " << roadmap.channels().size() << " channels — "
            << roadmap.verify_against(tree).value() << "\n\n";
}

void BM_NativeExecution(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4), "root",
      cal::WorkDuration::minutes(5));
  for (auto _ : state)
    benchmark::DoNotOptimize(m->execute_task("job", "pat").value().final_output);
}
BENCHMARK(BM_NativeExecution)->Arg(4)->Arg(16);

void BM_PetriConvertAndFire(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4), "root");
  const auto& tree = *m->task("job").value();
  for (auto _ : state) {
    auto conv = adapters::petri_from_task_tree(tree).take();
    benchmark::DoNotOptimize(conv.net.run_to_quiescence().size());
  }
}
BENCHMARK(BM_PetriConvertAndFire)->Arg(4)->Arg(16);

void BM_TraceRetrace(benchmark::State& state) {
  auto m = bench::make_manager(bench::chain_schema(32), "d32",
                               cal::WorkDuration::minutes(5));
  for (int i = 0; i < state.range(0); ++i) m->execute_task("job", "pat").value();
  auto trace = adapters::TraceGraph::capture(m->db());
  auto root_input = m->db().latest_in_container("d0").value();
  for (auto _ : state)
    benchmark::DoNotOptimize(trace.affected_by(root_input).size());
}
BENCHMARK(BM_TraceRetrace)->Arg(1)->Arg(10)->Arg(50);

void BM_RoadmapRoundTrip(benchmark::State& state) {
  auto m = bench::make_manager(
      bench::layered_schema(static_cast<std::size_t>(state.range(0)), 4), "root");
  const auto& tree = *m->task("job").value();
  for (auto _ : state) {
    auto model = adapters::RoadmapModel::from_schema(m->schema());
    model.instantiate(tree).expect("instantiate");
    benchmark::DoNotOptimize(model.channels().size());
  }
}
BENCHMARK(BM_RoadmapRoundTrip)->Arg(4)->Arg(16);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
