// P5: slip handling ablation — automatic re-projection of the SAME plan
// (the paper's "the schedule plan updates automatically") vs. creating a
// whole new derived plan generation on every slip.
//
// In-place re-projection pins completed activities at their actuals and
// re-dates only the remaining work; a fresh re-plan has no actuals, so it
// re-schedules even the finished activity from `now` (a later, wrong
// projection) and doubles the schedule instances per slip.  That semantic
// difference plus the ~3x cost gap is the design argument for the tracker's
// in-place update.

#include <iostream>

#include "bench_main.hpp"
#include "util/strings.hpp"
#include "workloads.hpp"

using namespace herc;

namespace {

void print_artifact() {
  std::cout << "P5 — slip propagation: in-place re-projection vs. full re-plan\n\n";

  // Same scenario twice: a 16-activity chain, first activity slips a day.
  auto run_scenario = [](bool replan_on_slip) {
    auto m = bench::make_manager(bench::chain_schema(16), "d16",
                                 cal::WorkDuration::hours(3));
    m->plan_task("job", {.anchor = m->clock().now()}).value();
    m->clock().advance(cal::WorkDuration::hours(8));  // the slip
    m->run_activity("job", "A1", "pat").value();
    m->link_completion("job", "A1").expect("link");
    if (replan_on_slip) {
      sched::PlanRequest req;
      req.anchor = m->clock().now();
      m->replan_task("job", req).value();
    }
    return m;
  };

  auto in_place = run_scenario(false);
  auto replanned = run_scenario(true);

  auto final_finish = [](hercules::WorkflowManager& m) {
    const auto& space = m.schedule_space();
    auto plan = m.plan_of("job").value();
    return space.node(space.node_in_plan(plan, "A16").value()).planned_finish;
  };

  std::cout << "projected finish of A16 after the slip:\n";
  std::cout << "  in-place re-projection: "
            << in_place->calendar().format(final_finish(*in_place)) << "  ("
            << in_place->schedule_space().node_count() << " schedule instances in DB)\n";
  std::cout << "  re-plan on slip:        "
            << replanned->calendar().format(final_finish(*replanned)) << "  ("
            << replanned->schedule_space().node_count()
            << " schedule instances in DB)\n\n";
  std::cout << "The re-plan projects LATER: it has no actuals, so it re-schedules\n"
               "the already-finished A1 from `now`, and it doubles the schedule\n"
               "instances per slip.  The tracker therefore re-projects in place\n"
               "and reserves new plan generations for deliberate re-baselining.\n\n";
}

void BM_InPlaceProjection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto m = bench::make_manager(bench::chain_schema(n), "d" + std::to_string(n),
                               cal::WorkDuration::minutes(30));
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  m->run_activity("job", "A1", "pat").value();
  m->link_completion("job", "A1").expect("link");
  for (auto _ : state) {
    m->clock().advance(cal::WorkDuration::minutes(10));  // time passes, slip grows
    m->tracker().project(m->clock().now());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InPlaceProjection)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ReplanOnSlip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto m = bench::make_manager(bench::chain_schema(n), "d" + std::to_string(n),
                               cal::WorkDuration::minutes(30));
  m->plan_task("job", {.anchor = m->clock().now()}).value();
  for (auto _ : state) {
    m->clock().advance(cal::WorkDuration::minutes(10));
    sched::PlanRequest req;
    req.anchor = m->clock().now();
    benchmark::DoNotOptimize(m->replan_task("job", req).value());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReplanOnSlip)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace

HERC_BENCH_MAIN(print_artifact)
