file(REMOVE_RECURSE
  "CMakeFiles/herc_flow.dir/task_tree.cpp.o"
  "CMakeFiles/herc_flow.dir/task_tree.cpp.o.d"
  "libherc_flow.a"
  "libherc_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
