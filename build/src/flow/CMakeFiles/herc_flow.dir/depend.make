# Empty dependencies file for herc_flow.
# This may be replaced when dependencies are built.
