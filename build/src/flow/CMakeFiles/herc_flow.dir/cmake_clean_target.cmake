file(REMOVE_RECURSE
  "libherc_flow.a"
)
