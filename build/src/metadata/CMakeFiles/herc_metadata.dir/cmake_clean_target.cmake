file(REMOVE_RECURSE
  "libherc_metadata.a"
)
