# Empty compiler generated dependencies file for herc_metadata.
# This may be replaced when dependencies are built.
