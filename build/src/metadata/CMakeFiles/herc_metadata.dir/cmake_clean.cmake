file(REMOVE_RECURSE
  "CMakeFiles/herc_metadata.dir/database.cpp.o"
  "CMakeFiles/herc_metadata.dir/database.cpp.o.d"
  "libherc_metadata.a"
  "libherc_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
