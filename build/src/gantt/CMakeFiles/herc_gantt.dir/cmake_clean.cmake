file(REMOVE_RECURSE
  "CMakeFiles/herc_gantt.dir/browser.cpp.o"
  "CMakeFiles/herc_gantt.dir/browser.cpp.o.d"
  "CMakeFiles/herc_gantt.dir/gantt.cpp.o"
  "CMakeFiles/herc_gantt.dir/gantt.cpp.o.d"
  "CMakeFiles/herc_gantt.dir/svg.cpp.o"
  "CMakeFiles/herc_gantt.dir/svg.cpp.o.d"
  "libherc_gantt.a"
  "libherc_gantt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
