file(REMOVE_RECURSE
  "libherc_gantt.a"
)
