# Empty compiler generated dependencies file for herc_gantt.
# This may be replaced when dependencies are built.
