file(REMOVE_RECURSE
  "libherc_util.a"
)
