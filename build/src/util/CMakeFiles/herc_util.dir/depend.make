# Empty dependencies file for herc_util.
# This may be replaced when dependencies are built.
