file(REMOVE_RECURSE
  "CMakeFiles/herc_util.dir/json.cpp.o"
  "CMakeFiles/herc_util.dir/json.cpp.o.d"
  "CMakeFiles/herc_util.dir/strings.cpp.o"
  "CMakeFiles/herc_util.dir/strings.cpp.o.d"
  "CMakeFiles/herc_util.dir/topo.cpp.o"
  "CMakeFiles/herc_util.dir/topo.cpp.o.d"
  "libherc_util.a"
  "libherc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
