file(REMOVE_RECURSE
  "CMakeFiles/herc_arch.dir/hierarchy.cpp.o"
  "CMakeFiles/herc_arch.dir/hierarchy.cpp.o.d"
  "CMakeFiles/herc_arch.dir/rollup.cpp.o"
  "CMakeFiles/herc_arch.dir/rollup.cpp.o.d"
  "libherc_arch.a"
  "libherc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
