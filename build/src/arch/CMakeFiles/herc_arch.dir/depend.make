# Empty dependencies file for herc_arch.
# This may be replaced when dependencies are built.
