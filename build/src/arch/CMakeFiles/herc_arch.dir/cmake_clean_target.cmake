file(REMOVE_RECURSE
  "libherc_arch.a"
)
