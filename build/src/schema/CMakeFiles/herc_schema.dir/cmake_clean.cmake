file(REMOVE_RECURSE
  "CMakeFiles/herc_schema.dir/schema.cpp.o"
  "CMakeFiles/herc_schema.dir/schema.cpp.o.d"
  "CMakeFiles/herc_schema.dir/schema_parser.cpp.o"
  "CMakeFiles/herc_schema.dir/schema_parser.cpp.o.d"
  "libherc_schema.a"
  "libherc_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
