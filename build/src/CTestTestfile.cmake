# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("calendar")
subdirs("data")
subdirs("schema")
subdirs("flow")
subdirs("metadata")
subdirs("exec")
subdirs("core")
subdirs("track")
subdirs("query")
subdirs("gantt")
subdirs("adapters")
subdirs("hercules")
subdirs("arch")
subdirs("cli")
