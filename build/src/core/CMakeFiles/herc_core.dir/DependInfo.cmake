
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compare.cpp" "src/core/CMakeFiles/herc_core.dir/compare.cpp.o" "gcc" "src/core/CMakeFiles/herc_core.dir/compare.cpp.o.d"
  "/root/repo/src/core/cpm.cpp" "src/core/CMakeFiles/herc_core.dir/cpm.cpp.o" "gcc" "src/core/CMakeFiles/herc_core.dir/cpm.cpp.o.d"
  "/root/repo/src/core/estimate.cpp" "src/core/CMakeFiles/herc_core.dir/estimate.cpp.o" "gcc" "src/core/CMakeFiles/herc_core.dir/estimate.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/herc_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/herc_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/resources.cpp" "src/core/CMakeFiles/herc_core.dir/resources.cpp.o" "gcc" "src/core/CMakeFiles/herc_core.dir/resources.cpp.o.d"
  "/root/repo/src/core/risk.cpp" "src/core/CMakeFiles/herc_core.dir/risk.cpp.o" "gcc" "src/core/CMakeFiles/herc_core.dir/risk.cpp.o.d"
  "/root/repo/src/core/schedule_space.cpp" "src/core/CMakeFiles/herc_core.dir/schedule_space.cpp.o" "gcc" "src/core/CMakeFiles/herc_core.dir/schedule_space.cpp.o.d"
  "/root/repo/src/core/tracker.cpp" "src/core/CMakeFiles/herc_core.dir/tracker.cpp.o" "gcc" "src/core/CMakeFiles/herc_core.dir/tracker.cpp.o.d"
  "/root/repo/src/core/whatif.cpp" "src/core/CMakeFiles/herc_core.dir/whatif.cpp.o" "gcc" "src/core/CMakeFiles/herc_core.dir/whatif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metadata/CMakeFiles/herc_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/herc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/calendar/CMakeFiles/herc_calendar.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/herc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/herc_schema.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
