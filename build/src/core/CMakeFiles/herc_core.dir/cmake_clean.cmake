file(REMOVE_RECURSE
  "CMakeFiles/herc_core.dir/compare.cpp.o"
  "CMakeFiles/herc_core.dir/compare.cpp.o.d"
  "CMakeFiles/herc_core.dir/cpm.cpp.o"
  "CMakeFiles/herc_core.dir/cpm.cpp.o.d"
  "CMakeFiles/herc_core.dir/estimate.cpp.o"
  "CMakeFiles/herc_core.dir/estimate.cpp.o.d"
  "CMakeFiles/herc_core.dir/planner.cpp.o"
  "CMakeFiles/herc_core.dir/planner.cpp.o.d"
  "CMakeFiles/herc_core.dir/resources.cpp.o"
  "CMakeFiles/herc_core.dir/resources.cpp.o.d"
  "CMakeFiles/herc_core.dir/risk.cpp.o"
  "CMakeFiles/herc_core.dir/risk.cpp.o.d"
  "CMakeFiles/herc_core.dir/schedule_space.cpp.o"
  "CMakeFiles/herc_core.dir/schedule_space.cpp.o.d"
  "CMakeFiles/herc_core.dir/tracker.cpp.o"
  "CMakeFiles/herc_core.dir/tracker.cpp.o.d"
  "CMakeFiles/herc_core.dir/whatif.cpp.o"
  "CMakeFiles/herc_core.dir/whatif.cpp.o.d"
  "libherc_core.a"
  "libherc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
