file(REMOVE_RECURSE
  "libherc_track.a"
)
