# Empty dependencies file for herc_track.
# This may be replaced when dependencies are built.
