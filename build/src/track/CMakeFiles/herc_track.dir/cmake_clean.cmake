file(REMOVE_RECURSE
  "CMakeFiles/herc_track.dir/report.cpp.o"
  "CMakeFiles/herc_track.dir/report.cpp.o.d"
  "CMakeFiles/herc_track.dir/status.cpp.o"
  "CMakeFiles/herc_track.dir/status.cpp.o.d"
  "CMakeFiles/herc_track.dir/utilization.cpp.o"
  "CMakeFiles/herc_track.dir/utilization.cpp.o.d"
  "libherc_track.a"
  "libherc_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
