file(REMOVE_RECURSE
  "CMakeFiles/herc_exec.dir/executor.cpp.o"
  "CMakeFiles/herc_exec.dir/executor.cpp.o.d"
  "CMakeFiles/herc_exec.dir/tools.cpp.o"
  "CMakeFiles/herc_exec.dir/tools.cpp.o.d"
  "libherc_exec.a"
  "libherc_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
