# Empty dependencies file for herc_hercules.
# This may be replaced when dependencies are built.
