file(REMOVE_RECURSE
  "CMakeFiles/herc_hercules.dir/persist.cpp.o"
  "CMakeFiles/herc_hercules.dir/persist.cpp.o.d"
  "CMakeFiles/herc_hercules.dir/workflow_manager.cpp.o"
  "CMakeFiles/herc_hercules.dir/workflow_manager.cpp.o.d"
  "libherc_hercules.a"
  "libherc_hercules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_hercules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
