file(REMOVE_RECURSE
  "libherc_hercules.a"
)
