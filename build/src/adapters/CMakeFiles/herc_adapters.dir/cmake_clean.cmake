file(REMOVE_RECURSE
  "CMakeFiles/herc_adapters.dir/four_level.cpp.o"
  "CMakeFiles/herc_adapters.dir/four_level.cpp.o.d"
  "CMakeFiles/herc_adapters.dir/history.cpp.o"
  "CMakeFiles/herc_adapters.dir/history.cpp.o.d"
  "CMakeFiles/herc_adapters.dir/petri.cpp.o"
  "CMakeFiles/herc_adapters.dir/petri.cpp.o.d"
  "CMakeFiles/herc_adapters.dir/roadmap.cpp.o"
  "CMakeFiles/herc_adapters.dir/roadmap.cpp.o.d"
  "CMakeFiles/herc_adapters.dir/trace.cpp.o"
  "CMakeFiles/herc_adapters.dir/trace.cpp.o.d"
  "libherc_adapters.a"
  "libherc_adapters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_adapters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
