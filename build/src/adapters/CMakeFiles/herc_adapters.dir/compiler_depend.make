# Empty compiler generated dependencies file for herc_adapters.
# This may be replaced when dependencies are built.
