file(REMOVE_RECURSE
  "libherc_adapters.a"
)
