# CMake generated Testfile for 
# Source directory: /root/repo/src/calendar
# Build directory: /root/repo/build/src/calendar
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
