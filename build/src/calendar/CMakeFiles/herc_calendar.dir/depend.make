# Empty dependencies file for herc_calendar.
# This may be replaced when dependencies are built.
