file(REMOVE_RECURSE
  "libherc_calendar.a"
)
