file(REMOVE_RECURSE
  "CMakeFiles/herc_calendar.dir/date.cpp.o"
  "CMakeFiles/herc_calendar.dir/date.cpp.o.d"
  "CMakeFiles/herc_calendar.dir/work_calendar.cpp.o"
  "CMakeFiles/herc_calendar.dir/work_calendar.cpp.o.d"
  "libherc_calendar.a"
  "libherc_calendar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_calendar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
