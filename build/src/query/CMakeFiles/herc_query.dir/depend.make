# Empty dependencies file for herc_query.
# This may be replaced when dependencies are built.
