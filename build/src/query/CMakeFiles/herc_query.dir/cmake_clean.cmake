file(REMOVE_RECURSE
  "CMakeFiles/herc_query.dir/query_engine.cpp.o"
  "CMakeFiles/herc_query.dir/query_engine.cpp.o.d"
  "CMakeFiles/herc_query.dir/query_parser.cpp.o"
  "CMakeFiles/herc_query.dir/query_parser.cpp.o.d"
  "libherc_query.a"
  "libherc_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
