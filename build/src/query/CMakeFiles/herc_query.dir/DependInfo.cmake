
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/query_engine.cpp" "src/query/CMakeFiles/herc_query.dir/query_engine.cpp.o" "gcc" "src/query/CMakeFiles/herc_query.dir/query_engine.cpp.o.d"
  "/root/repo/src/query/query_parser.cpp" "src/query/CMakeFiles/herc_query.dir/query_parser.cpp.o" "gcc" "src/query/CMakeFiles/herc_query.dir/query_parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/herc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/herc_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/calendar/CMakeFiles/herc_calendar.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/herc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/herc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/herc_schema.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
