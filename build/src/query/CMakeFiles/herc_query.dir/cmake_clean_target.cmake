file(REMOVE_RECURSE
  "libherc_query.a"
)
