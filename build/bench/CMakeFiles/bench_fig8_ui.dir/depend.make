# Empty dependencies file for bench_fig8_ui.
# This may be replaced when dependencies are built.
