file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_query.dir/bench_perf_query.cpp.o"
  "CMakeFiles/bench_perf_query.dir/bench_perf_query.cpp.o.d"
  "bench_perf_query"
  "bench_perf_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
