# Empty compiler generated dependencies file for bench_perf_query.
# This may be replaced when dependencies are built.
