# Empty dependencies file for bench_ablation_slip.
# This may be replaced when dependencies are built.
