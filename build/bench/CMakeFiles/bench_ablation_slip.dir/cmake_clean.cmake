file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_slip.dir/bench_ablation_slip.cpp.o"
  "CMakeFiles/bench_ablation_slip.dir/bench_ablation_slip.cpp.o.d"
  "bench_ablation_slip"
  "bench_ablation_slip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_slip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
