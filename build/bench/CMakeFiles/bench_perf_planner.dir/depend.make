# Empty dependencies file for bench_perf_planner.
# This may be replaced when dependencies are built.
