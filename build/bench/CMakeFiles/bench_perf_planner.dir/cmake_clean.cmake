file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_planner.dir/bench_perf_planner.cpp.o"
  "CMakeFiles/bench_perf_planner.dir/bench_perf_planner.cpp.o.d"
  "bench_perf_planner"
  "bench_perf_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
