# Empty compiler generated dependencies file for bench_ext_dispatch.
# This may be replaced when dependencies are built.
