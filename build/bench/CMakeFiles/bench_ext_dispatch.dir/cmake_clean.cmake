file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dispatch.dir/bench_ext_dispatch.cpp.o"
  "CMakeFiles/bench_ext_dispatch.dir/bench_ext_dispatch.cpp.o.d"
  "bench_ext_dispatch"
  "bench_ext_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
