file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_cpm.dir/bench_perf_cpm.cpp.o"
  "CMakeFiles/bench_perf_cpm.dir/bench_perf_cpm.cpp.o.d"
  "bench_perf_cpm"
  "bench_perf_cpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_cpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
