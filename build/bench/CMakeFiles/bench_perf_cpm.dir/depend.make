# Empty dependencies file for bench_perf_cpm.
# This may be replaced when dependencies are built.
