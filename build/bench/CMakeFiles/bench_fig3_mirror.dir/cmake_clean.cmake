file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_mirror.dir/bench_fig3_mirror.cpp.o"
  "CMakeFiles/bench_fig3_mirror.dir/bench_fig3_mirror.cpp.o.d"
  "bench_fig3_mirror"
  "bench_fig3_mirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
