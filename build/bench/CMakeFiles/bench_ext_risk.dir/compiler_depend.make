# Empty compiler generated dependencies file for bench_ext_risk.
# This may be replaced when dependencies are built.
