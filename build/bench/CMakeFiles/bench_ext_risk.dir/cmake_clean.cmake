file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_risk.dir/bench_ext_risk.cpp.o"
  "CMakeFiles/bench_ext_risk.dir/bench_ext_risk.cpp.o.d"
  "bench_ext_risk"
  "bench_ext_risk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
