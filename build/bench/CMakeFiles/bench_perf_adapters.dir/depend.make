# Empty dependencies file for bench_perf_adapters.
# This may be replaced when dependencies are built.
