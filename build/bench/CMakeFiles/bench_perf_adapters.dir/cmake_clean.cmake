file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_adapters.dir/bench_perf_adapters.cpp.o"
  "CMakeFiles/bench_perf_adapters.dir/bench_perf_adapters.cpp.o.d"
  "bench_perf_adapters"
  "bench_perf_adapters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_adapters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
