# Empty dependencies file for bench_fig7_completion.
# This may be replaced when dependencies are built.
