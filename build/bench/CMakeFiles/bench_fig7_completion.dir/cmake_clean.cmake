file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_completion.dir/bench_fig7_completion.cpp.o"
  "CMakeFiles/bench_fig7_completion.dir/bench_fig7_completion.cpp.o.d"
  "bench_fig7_completion"
  "bench_fig7_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
