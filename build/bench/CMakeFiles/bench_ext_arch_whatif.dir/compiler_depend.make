# Empty compiler generated dependencies file for bench_ext_arch_whatif.
# This may be replaced when dependencies are built.
