file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_arch_whatif.dir/bench_ext_arch_whatif.cpp.o"
  "CMakeFiles/bench_ext_arch_whatif.dir/bench_ext_arch_whatif.cpp.o.d"
  "bench_ext_arch_whatif"
  "bench_ext_arch_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_arch_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
