file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_planning.dir/bench_fig5_planning.cpp.o"
  "CMakeFiles/bench_fig5_planning.dir/bench_fig5_planning.cpp.o.d"
  "bench_fig5_planning"
  "bench_fig5_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
