# Empty compiler generated dependencies file for bench_fig6_execution.
# This may be replaced when dependencies are built.
