file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_execution.dir/bench_fig6_execution.cpp.o"
  "CMakeFiles/bench_fig6_execution.dir/bench_fig6_execution.cpp.o.d"
  "bench_fig6_execution"
  "bench_fig6_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
