file(REMOVE_RECURSE
  "CMakeFiles/hercules_test.dir/hercules_test.cpp.o"
  "CMakeFiles/hercules_test.dir/hercules_test.cpp.o.d"
  "hercules_test"
  "hercules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hercules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
