# Empty dependencies file for hercules_test.
# This may be replaced when dependencies are built.
