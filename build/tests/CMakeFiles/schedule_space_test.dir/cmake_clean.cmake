file(REMOVE_RECURSE
  "CMakeFiles/schedule_space_test.dir/schedule_space_test.cpp.o"
  "CMakeFiles/schedule_space_test.dir/schedule_space_test.cpp.o.d"
  "schedule_space_test"
  "schedule_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
