# Empty compiler generated dependencies file for schedule_space_test.
# This may be replaced when dependencies are built.
