file(REMOVE_RECURSE
  "CMakeFiles/gantt_test.dir/gantt_test.cpp.o"
  "CMakeFiles/gantt_test.dir/gantt_test.cpp.o.d"
  "gantt_test"
  "gantt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gantt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
