file(REMOVE_RECURSE
  "CMakeFiles/risk_test.dir/risk_test.cpp.o"
  "CMakeFiles/risk_test.dir/risk_test.cpp.o.d"
  "risk_test"
  "risk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/risk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
