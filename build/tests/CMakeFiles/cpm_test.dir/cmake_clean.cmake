file(REMOVE_RECURSE
  "CMakeFiles/cpm_test.dir/cpm_test.cpp.o"
  "CMakeFiles/cpm_test.dir/cpm_test.cpp.o.d"
  "cpm_test"
  "cpm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
