# Empty compiler generated dependencies file for cpm_test.
# This may be replaced when dependencies are built.
