
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/utilization_test.cpp" "tests/CMakeFiles/utilization_test.dir/utilization_test.cpp.o" "gcc" "tests/CMakeFiles/utilization_test.dir/utilization_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hercules/CMakeFiles/herc_hercules.dir/DependInfo.cmake"
  "/root/repo/build/src/adapters/CMakeFiles/herc_adapters.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/herc_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/herc_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/herc_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/herc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/herc_query.dir/DependInfo.cmake"
  "/root/repo/build/src/track/CMakeFiles/herc_track.dir/DependInfo.cmake"
  "/root/repo/build/src/gantt/CMakeFiles/herc_gantt.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/herc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/herc_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/metadata/CMakeFiles/herc_metadata.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/herc_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/calendar/CMakeFiles/herc_calendar.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/herc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
