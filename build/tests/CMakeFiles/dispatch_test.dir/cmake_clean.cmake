file(REMOVE_RECURSE
  "CMakeFiles/dispatch_test.dir/dispatch_test.cpp.o"
  "CMakeFiles/dispatch_test.dir/dispatch_test.cpp.o.d"
  "dispatch_test"
  "dispatch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dispatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
