# Empty compiler generated dependencies file for herc_shell.
# This may be replaced when dependencies are built.
