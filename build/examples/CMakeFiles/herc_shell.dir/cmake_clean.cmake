file(REMOVE_RECURSE
  "CMakeFiles/herc_shell.dir/herc_shell.cpp.o"
  "CMakeFiles/herc_shell.dir/herc_shell.cpp.o.d"
  "herc_shell"
  "herc_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herc_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
