file(REMOVE_RECURSE
  "CMakeFiles/multi_project.dir/multi_project.cpp.o"
  "CMakeFiles/multi_project.dir/multi_project.cpp.o.d"
  "multi_project"
  "multi_project.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_project.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
