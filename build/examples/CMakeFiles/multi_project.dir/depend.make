# Empty dependencies file for multi_project.
# This may be replaced when dependencies are built.
