file(REMOVE_RECURSE
  "CMakeFiles/soc_hierarchy.dir/soc_hierarchy.cpp.o"
  "CMakeFiles/soc_hierarchy.dir/soc_hierarchy.cpp.o.d"
  "soc_hierarchy"
  "soc_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soc_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
