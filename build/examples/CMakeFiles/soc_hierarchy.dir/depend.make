# Empty dependencies file for soc_hierarchy.
# This may be replaced when dependencies are built.
