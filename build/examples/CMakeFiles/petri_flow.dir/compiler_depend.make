# Empty compiler generated dependencies file for petri_flow.
# This may be replaced when dependencies are built.
