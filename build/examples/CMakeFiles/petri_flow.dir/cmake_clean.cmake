file(REMOVE_RECURSE
  "CMakeFiles/petri_flow.dir/petri_flow.cpp.o"
  "CMakeFiles/petri_flow.dir/petri_flow.cpp.o.d"
  "petri_flow"
  "petri_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/petri_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
