file(REMOVE_RECURSE
  "CMakeFiles/asic_flow.dir/asic_flow.cpp.o"
  "CMakeFiles/asic_flow.dir/asic_flow.cpp.o.d"
  "asic_flow"
  "asic_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asic_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
